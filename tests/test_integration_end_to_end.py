"""End-to-end integration tests covering the full pipeline and the examples."""

import runpy
import sys
from pathlib import Path

import pytest

from repro import (
    CPGBuilder,
    Condition,
    Mapping,
    ScheduleMerger,
    simple_architecture,
)
from repro.analysis import format_schedule_table, render_gantt
from repro.graph import expand_communications
from repro.simulation import RuntimeSimulator, validate_merge_result

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestFullPipeline:
    def test_build_map_schedule_simulate(self):
        """The full user journey: model -> map -> merge -> execute."""
        C = Condition("go_fast")
        architecture = simple_architecture(2, 1, 1, condition_broadcast_time=0.5)
        builder = CPGBuilder("pipeline")
        builder.process("sense", 2.0)
        builder.process("decide", 1.0)
        builder.process("fast", 3.0)
        builder.process("slow", 6.0)
        builder.process("act", 2.0)
        builder.chain("sense", "decide")
        builder.edge("decide", "fast", condition=C.true(), communication_time=1.0)
        builder.edge("decide", "slow", condition=C.false())
        builder.edge("fast", "act", communication_time=1.0)
        builder.edge("slow", "act", communication_time=1.0)
        graph = builder.build()

        mapping = Mapping(architecture)
        mapping.assign_many(architecture["pe1"], ["sense", "decide", "slow"])
        mapping.assign("fast", architecture["pe2"])
        mapping.assign("act", architecture["pe3"])
        expanded = expand_communications(graph, mapping, architecture)

        result = ScheduleMerger(expanded.graph, expanded.mapping, architecture).merge()
        report = validate_merge_result(
            expanded.graph, expanded.mapping, result, architecture
        )
        assert report.paths_checked == 2

        simulator = RuntimeSimulator(expanded.graph, expanded.mapping, architecture)
        fast_trace = simulator.execute(result.table, {C: True})
        slow_trace = simulator.execute(result.table, {C: False})
        assert fast_trace.delay <= slow_trace.delay
        assert result.delta_max == pytest.approx(
            max(fast_trace.delay, slow_trace.delay)
        )

        # Reporting utilities work on the produced artefacts.
        assert "sense" in format_schedule_table(result.table)
        worst = max(result.path_schedules.values(), key=lambda s: s.delay)
        assert "pe1" in render_gantt(worst, architecture)

    def test_fig1_pipeline_is_reproducible(self, fig1):
        first = ScheduleMerger(fig1.graph, fig1.expanded_mapping).merge()
        second = ScheduleMerger(fig1.graph, fig1.expanded_mapping).merge()
        assert first.delta_max == pytest.approx(second.delta_max)
        assert first.table.columns() == second.table.columns()


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "paper_example.py", "atm_oam.py", "random_evaluation.py"],
)
def test_examples_run_to_completion(script, monkeypatch, capsys):
    """Every shipped example must run unmodified (in its fast/demo mode)."""
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} is missing"
    monkeypatch.setenv("REPRO_EXAMPLE_FAST", "1")
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"example {script} produced no output"
