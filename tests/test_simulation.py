"""Tests for the run-time simulator and the end-to-end validators."""

import pytest

from repro.conditions import Condition, Conjunction
from repro.graph import PathEnumerator
from repro.scheduling import ScheduleMerger, ScheduleTable
from repro.simulation import (
    RuntimeSimulator,
    SimulationError,
    validate_merge_result,
    validate_schedule_table,
)

C = Condition("C")


@pytest.fixture()
def merged_small(small_system):
    merger = ScheduleMerger(
        small_system["expanded"].graph,
        small_system["expanded"].mapping,
        small_system["architecture"],
    )
    return merger.merge()


class TestExecution:
    def test_execute_reports_delay_and_activities(self, small_system, merged_small):
        simulator = RuntimeSimulator(
            small_system["expanded"].graph,
            small_system["expanded"].mapping,
            small_system["architecture"],
        )
        trace = simulator.execute(merged_small.table, {C: True})
        assert trace.delay > 0
        assert "P2" in trace.executed_names()
        assert "P3" not in trace.executed_names()
        assert trace.activity("P1").start == 0.0

    def test_condition_times_recorded(self, small_system, merged_small):
        simulator = RuntimeSimulator(
            small_system["expanded"].graph,
            small_system["expanded"].mapping,
            small_system["architecture"],
        )
        trace = simulator.execute(merged_small.table, {C: True})
        assert C in trace.condition_determined
        assert trace.condition_broadcast_end[C] >= trace.condition_determined[C]

    def test_worst_case_and_all_delays(self, small_system, merged_small):
        simulator = RuntimeSimulator(
            small_system["expanded"].graph,
            small_system["expanded"].mapping,
            small_system["architecture"],
        )
        worst, trace = simulator.worst_case_delay(merged_small.table)
        delays = simulator.all_delays(merged_small.table)
        assert worst == pytest.approx(max(delays.values()))
        assert worst == pytest.approx(merged_small.delta_max)
        assert trace.delay == pytest.approx(worst)

    def test_missing_activation_time_detected(self, small_system):
        simulator = RuntimeSimulator(
            small_system["expanded"].graph,
            small_system["expanded"].mapping,
            small_system["architecture"],
        )
        empty = ScheduleTable()
        with pytest.raises(SimulationError):
            simulator.execute(empty, {C: True})

    def test_dependency_violation_detected(self, small_system, merged_small):
        simulator = RuntimeSimulator(
            small_system["expanded"].graph,
            small_system["expanded"].mapping,
            small_system["architecture"],
        )
        # Corrupt the table: force P5 to start at time 0, before its inputs.
        corrupted = ScheduleTable()
        for name in merged_small.table.process_names:
            for entry in merged_small.table.process_entries(name):
                start = 0.0 if name == "P5" else entry.start
                corrupted.add_process_entry(name, entry.column, start, entry.pe)
        for condition in merged_small.table.conditions:
            for entry in merged_small.table.condition_entries(condition):
                corrupted.add_condition_entry(condition, entry.column, entry.start, entry.pe)
        with pytest.raises(SimulationError):
            simulator.execute(corrupted, {C: True})

    def test_requirement4_violation_detected(self, small_system, merged_small):
        simulator = RuntimeSimulator(
            small_system["expanded"].graph,
            small_system["expanded"].mapping,
            small_system["architecture"],
        )
        # Corrupt the table: pretend the value of C is usable everywhere at t=0
        # by moving the conditional process P2 to time 0 in its C-column.
        corrupted = ScheduleTable()
        for name in merged_small.table.process_names:
            for entry in merged_small.table.process_entries(name):
                start = 0.0 if name == "P2" else entry.start
                corrupted.add_process_entry(name, entry.column, start, entry.pe)
        for condition in merged_small.table.conditions:
            for entry in merged_small.table.condition_entries(condition):
                corrupted.add_condition_entry(condition, entry.column, entry.start, entry.pe)
        with pytest.raises(SimulationError):
            simulator.execute(corrupted, {C: True})

    def test_resource_overlap_detected(self, small_system, merged_small):
        simulator = RuntimeSimulator(
            small_system["expanded"].graph,
            small_system["expanded"].mapping,
            small_system["architecture"],
        )
        # Move P4 (pe2) on top of P2 (pe2) while keeping dependencies intact.
        corrupted = ScheduleTable()
        p2_time = merged_small.table.activation_time("P2", {C: True})
        for name in merged_small.table.process_names:
            for entry in merged_small.table.process_entries(name):
                start = p2_time if name == "P4" else entry.start
                corrupted.add_process_entry(name, entry.column, start, entry.pe)
        for condition in merged_small.table.conditions:
            for entry in merged_small.table.condition_entries(condition):
                corrupted.add_condition_entry(condition, entry.column, entry.start, entry.pe)
        with pytest.raises(SimulationError):
            simulator.execute(corrupted, {C: True})

    def test_non_strict_mode_skips_checks(self, small_system, merged_small):
        simulator = RuntimeSimulator(
            small_system["expanded"].graph,
            small_system["expanded"].mapping,
            small_system["architecture"],
            strict=False,
        )
        corrupted = ScheduleTable()
        for name in merged_small.table.process_names:
            for entry in merged_small.table.process_entries(name):
                corrupted.add_process_entry(name, entry.column, 0.0, entry.pe)
        trace = simulator.execute(corrupted, {C: True})
        assert trace.delay >= 0.0


class TestValidators:
    def test_validate_schedule_table_reports_paths(self, small_system, merged_small):
        report = validate_schedule_table(
            small_system["expanded"].graph,
            small_system["expanded"].mapping,
            merged_small.table,
            small_system["architecture"],
        )
        assert report.paths_checked == 2
        assert report.worst_case_delay >= report.best_case_delay

    def test_validate_merge_result_cross_checks_delta_max(
        self, small_system, merged_small
    ):
        report = validate_merge_result(
            small_system["expanded"].graph,
            small_system["expanded"].mapping,
            merged_small,
            small_system["architecture"],
        )
        assert report.worst_case_delay == pytest.approx(merged_small.delta_max)

    def test_validate_merge_result_detects_wrong_delta(self, small_system, merged_small):
        merged_small.delta_max = merged_small.delta_max + 100.0
        with pytest.raises(SimulationError):
            validate_merge_result(
                small_system["expanded"].graph,
                small_system["expanded"].mapping,
                merged_small,
                small_system["architecture"],
            )

    def test_fig1_every_path_delay_at_most_delta_max(self, fig1, fig1_merge_result):
        simulator = RuntimeSimulator(fig1.graph, fig1.expanded_mapping, fig1.architecture)
        delays = simulator.all_delays(fig1_merge_result.table)
        assert len(delays) == 6
        assert max(delays.values()) == pytest.approx(fig1_merge_result.delta_max)


class TestActivityAccess:
    def test_activity_lookup_raises_for_unknown(self, small_system, merged_small):
        simulator = RuntimeSimulator(
            small_system["expanded"].graph,
            small_system["expanded"].mapping,
            small_system["architecture"],
        )
        trace = simulator.execute(merged_small.table, {C: False})
        with pytest.raises(KeyError):
            trace.activity("P2")  # P2 is only active when C holds

    def test_broadcast_appears_as_activity(self, small_system, merged_small):
        simulator = RuntimeSimulator(
            small_system["expanded"].graph,
            small_system["expanded"].mapping,
            small_system["architecture"],
        )
        trace = simulator.execute(merged_small.table, {C: True})
        broadcasts = [a for a in trace.activities if a.is_broadcast]
        assert len(broadcasts) == 1
        assert broadcasts[0].condition == C


def test_empty_assignment_single_path_graph(two_processor_architecture):
    from repro.architecture import Mapping
    from repro.graph import CPGBuilder

    builder = CPGBuilder("plain")
    builder.process("A", 1.0)
    graph = builder.build()
    mapping = Mapping(two_processor_architecture, {"A": two_processor_architecture["pe1"]})
    result = ScheduleMerger(graph, mapping, two_processor_architecture).merge()
    simulator = RuntimeSimulator(graph, mapping, two_processor_architecture)
    trace = simulator.execute(result.table, {})
    assert trace.delay == pytest.approx(1.0)
    assert Conjunction.true() in result.table.columns()
