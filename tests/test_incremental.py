"""Tests of the incremental (staged) candidate evaluation.

The contract under test: evaluating a candidate through the sub-fingerprint
stage caches (:class:`repro.exploration.StageCache`) is **bit-identical** to
the monolithic expand-schedule-merge pipeline — scalar cost, the 5-component
objective vector and the generated schedule table alike — for any sequence of
neighbourhood moves, in-process and through every evaluation-pool mode.  On
top of the equivalence property, the sub-fingerprint slicing helpers and the
stage-level hit/miss accounting are covered directly.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import format_schedule_table
from repro.data import load_fig1_example
from repro.exploration import (
    ArchitectureBounds,
    CachedEvaluator,
    EvaluationPool,
    ExplorationConfig,
    ExplorationProblem,
    Explorer,
    NeighborhoodSampler,
    StageCache,
    evaluate_candidate,
    merge_candidate,
)
from repro.generator import generate_system
from repro.graph.communication import (
    assign_buses,
    crossing_edges,
    expand_communications,
    expansion_structure,
)
from repro.scheduling import PATH_LOCAL_PRIORITY_FUNCTIONS


@pytest.fixture(scope="module")
def problem():
    """A compact comm-mapping problem: every move kind is available."""
    example = load_fig1_example(num_buses=2)
    return ExplorationProblem(
        example.process_graph,
        example.mapping,
        example.architecture,
        name="fig1-two-bus",
        map_communications=True,
    )


@pytest.fixture(scope="module")
def generated_problem():
    return ExplorationProblem.from_system(
        generate_system(16, 2, seed=3), map_communications=True
    )


def _walk(problem, seed, moves):
    """A seeded chain of candidates, one sampler move apart each."""
    sampler = NeighborhoodSampler(problem)
    rng = random.Random(seed)
    current = problem.initial_candidate()
    chain = [current]
    for _ in range(moves):
        neighbors = sampler.sample(current, rng, 1)
        if not neighbors:
            break
        current = neighbors[0][1]
        chain.append(current)
    return chain


class TestEquivalenceProperty:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), moves=st.integers(1, 8))
    def test_random_move_sequences_evaluate_identically(
        self, problem, seed, moves
    ):
        """Replay a random move sequence; staged == fresh full pipeline.

        The sampler draws every registered move kind (remap / swap / priority
        switch incl. the non-path-local ``static_order`` / bias / remap_comm
        / swap_bus), so the sub-fingerprint completeness invariant is what
        this property actually exercises.
        """
        cache = StageCache()
        for candidate in _walk(problem, seed, moves):
            staged = evaluate_candidate(problem, candidate, stage_cache=cache)
            fresh = evaluate_candidate(problem, candidate)
            assert staged == fresh
            assert staged.objectives == fresh.objectives

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_schedule_tables_are_identical(self, problem, seed):
        cache = StageCache()
        for candidate in _walk(problem, seed, 4):
            _, staged = merge_candidate(problem, candidate, stage_cache=cache)
            _, fresh = merge_candidate(problem, candidate)
            assert format_schedule_table(staged.table) == format_schedule_table(
                fresh.table
            )
            assert staged.table_path_delays == fresh.table_path_delays
            assert staged.delta_max == fresh.delta_max

    def test_sizing_moves_evaluate_identically(self):
        """Platform changes (add/remove PE/bus) must re-key every stage.

        ``platform`` is a load-bearing component of both sub-fingerprints;
        a bounded problem makes the sampler draw the four sizing kinds too.
        """
        problem = ExplorationProblem.from_system(
            generate_system(16, 2, seed=3),
            bounds=ArchitectureBounds(),
            map_communications=True,
        )
        cache = StageCache()
        platforms = set()
        for seed in (1, 2, 3):
            for candidate in _walk(problem, seed, 10):
                platforms.add(candidate.platform)
                assert evaluate_candidate(
                    problem, candidate, stage_cache=cache
                ) == evaluate_candidate(problem, candidate)
        assert len(platforms) > 1, "the walks never resized the platform"

    def test_generated_system_walk_is_identical(self, generated_problem):
        cache = StageCache()
        for candidate in _walk(generated_problem, 11, 20):
            assert evaluate_candidate(
                generated_problem, candidate, stage_cache=cache
            ) == evaluate_candidate(generated_problem, candidate)
        stats = cache.stats
        assert stats.schedule_hits > 0  # locality actually paid off


class TestSubFingerprints:
    def test_assignment_and_bias_slices(self, problem):
        initial = problem.initial_candidate()
        names = [name for name, _ in initial.assignment]
        subset = {names[0], names[-1]}
        sliced = initial.assignment_slice(subset)
        assert set(name for name, _ in sliced) == subset
        assert sliced == tuple(
            pair for pair in initial.assignment if pair[0] in subset
        )
        biased = initial.with_bias(names[0], 2.0).with_bias(names[1], -1.0)
        assert biased.bias_slice({names[0]}) == ((names[0], 2.0),)
        assert biased.bias_slice({names[-1]}) == ()

    def test_dormant_pin_does_not_fragment_expansion_key(self, problem):
        initial = problem.initial_candidate()
        message, src, dst = problem.active_messages(initial)[0]
        # Co-locate the endpoints: the pin goes dormant and must not change
        # the expansion key versus the same co-location without the pin.
        pinned = initial.with_communication(
            message, problem.connecting_buses(initial, src, dst)[0]
        )
        colocated = pinned.reassigned(src, pinned.pe_of(dst))
        without = initial.reassigned(src, initial.pe_of(dst))
        assert problem.expansion_key(colocated) == problem.expansion_key(without)

    def test_unaffected_path_keys_survive_a_remap(self, generated_problem):
        problem = generated_problem
        initial = problem.initial_candidate()
        cache = StageCache()
        expanded, paths = cache.expansion(problem, initial)
        # Move a process that is NOT active on some path; that path's
        # schedule key must not change (this is what turns a local move into
        # cache hits everywhere else).
        moved = None
        for path in paths:
            active = set(path.active_processes)
            outside = [p for p in problem.movable_processes if p not in active]
            if outside:
                moved = (path, outside[0])
                break
        assert moved is not None, "need a path not covering every process"
        path, process = moved
        target = next(
            pe
            for pe in problem.processor_names
            if pe != initial.pe_of(process)
        )
        neighbor = initial.reassigned(process, target)
        expanded_n, _ = cache.expansion(problem, neighbor)
        assert problem.path_schedule_key(
            initial, path, expanded
        ) == problem.path_schedule_key(neighbor, path, expanded_n)

    def test_static_order_keys_on_the_whole_expansion(self, generated_problem):
        problem = generated_problem
        assert "static_order" not in PATH_LOCAL_PRIORITY_FUNCTIONS
        initial = problem.initial_candidate().with_priority_function(
            "static_order"
        )
        cache = StageCache()
        expanded, paths = cache.expansion(problem, initial)
        key = problem.path_schedule_key(initial, paths[0], expanded)
        assert problem.expansion_key(initial) in key

    def test_expansion_structure_split_matches_monolithic(self, problem):
        initial = problem.initial_candidate()
        mapping = problem.mapping_for(initial)
        monolithic = expand_communications(
            problem.graph, mapping, problem.architecture
        )
        structure = expansion_structure(
            problem.graph, crossing_edges(problem.graph, mapping)
        )
        relayered = assign_buses(structure, mapping, problem.architecture)
        assert set(relayered.communications) == set(monolithic.communications)
        assert relayered.bus_assignment == monolithic.bus_assignment
        assert relayered.bus_loads == monolithic.bus_loads
        assert sorted(relayered.graph.topological_order()) == sorted(
            monolithic.graph.topological_order()
        )


class TestStageAccounting:
    def test_second_evaluation_hits_every_stage(self, problem):
        cache = StageCache()
        initial = problem.initial_candidate()
        evaluate_candidate(problem, initial, stage_cache=cache)
        first = cache.stats
        assert first.expansion_misses == 1
        assert first.schedule_hits == 0
        evaluate_candidate(problem, initial, stage_cache=cache)
        second = cache.stats
        assert second.expansion_hits == 1
        assert second.schedule_misses == first.schedule_misses
        assert second.schedule_hits > 0

    def test_local_move_hits_unaffected_paths(self, generated_problem):
        problem = generated_problem
        cache = StageCache()
        initial = problem.initial_candidate()
        evaluate_candidate(problem, initial, stage_cache=cache)
        chain = _walk(problem, 5, 6)
        for candidate in chain:
            evaluate_candidate(problem, candidate, stage_cache=cache)
        stats = cache.stats
        assert stats.schedule_hits > 0
        assert 0.0 <= stats.schedule_hit_rate <= 1.0
        assert 0.0 <= stats.expansion_hit_rate <= 1.0

    def test_evaluator_exposes_stage_stats(self, problem):
        evaluator = CachedEvaluator(problem)
        evaluator.evaluate(problem.initial_candidate())
        stats = evaluator.stage_stats
        assert stats is not None and stats.expansion_misses == 1
        disabled = CachedEvaluator(problem, stage_cache=False)
        disabled.evaluate(problem.initial_candidate())
        assert disabled.stage_stats is None

    def test_shared_stage_cache_instance(self, problem):
        shared = StageCache()
        first = CachedEvaluator(problem, stage_cache=shared)
        second = CachedEvaluator(problem, stage_cache=shared)
        first.evaluate(problem.initial_candidate())
        second.evaluate(problem.initial_candidate())
        assert shared.stats.expansion_hits == 1  # second evaluator reused it

    def test_clear_drops_memos_but_keeps_counters(self, problem):
        cache = StageCache()
        evaluate_candidate(problem, problem.initial_candidate(), stage_cache=cache)
        assert cache.stats.schedules > 0
        cache.clear()
        stats = cache.stats
        assert stats.schedules == 0 and stats.expansions == 0
        assert stats.schedule_misses > 0  # running totals survive
        # and the cache still works after clearing
        evaluate_candidate(problem, problem.initial_candidate(), stage_cache=cache)
        assert cache.stats.expansion_misses == 2

    def test_intern_key_ids_are_unique(self, problem):
        cache = StageCache()
        ids = [cache.intern_key(("key", index)) for index in range(50)]
        assert len(set(ids)) == 50
        assert cache.intern_key(("key", 7)) == ids[7]

    def test_pooled_evaluator_defers_stage_caching_to_the_pool(self, problem):
        with EvaluationPool(problem, workers=2, mode="thread") as pool:
            evaluator = CachedEvaluator(problem, pool=pool)
            assert evaluator.stage_cache is None  # pool owns staged evaluation
            evaluator.evaluate_many(_walk(problem, 21, 3))
            assert evaluator.stage_stats is not None  # reported from the pool


class TestPoolEquivalence:
    def test_thread_pool_with_stage_caches_matches_serial(self, problem):
        batch = _walk(problem, 9, 11)
        serial = [evaluate_candidate(problem, candidate) for candidate in batch]
        with EvaluationPool(problem, workers=2, mode="thread") as pool:
            assert pool.evaluate(batch) == serial
            assert pool.stage_stats is not None
        with EvaluationPool(
            problem, workers=2, mode="thread", stage_caching=False
        ) as pool:
            assert pool.evaluate(batch) == serial
            assert pool.stage_stats is None

    def test_process_pool_with_stage_caches_matches_serial(self, problem):
        batch = _walk(problem, 13, 7)
        serial = [evaluate_candidate(problem, candidate) for candidate in batch]
        with EvaluationPool(problem, workers=2, mode="process") as pool:
            assert pool.evaluate(batch) == serial
            # per-worker caches are deliberately not aggregated
            assert pool.stage_stats is None

    def test_explorer_results_identical_with_and_without_stages(self, problem):
        config = ExplorationConfig(seed=4, max_cycles=6, neighbors_per_cycle=4)
        staged = Explorer(problem, config=config).explore("tabu")
        plain = Explorer(
            problem,
            config=config,
            evaluator=CachedEvaluator(problem, config.weights, stage_cache=False),
        ).explore("tabu")
        assert staged.best_candidate == plain.best_candidate
        assert staged.best == plain.best
        assert staged.trajectory == plain.trajectory
        assert staged.stages is not None
        assert plain.stages is None
