"""Unit tests for conjunctions of literals (path labels and column headers)."""

import pytest

from repro.conditions import Condition, Conjunction, ContradictionError, Literal

C = Condition("C")
D = Condition("D")
K = Condition("K")


class TestConstruction:
    def test_true_is_empty(self):
        assert Conjunction.true().is_true()
        assert len(Conjunction.true()) == 0

    def test_duplicate_literals_collapse(self):
        conj = Conjunction([C.true(), C.true()])
        assert len(conj) == 1

    def test_contradiction_rejected(self):
        with pytest.raises(ContradictionError):
            Conjunction([C.true(), C.false()])

    def test_of_and_from_assignment_agree(self):
        assert Conjunction.of(C.true(), D.false()) == Conjunction.from_assignment(
            {C: True, D: False}
        )

    def test_str_is_sorted_and_readable(self):
        conj = Conjunction.of(D.true(), C.false())
        assert str(conj) == "!C & D"

    def test_str_of_true(self):
        assert str(Conjunction.true()) == "true"


class TestAlgebra:
    def test_conjoin_merges_literals(self):
        left = Conjunction.of(C.true())
        right = Conjunction.of(D.false())
        assert left.conjoin(right) == Conjunction.of(C.true(), D.false())

    def test_conjoin_contradiction_raises(self):
        with pytest.raises(ContradictionError):
            Conjunction.of(C.true()).conjoin(Conjunction.of(C.false()))

    def test_try_and_returns_none_on_contradiction(self):
        assert Conjunction.of(C.true()).try_and(Conjunction.of(C.false())) is None

    def test_and_literal(self):
        assert Conjunction.of(C.true()).and_literal(D.true()) == Conjunction.of(
            C.true(), D.true()
        )

    def test_mutual_exclusion(self):
        a = Conjunction.of(C.true(), D.true())
        b = Conjunction.of(C.false(), D.true())
        assert a.is_mutually_exclusive_with(b)
        assert not a.is_mutually_exclusive_with(Conjunction.of(D.true()))

    def test_compatibility_is_symmetric(self):
        a = Conjunction.of(C.true())
        b = Conjunction.of(D.true())
        assert a.is_compatible_with(b) and b.is_compatible_with(a)

    def test_implies_subset_rule(self):
        specific = Conjunction.of(C.true(), D.true(), K.false())
        general = Conjunction.of(C.true(), D.true())
        assert specific.implies(general)
        assert not general.implies(specific)

    def test_everything_implies_true(self):
        assert Conjunction.of(C.true()).implies(Conjunction.true())

    def test_value_of(self):
        conj = Conjunction.of(C.true(), D.false())
        assert conj.value_of(C) is True
        assert conj.value_of(D) is False
        assert conj.value_of(K) is None

    def test_restricted_to_and_without(self):
        conj = Conjunction.of(C.true(), D.false(), K.true())
        assert conj.restricted_to([C, D]) == Conjunction.of(C.true(), D.false())
        assert conj.without([C]) == Conjunction.of(D.false(), K.true())


class TestEvaluation:
    def test_evaluate_complete(self):
        conj = Conjunction.of(C.true(), D.false())
        assert conj.evaluate({C: True, D: False})
        assert not conj.evaluate({C: True, D: True})

    def test_satisfied_by_partial_requires_all_assigned(self):
        conj = Conjunction.of(C.true(), D.false())
        assert not conj.satisfied_by_partial({C: True})
        assert conj.satisfied_by_partial({C: True, D: False})

    def test_consistent_with_partial(self):
        conj = Conjunction.of(C.true(), D.false())
        assert conj.consistent_with_partial({})
        assert conj.consistent_with_partial({C: True})
        assert not conj.consistent_with_partial({D: True})

    def test_true_is_always_satisfied(self):
        assert Conjunction.true().satisfied_by_partial({})
        assert Conjunction.true().evaluate({})

    def test_as_assignment_round_trip(self):
        conj = Conjunction.of(C.true(), K.false())
        assert Conjunction.from_assignment(conj.as_assignment()) == conj


class TestContainerProtocol:
    def test_iteration_is_sorted(self):
        conj = Conjunction.of(K.true(), C.false())
        assert list(conj) == sorted([K.true(), C.false()])

    def test_contains(self):
        conj = Conjunction.of(C.true())
        assert C.true() in conj
        assert C.false() not in conj

    def test_hash_consistent_with_equality(self):
        a = Conjunction.of(C.true(), D.true())
        b = Conjunction.of(D.true(), C.true())
        assert a == b and hash(a) == hash(b)

    def test_conditions_property(self):
        assert Conjunction.of(C.true(), D.false()).conditions == frozenset({C, D})

    def test_literal_type_preserved(self):
        conj = Conjunction.of(Literal(C, True))
        assert next(iter(conj)) == Literal(C, True)
