"""Tests of communication-to-bus mapping as an explored design dimension.

Covers the graph layer (stable message ids, explicit per-message bus
assignment with connectivity validation, the least-index and least-loaded
derivation policies, the (src, dst)-indexed lookup), the exploration layer
(candidate pins, remap_comm/swap_bus moves, sizing-aware bus removal, the
bus-contention objective, payload/pool transport) and the acceptance
scenario: on a seeded two-bus Fig. 1-style system, exploring the bus
assignment strictly beats the derived default under an identical
engine/seed/cycle budget — deterministically.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.architecture import (
    Architecture,
    Mapping,
    MappingError,
    bus,
    programmable,
)
from repro.conditions import Condition
from repro.data import load_fig1_example
from repro.graph import (
    BUS_POLICIES,
    CPGBuilder,
    expand_communications,
    message_id,
)
from repro.exploration import (
    CachedEvaluator,
    Candidate,
    CostWeights,
    EvaluationPool,
    ExplorationConfig,
    ExplorationProblem,
    Explorer,
    NeighborhoodSampler,
    OBJECTIVE_NAMES,
    evaluate_candidate,
)

C = Condition("C")

#: The frozen acceptance configuration (also recorded in BENCH_core.json's
#: ``comm_mapping`` entry): same engine/seed/cycles, mapped must beat derived.
ACCEPTANCE = {"engine": "tabu", "seed": 1, "cycles": 16, "neighbors": 6}


def build_two_pe_system(num_buses=2, connectivity=None, reverse_buses=False):
    """Three processes over two processors, ``num_buses`` shared buses."""
    bus_names = [f"bus{i + 1}" for i in range(num_buses)]
    if reverse_buses:
        bus_names.reverse()  # registration order must not matter
    architecture = Architecture(
        [programmable("pe1"), programmable("pe2")],
        [bus(name) for name in bus_names],
        connectivity=connectivity,
    )
    builder = CPGBuilder("comm")
    builder.process("P1", 2.0)
    builder.process("P2", 3.0)
    builder.process("P3", 4.0)
    builder.edge("P1", "P2", communication_time=1.5)
    builder.edge("P2", "P3", condition=C.true(), communication_time=2.5)
    graph = builder.build(validate=False)
    mapping = Mapping(
        architecture, {"P1": "pe1", "P2": "pe2", "P3": "pe1"}
    )
    return architecture, graph, mapping


class TestMessageIds:
    def test_message_id_names_the_edge(self):
        assert message_id("P1", "P2") == "P1->P2"

    def test_expansion_records_message_ids(self):
        architecture, graph, mapping = build_two_pe_system()
        expanded = expand_communications(graph, mapping, architecture)
        info = expanded.communication_between("P1", "P2")
        assert info.message == "P1->P2"
        assert expanded.bus_assignment == {
            "P1->P2": "bus1",
            "P2->P3": "bus1",
        }
        assert expanded.bus_of("P1->P2").name == "bus1"
        assert expanded.bus_of("P1->P3") is None  # no such communication

    def test_assignment_by_message_id_matches_tuple_key(self):
        architecture, graph, mapping = build_two_pe_system()
        by_id = expand_communications(
            graph, mapping, architecture, bus_assignment={"P1->P2": "bus2"}
        )
        by_tuple = expand_communications(
            graph,
            mapping,
            architecture,
            bus_assignment={("P1", "P2"): architecture["bus2"]},
        )
        assert by_id.bus_assignment == by_tuple.bus_assignment
        assert by_id.bus_assignment["P1->P2"] == "bus2"

    def test_assignment_survives_remapping_of_endpoints(self):
        """The pin stays keyed to the edge: after the endpoints move, the
        message rides the pinned bus again wherever it crosses processors."""
        architecture, graph, mapping = build_two_pe_system()
        assignment = {"P1->P2": "bus2"}
        # Co-locate P1 and P2: the message goes dormant, the pin is ignored.
        co_located = mapping.reassigned({"P1": "pe2"})
        expanded = expand_communications(
            graph, co_located, architecture, bus_assignment=assignment
        )
        assert "P1->P2" not in expanded.bus_assignment
        # Split them again (the other way around): the pin applies again.
        split = co_located.reassigned({"P2": "pe1"})
        expanded = expand_communications(
            graph, split, architecture, bus_assignment=assignment
        )
        assert expanded.bus_assignment["P1->P2"] == "bus2"


class TestAssignmentValidation:
    def test_unknown_bus_rejected(self):
        architecture, graph, mapping = build_two_pe_system()
        with pytest.raises(MappingError, match="not a processing element"):
            expand_communications(
                graph, mapping, architecture, bus_assignment={"P1->P2": "bus9"}
            )

    def test_non_bus_element_rejected(self):
        architecture, graph, mapping = build_two_pe_system()
        with pytest.raises(MappingError, match="is not a bus"):
            expand_communications(
                graph, mapping, architecture, bus_assignment={"P1->P2": "pe1"}
            )

    def test_non_connecting_bus_rejected(self):
        architecture, graph, mapping = build_two_pe_system(
            num_buses=2, connectivity={"bus2": ["pe1"]}
        )
        with pytest.raises(MappingError, match="does not connect"):
            expand_communications(
                graph, mapping, architecture, bus_assignment={"P1->P2": "bus2"}
            )

    def test_foreign_processing_element_rejected(self):
        architecture, graph, mapping = build_two_pe_system()
        foreign = bus("bus1", speed=2.0)  # same name, different element
        with pytest.raises(MappingError, match="does not belong"):
            expand_communications(
                graph, mapping, architecture, bus_assignment={"P1->P2": foreign}
            )

    def test_unknown_policy_rejected(self):
        architecture, graph, mapping = build_two_pe_system()
        with pytest.raises(ValueError, match="unknown bus policy"):
            expand_communications(graph, mapping, architecture, bus_policy="round_robin")
        assert set(BUS_POLICIES) == {"least_index", "least_loaded"}


class TestBusPolicies:
    def test_default_policy_is_deterministic_by_name(self):
        """Regression: the least-index pick is the lexicographically least
        connecting bus name, however the architecture registered its buses."""
        forward = build_two_pe_system(num_buses=2, reverse_buses=False)
        reverse = build_two_pe_system(num_buses=2, reverse_buses=True)
        for architecture, graph, mapping in (forward, reverse):
            expanded = expand_communications(graph, mapping, architecture)
            assert set(expanded.bus_assignment.values()) == {"bus1"}

    def test_least_loaded_spreads_messages_over_buses(self):
        architecture, graph, mapping = build_two_pe_system(num_buses=2)
        expanded = expand_communications(
            graph, mapping, architecture, bus_policy="least_loaded"
        )
        # Two messages, two idle buses: each message gets its own bus
        # (first by name tie-break, then the unloaded one).
        assert expanded.bus_assignment == {
            "P1->P2": "bus1",
            "P2->P3": "bus2",
        }

    def test_least_loaded_balances_by_accumulated_time(self):
        """A long transfer on one bus pushes later messages to the other."""
        architecture = Architecture(
            [programmable("pe1"), programmable("pe2")],
            [bus("bus1"), bus("bus2")],
        )
        builder = CPGBuilder("load")
        for name in ("A", "B", "C", "D"):
            builder.process(name, 1.0)
        builder.edge("A", "B", communication_time=10.0)
        builder.edge("A", "C", communication_time=1.0)
        builder.edge("A", "D", communication_time=1.0)
        graph = builder.build(validate=False)
        mapping = Mapping(
            architecture, {"A": "pe1", "B": "pe2", "C": "pe2", "D": "pe2"}
        )
        expanded = expand_communications(
            graph, mapping, architecture, bus_policy="least_loaded"
        )
        assignment = expanded.bus_assignment
        # The 10-unit transfer lands on bus1 (name tie-break on an idle
        # platform); both small transfers then prefer the emptier bus2.
        assert assignment["A->B"] == "bus1"
        assert assignment["A->C"] == "bus2"
        assert assignment["A->D"] == "bus2"

    def test_explicit_pins_count_towards_least_loaded(self):
        architecture, graph, mapping = build_two_pe_system(num_buses=2)
        expanded = expand_communications(
            graph,
            mapping,
            architecture,
            bus_assignment={"P1->P2": "bus1"},
            bus_policy="least_loaded",
        )
        # The pinned message loads bus1, so the derived one avoids it.
        assert expanded.bus_assignment["P2->P3"] == "bus2"


class TestCommunicationLookup:
    def test_communication_between_is_indexed(self):
        architecture, graph, mapping = build_two_pe_system()
        expanded = expand_communications(graph, mapping, architecture)
        assert expanded.communication_between("P1", "P2").message == "P1->P2"
        assert expanded.communication_between("P2", "P3").message == "P2->P3"
        assert expanded.communication_between("P1", "P3") is None
        # The index is the lookup path: it covers exactly the inserted set.
        assert set(expanded._by_endpoints) == {("P1", "P2"), ("P2", "P3")}


class TestCandidatePins:
    def test_with_and_without_communication(self):
        candidate = Candidate(assignment=(("P1", "pe1"),))
        pinned = candidate.with_communication("P1->P2", "bus2")
        assert pinned.communication_dict == {"P1->P2": "bus2"}
        assert pinned.fingerprint != candidate.fingerprint
        assert candidate.communication_assignment == ()  # origin untouched
        restored = pinned.without_communication("P1->P2")
        assert restored.fingerprint == candidate.fingerprint
        with pytest.raises(KeyError):
            restored.without_communication("P1->P2")

    def test_pins_enter_describe_difference(self):
        candidate = Candidate(assignment=(("P1", "pe1"),))
        pinned = candidate.with_communication("P1->P2", "bus2")
        assert "P1->P2~bus2" in pinned.describe_difference(candidate)
        assert "P1->P2~derived" in candidate.describe_difference(pinned)


@pytest.fixture(scope="module")
def two_bus_fig1():
    return load_fig1_example(num_buses=2)


@pytest.fixture(scope="module")
def mapped_problem(two_bus_fig1):
    return ExplorationProblem(
        two_bus_fig1.process_graph,
        two_bus_fig1.mapping,
        two_bus_fig1.architecture,
        name="fig1-two-bus",
        map_communications=True,
    )


class TestProblemCommunicationLayer:
    def test_message_universe_covers_mapped_edges(self, mapped_problem):
        messages = {message for message, _, _ in mapped_problem.messages}
        assert "P1->P3" in messages and "P2->P5" in messages
        active = mapped_problem.active_messages(
            mapped_problem.initial_candidate()
        )
        # The paper's mapping splits exactly fourteen connections.
        assert len(active) == 14

    def test_connecting_buses_are_sorted_names(self, mapped_problem):
        initial = mapped_problem.initial_candidate()
        assert mapped_problem.connecting_buses(initial, "P1", "P3") == (
            "pe4",
            "pe5",
        )

    def test_bus_assignment_filters_stale_pins(self, mapped_problem):
        initial = mapped_problem.initial_candidate()
        candidate = (
            initial.with_communication("P1->P3", "pe5")     # valid pin
            .with_communication("P1->P2", "pe5")            # dormant: co-located
            .with_communication("nope->nada", "pe5")        # unknown message
            .with_communication("P2->P5", "no-such-bus")    # unknown bus
        )
        assert mapped_problem.bus_assignment_for(candidate) == {
            "P1->P3": "pe5"
        }

    def test_communications_for_reports_realised_buses(self, mapped_problem):
        initial = mapped_problem.initial_candidate()
        derived = mapped_problem.communications_for(initial)
        assert set(derived.values()) == {"pe4"}  # least-index collapses
        pinned = mapped_problem.communications_for(
            initial.with_communication("P1->P3", "pe5")
        )
        assert pinned["P1->P3"] == "pe5"
        assert len(pinned) == 14

    def test_pin_changes_cost_and_fingerprint_consistently(self, mapped_problem):
        initial = mapped_problem.initial_candidate()
        pinned = initial.with_communication("P1->P3", "pe5")
        base = evaluate_candidate(mapped_problem, initial)
        moved = evaluate_candidate(mapped_problem, pinned)
        assert base.fingerprint != moved.fingerprint
        assert base.feasible and moved.feasible
        # Routing one message off the shared bus reduces contention.
        assert moved.bus_imbalance < base.bus_imbalance

    def test_objective_vector_has_five_components(self, mapped_problem):
        evaluation = evaluate_candidate(
            mapped_problem, mapped_problem.initial_candidate()
        )
        assert len(evaluation.objectives) == len(OBJECTIVE_NAMES) == 5
        assert OBJECTIVE_NAMES[-1] == "bus_imbalance"
        # All fourteen messages on one of two buses: maximal contention.
        assert evaluation.objectives[-1] == pytest.approx(1.0)

    def test_bus_imbalance_weight_enters_scalar_cost(self, mapped_problem):
        weighted = evaluate_candidate(
            mapped_problem,
            mapped_problem.initial_candidate(),
            CostWeights(bus_imbalance=10.0),
        )
        assert weighted.cost == pytest.approx(
            weighted.delta_max + 10.0 * weighted.bus_imbalance
        )

    def test_payload_roundtrip_preserves_communication_flags(self, mapped_problem):
        rebuilt = ExplorationProblem.from_payload(mapped_problem.to_payload())
        assert rebuilt.map_communications is True
        assert rebuilt.bus_policy == "least_index"
        assert rebuilt.messages == mapped_problem.messages
        candidate = mapped_problem.initial_candidate().with_communication(
            "P1->P3", "pe5"
        )
        assert evaluate_candidate(rebuilt, candidate) == evaluate_candidate(
            mapped_problem, candidate
        )

    def test_payload_roundtrip_preserves_bus_policy(self, two_bus_fig1):
        problem = ExplorationProblem(
            two_bus_fig1.process_graph,
            two_bus_fig1.mapping,
            two_bus_fig1.architecture,
            bus_policy="least_loaded",
        )
        rebuilt = ExplorationProblem.from_payload(problem.to_payload())
        assert rebuilt.bus_policy == "least_loaded"
        assert rebuilt.map_communications is False

    def test_unknown_bus_policy_rejected(self, two_bus_fig1):
        with pytest.raises(ValueError, match="unknown bus policy"):
            ExplorationProblem(
                two_bus_fig1.process_graph,
                two_bus_fig1.mapping,
                two_bus_fig1.architecture,
                bus_policy="fastest",
            )


class TestCommunicationMoves:
    def test_comm_moves_only_sampled_when_enabled(self, two_bus_fig1, mapped_problem):
        plain = ExplorationProblem(
            two_bus_fig1.process_graph,
            two_bus_fig1.mapping,
            two_bus_fig1.architecture,
        )
        for problem, expected in ((plain, False), (mapped_problem, True)):
            sampler = NeighborhoodSampler(problem)
            rng = random.Random(0)
            kinds = set()
            candidate = problem.initial_candidate()
            for _ in range(40):
                for move, neighbor in sampler.sample(candidate, rng, 4):
                    kinds.add(move.kind)
                    candidate = neighbor
            assert (
                bool(kinds & {"remap_comm", "swap_bus"}) is expected
            ), kinds

    def test_remap_comm_pins_a_connecting_bus(self, mapped_problem):
        sampler = NeighborhoodSampler(mapped_problem)
        rng = random.Random(3)
        candidate = mapped_problem.initial_candidate()
        seen = 0
        for _ in range(60):
            for move, neighbor in sampler.sample(candidate, rng, 4):
                if move.kind == "remap_comm":
                    message, bus_name = move.operands
                    endpoints = {
                        m: (s, d) for m, s, d in mapped_problem.messages
                    }
                    src, dst = endpoints[message]
                    assert bus_name in mapped_problem.connecting_buses(
                        candidate, src, dst
                    )
                    assert neighbor.communication_dict[message] == bus_name
                    seen += 1
                candidate = neighbor
        assert seen > 0

    def test_swap_bus_exchanges_two_messages(self, mapped_problem):
        candidate = (
            mapped_problem.initial_candidate()
            .with_communication("P1->P3", "pe5")
            .with_communication("P3->P6", "pe4")
        )
        sampler = NeighborhoodSampler(mapped_problem)
        rng = random.Random(1)
        for _ in range(300):
            move = sampler._draw_swap_bus(candidate, rng)
            if move is None:
                continue
            (first, first_bus), (second, second_bus) = move.operands
            assert first_bus != second_bus
            swapped = move.apply(candidate)
            assert swapped.communication_dict[first] == first_bus
            assert swapped.communication_dict[second] == second_bus
            return
        pytest.fail("no swap_bus move drawn in 300 attempts")


class TestInfeasibleSeedWithMapping:
    def test_search_survives_unconnectable_messages(self):
        """Regression: swap_bus draws on a candidate with an unconnectable
        message must yield None, not crash — the search prices the seed as
        infeasible and repairs it, like the non-mapping engines do."""
        architecture = Architecture(
            [programmable("pe1"), programmable("pe2"), programmable("pe3")],
            [bus("bus1")],
            connectivity={"bus1": ["pe1", "pe2"]},
        )
        builder = CPGBuilder("split")
        builder.process("A", 2.0)
        builder.process("B", 3.0)
        builder.process("C", 2.0)
        builder.process("D", 3.0)
        builder.edge("A", "B", communication_time=1.0)  # pe1 -> pe3: no bus
        builder.edge("C", "D", communication_time=1.0)  # pe1 -> pe2: bus1
        graph = builder.build()
        mapping = Mapping(
            architecture,
            {"A": "pe1", "B": "pe3", "C": "pe1", "D": "pe2"},
        )
        problem = ExplorationProblem(
            graph, mapping, architecture, map_communications=True
        )
        config = ExplorationConfig(seed=0, max_cycles=8, neighbors_per_cycle=6)
        result = Explorer(problem, config=config).explore("tabu")
        assert not result.initial.feasible
        assert result.best.feasible  # repaired, not crashed


class TestSizingAwareBusRemoval:
    @pytest.fixture()
    def sized_problem(self, two_bus_fig1):
        from repro.exploration import ArchitectureBounds

        return ExplorationProblem(
            two_bus_fig1.process_graph,
            two_bus_fig1.mapping,
            two_bus_fig1.architecture,
            bounds=ArchitectureBounds(),
            map_communications=True,
        )

    def test_remove_bus_never_strands_a_message(self, sized_problem):
        """Removing either of two fully-connected buses is fine, but a
        candidate pinned to the removed bus gets rerouted, not stranded."""
        sampler = NeighborhoodSampler(sized_problem)
        candidate = sized_problem.initial_candidate().with_communication(
            "P1->P3", "pe5"
        )
        removals = [
            move
            for move in sampler._sizing_moves(candidate)
            if move.kind == "remove_bus"
        ]
        assert removals, "two buses above the minimum: removal must be offered"
        for move in removals:
            neighbor = move.apply(candidate)
            evaluation = evaluate_candidate(sized_problem, neighbor)
            assert evaluation.feasible, (move.describe(), evaluation.error)
            if move.operands[0] == "pe5":
                # The pin pointed at the removed bus: rerouted explicitly.
                assert neighbor.communication_dict["P1->P3"] == "pe4"
                assert "reroutes" in move.describe()

    def test_last_connecting_bus_is_never_removed(self):
        """On a platform where one bus is a pair's only connection, that
        bus's removal is not offered even when the bus count allows it."""
        from repro.exploration import ArchitectureBounds

        architecture = Architecture(
            [programmable("pe1"), programmable("pe2"), programmable("pe3")],
            [bus("bus_all"), bus("bus_pair")],
            connectivity={"bus_pair": ["pe1", "pe2"]},
        )
        builder = CPGBuilder("strand")
        builder.process("A", 2.0)
        builder.process("B", 2.0)
        builder.edge("A", "B", communication_time=1.0)
        graph = builder.build(validate=False)
        mapping = Mapping(architecture, {"A": "pe1", "B": "pe3"})
        problem = ExplorationProblem(
            graph,
            mapping,
            architecture,
            bounds=ArchitectureBounds(min_buses=1),
            map_communications=True,
        )
        sampler = NeighborhoodSampler(problem)
        candidate = problem.initial_candidate()
        removable = {
            move.operands[0]
            for move in sampler._sizing_moves(candidate)
            if move.kind == "remove_bus"
        }
        # A->B crosses pe1->pe3: only bus_all connects them, so only the
        # pair-local bus may be retired.
        assert removable == {"bus_pair"}


class TestAcceptanceScenario:
    """The frozen demonstration: mapped beats derived, deterministically."""

    def _explore(self, two_bus_fig1, mapped: bool):
        problem = ExplorationProblem(
            two_bus_fig1.process_graph,
            two_bus_fig1.mapping,
            two_bus_fig1.architecture,
            name="fig1-two-bus",
            map_communications=mapped,
        )
        config = ExplorationConfig(
            seed=ACCEPTANCE["seed"],
            max_cycles=ACCEPTANCE["cycles"],
            neighbors_per_cycle=ACCEPTANCE["neighbors"],
            track_front=True,
        )
        return problem, Explorer(problem, config=config).explore(
            ACCEPTANCE["engine"]
        )

    def test_mapping_beats_derived_default(self, two_bus_fig1):
        _, derived = self._explore(two_bus_fig1, mapped=False)
        problem, mapped = self._explore(two_bus_fig1, mapped=True)
        assert mapped.best.cost < derived.best.cost
        # The win is genuine routing, not rng luck: the winning candidate
        # pins messages and the realised mapping uses both buses.
        assert mapped.best_candidate.communication_assignment
        realised = problem.communications_for(mapped.best_candidate)
        assert len(set(realised.values())) == 2

    def test_same_seed_reproduces_best_and_front(self, two_bus_fig1):
        _, first = self._explore(two_bus_fig1, mapped=True)
        _, second = self._explore(two_bus_fig1, mapped=True)
        assert first.best_candidate == second.best_candidate
        assert first.best == second.best
        assert first.trajectory == second.trajectory
        assert first.front.vectors() == second.front.vectors()

    def test_cli_acceptance_run(self, capsys):
        from repro.cli import main

        base = ["explore", "--fig1", "--fig1-buses", "2",
                "--engine", ACCEPTANCE["engine"],
                "--seed", str(ACCEPTANCE["seed"]),
                "--cycles", str(ACCEPTANCE["cycles"]),
                "--neighbors", str(ACCEPTANCE["neighbors"]), "--json"]
        assert main(base) == 0
        derived = json.loads(capsys.readouterr().out)
        assert main(base + ["--map-communications"]) == 0
        mapped = json.loads(capsys.readouterr().out)
        (derived_result,) = derived["results"]
        (mapped_result,) = mapped["results"]
        assert mapped_result["best"]["cost"] < derived_result["best"]["cost"]
        # The JSON reports the chosen bus per message.
        realised = mapped_result["best"]["communication_mapping"]
        assert set(realised.values()) == {"pe4", "pe5"}
        assert mapped_result["best"]["communication_pins"]
        assert "communication_mapping" not in derived_result["best"]
        # Determinism: identical JSON for identical arguments.
        assert main(base + ["--map-communications"]) == 0
        assert json.loads(capsys.readouterr().out) == mapped


class TestPoolTransport:
    def test_pool_modes_match_serial_with_pins(self, mapped_problem):
        rng = random.Random(5)
        sampler = NeighborhoodSampler(mapped_problem)
        candidate = mapped_problem.initial_candidate()
        batch = []
        for _ in range(4):
            for _, neighbor in sampler.sample(candidate, rng, 3):
                batch.append(neighbor)
                candidate = neighbor
        assert any(c.communication_assignment for c in batch)
        serial = EvaluationPool(mapped_problem, mode="serial").evaluate(batch)
        with EvaluationPool(mapped_problem, workers=2, mode="process") as pool:
            assert pool.evaluate(batch) == serial


# -- connectivity-restricted platforms (hypothesis) ---------------------------


def _restricted_problem() -> ExplorationProblem:
    """Three processors, three buses of which two connect only PE subsets."""
    architecture = Architecture(
        [programmable("pe1"), programmable("pe2"), programmable("pe3")],
        [bus("bus_all"), bus("bus_left"), bus("bus_right")],
        connectivity={
            "bus_left": ["pe1", "pe2"],
            "bus_right": ["pe2", "pe3"],
        },
    )
    builder = CPGBuilder("restricted")
    builder.process("A", 2.0)
    builder.process("B", 3.0)
    builder.process("C", 2.0)
    builder.process("D", 4.0)
    builder.process("E", 3.0)
    builder.edge("A", "B", communication_time=2.0)
    builder.edge("A", "C", communication_time=1.0)
    builder.edge("B", "D", condition=C.true(), communication_time=2.0)
    builder.edge("B", "E", condition=C.false(), communication_time=1.0)
    builder.edge("C", "D")
    builder.edge("C", "E")
    graph = builder.build()
    mapping = Mapping(
        architecture,
        {"A": "pe1", "B": "pe2", "C": "pe3", "D": "pe1", "E": "pe2"},
    )
    return ExplorationProblem(
        graph, mapping, architecture, map_communications=True
    )


#: Module-level problem for the hypothesis tests (built once; hypothesis
#: disallows function-scoped fixtures).
_RESTRICTED_PROBLEM = _restricted_problem()


def _assert_connecting(problem: ExplorationProblem, candidate) -> None:
    """Every realised communication must ride a bus connecting its endpoints."""
    try:
        realised = problem.communications_for(candidate)
    except MappingError:
        return  # infeasible candidates never produce a schedule
    architecture = problem.architecture_for(candidate)
    assignment = candidate.assignment_dict
    endpoints = {message: (src, dst) for message, src, dst in problem.messages}
    for message, bus_name in realised.items():
        src, dst = endpoints[message]
        connecting = {
            pe.name
            for pe in architecture.buses_between(
                architecture[assignment[src]], architecture[assignment[dst]]
            )
        }
        assert bus_name in connecting, (message, bus_name, connecting)


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_restricted_move_sequences_stay_on_connecting_buses(data):
    """Property: any remap/swap/comm move sequence on a connectivity-
    restricted platform yields candidates whose realised communication
    mapping only ever uses buses that connect the endpoints."""
    problem = _RESTRICTED_PROBLEM
    sampler = NeighborhoodSampler(problem)
    rng = random.Random(data.draw(st.integers(0, 2**16), label="seed"))
    candidate = problem.initial_candidate()
    for _ in range(data.draw(st.integers(1, 8), label="moves")):
        neighbors = sampler.sample(candidate, rng, 1)
        if not neighbors:
            break
        _, candidate = neighbors[0]
        _assert_connecting(problem, candidate)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_restricted_exploration_only_evaluates_connecting_buses(seed):
    """Property: every candidate an engine evaluates on the restricted
    platform maps each communication to a connecting bus."""
    problem = _RESTRICTED_PROBLEM

    class _Recorder(CachedEvaluator):
        def __init__(self):
            super().__init__(problem)
            self.seen = []

        def evaluate_many(self, candidates):
            self.seen.extend(candidates)
            return super().evaluate_many(candidates)

    recorder = _Recorder()
    config = ExplorationConfig(seed=seed, max_cycles=4, neighbors_per_cycle=4)
    Explorer(problem, config=config, evaluator=recorder).explore("tabu")
    assert recorder.seen
    for candidate in recorder.seen:
        _assert_connecting(problem, candidate)
