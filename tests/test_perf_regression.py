"""Perf smoke test: merge time must not blow up against BENCH_core.json.

Runs the same comparison as ``scripts/run_benchmarks.py --check`` on the
committed baseline, but with a relaxed tolerance (3x instead of the CLI's
25%) so tier-1 stays deterministic on busy machines while still catching an
accidental return to the pre-optimisation complexity (the seed
implementation was 5-15x slower, far outside even the relaxed limit).  The
check additionally scales its limit by the host-speed calibration recorded
in the baseline, so a slower machine than the baseline host does not fail
spuriously.

Deselect with ``-m "not perf"`` if a constrained environment cannot afford
the ~0.2s measurement.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "scripts"))

from run_benchmarks import DEFAULT_OUTPUT, check  # noqa: E402

#: Relaxed factor for the in-suite smoke check (the CLI uses 0.25).
SMOKE_TOLERANCE = 2.0


@pytest.mark.perf
def test_merge_time_within_smoke_tolerance():
    if not DEFAULT_OUTPUT.exists():
        pytest.skip("BENCH_core.json baseline not present")
    failure = check(DEFAULT_OUTPUT, tolerance=SMOKE_TOLERANCE, repeats=3)
    assert failure is None, failure
