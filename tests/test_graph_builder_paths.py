"""Tests for the graph builder and the alternative-path enumeration."""

import pytest

from repro.conditions import Condition, Conjunction
from repro.graph import (
    CPGBuilder,
    PathEnumerator,
    build_chain_graph,
    count_paths,
    enumerate_paths,
)

C = Condition("C")
D = Condition("D")


class TestBuilder:
    def test_polarisation_connects_orphans(self):
        builder = CPGBuilder("polar")
        builder.process("P1", 1.0)
        builder.process("P2", 1.0)
        graph = builder.build()
        assert graph.has_edge(builder.source_name, "P1")
        assert graph.has_edge("P1", builder.sink_name)
        assert graph.has_edge(builder.source_name, "P2")

    def test_chain_helper(self):
        builder = CPGBuilder("chain")
        for name in ("A", "B", "C"):
            builder.process(name, 1.0)
        builder.chain("A", "B", "C")
        graph = builder.build()
        assert graph.has_edge("A", "B") and graph.has_edge("B", "C")

    def test_build_can_only_run_once(self):
        builder = CPGBuilder("once")
        builder.process("P1", 1.0)
        builder.build()
        with pytest.raises(RuntimeError):
            builder.build()

    def test_build_chain_graph(self):
        graph = build_chain_graph("chain", {"A": 1.0, "B": 2.0, "C": 3.0})
        assert graph.has_edge("A", "B")
        assert graph["B"].execution_time == 2.0
        assert count_paths(graph) == 1

    def test_custom_source_sink_names(self):
        builder = CPGBuilder("named", source_name="P0", sink_name="P99")
        builder.process("P1", 1.0)
        graph = builder.build()
        assert graph.source.name == "P0"
        assert graph.sink.name == "P99"


def nested_condition_graph():
    """C decides between a branch that contains D and a plain branch (3 paths)."""
    builder = CPGBuilder("nested")
    for name in ("P1", "P2", "P3", "P4", "P5", "P6"):
        builder.process(name, 1.0)
    builder.edge("P1", "P2", condition=C.true())
    builder.edge("P1", "P3", condition=C.false())
    builder.edge("P2", "P4", condition=D.true())
    builder.edge("P2", "P5", condition=D.false())
    builder.edge("P4", "P6")
    builder.edge("P5", "P6")
    builder.edge("P3", "P6")
    return builder.build()


class TestPathEnumeration:
    def test_single_path_without_conditions(self):
        graph = build_chain_graph("chain", {"A": 1.0, "B": 1.0})
        paths = enumerate_paths(graph)
        assert len(paths) == 1
        assert paths[0].label == Conjunction.true()
        assert set(paths[0].active_processes) == set(graph.process_names)

    def test_nested_conditions_yield_three_paths(self):
        graph = nested_condition_graph()
        paths = enumerate_paths(graph)
        labels = {str(p.label) for p in paths}
        assert labels == {"C & D", "C & !D", "!C"}

    def test_active_processes_per_path(self):
        graph = nested_condition_graph()
        enumerator = PathEnumerator(graph)
        path_true_true = enumerator.path_for({C: True, D: True})
        assert "P4" in path_true_true.active_processes
        assert "P5" not in path_true_true.active_processes
        assert "P3" not in path_true_true.active_processes
        path_false = enumerator.path_for({C: False, D: True})
        assert "P3" in path_false.active_processes
        assert "P2" not in path_false.active_processes

    def test_path_for_unknown_assignment_raises(self):
        graph = nested_condition_graph()
        enumerator = PathEnumerator(graph)
        with pytest.raises(KeyError):
            enumerator.path_for({})

    def test_reachable_paths_filter(self):
        graph = nested_condition_graph()
        enumerator = PathEnumerator(graph)
        reachable = enumerator.reachable_paths({C: True})
        assert {str(p.label) for p in reachable} == {"C & D", "C & !D"}
        assert len(enumerator.reachable_paths({})) == 3

    def test_subgraph_of_path(self):
        graph = nested_condition_graph()
        enumerator = PathEnumerator(graph)
        path = enumerator.path_for({C: False, D: False})
        sub = enumerator.subgraph_of(path)
        assert "P3" in sub.process_names
        assert "P2" not in sub.process_names

    def test_path_consistency_helpers(self):
        graph = nested_condition_graph()
        path = PathEnumerator(graph).path_for({C: True, D: False})
        assert path.is_consistent_with({C: True})
        assert not path.is_consistent_with({C: False})
        assert path.includes("P5")
        assert not path.includes("P4")

    def test_count_paths_matches_enumeration(self):
        graph = nested_condition_graph()
        assert count_paths(graph) == len(enumerate_paths(graph)) == 3

    def test_paths_are_cached_and_immutable(self):
        enumerator = PathEnumerator(nested_condition_graph())
        first = enumerator.paths()
        second = enumerator.paths()
        assert first is second  # the cached tuple is returned, not a copy
        assert isinstance(first, tuple)  # callers cannot corrupt the cache
        assert len(enumerator.paths()) == 3

    def test_fig1_has_six_paths(self, fig1):
        assert count_paths(fig1.graph) == 6

    def test_fig1_path_labels(self, fig1):
        labels = {str(p.label) for p in enumerate_paths(fig1.graph)}
        assert labels == {
            "C & D & K",
            "C & D & !K",
            "!C & D & K",
            "!C & D & !K",
            "C & !D",
            "!C & !D",
        }
