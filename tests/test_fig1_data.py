"""Tests pinning the Fig. 1 reference system to the facts published in the paper."""

import pytest

from repro.conditions import Condition
from repro.data import (
    COMMUNICATION_TIMES,
    EXECUTION_TIMES,
    PAPER_PATH_DELAYS,
    PAPER_WORST_CASE_DELAY,
    PROCESS_MAPPING,
    load_fig1_example,
)
from repro.graph import PathEnumerator


class TestPublishedFacts:
    def test_seventeen_ordinary_processes(self, fig1):
        assert len(fig1.process_graph.ordinary_processes) == 17
        assert set(EXECUTION_TIMES) == {f"P{i}" for i in range(1, 18)}

    def test_execution_times_match_paper(self, fig1):
        for name, time in EXECUTION_TIMES.items():
            assert fig1.process_graph[name].execution_time == time

    def test_fourteen_communications_with_published_times(self, fig1):
        assert len(COMMUNICATION_TIMES) == 14
        for (src, dst), time in COMMUNICATION_TIMES.items():
            info = fig1.expanded.communication_between(src, dst)
            assert info is not None, f"missing communication {src}->{dst}"
            assert info.communication_time == time

    def test_mapping_matches_paper(self, fig1):
        for process, pe_name in PROCESS_MAPPING.items():
            assert fig1.mapping[process].name == pe_name

    def test_architecture_shape(self, fig1):
        arch = fig1.architecture
        assert len(arch.programmable_processors) == 2
        assert len(arch.hardware_processors) == 1
        assert len(arch.buses) == 1
        assert arch.condition_broadcast_time == 1.0
        assert arch["pe3"].is_hardware

    def test_three_conditions(self, fig1):
        assert {c.name for c in fig1.graph.conditions} == {"C", "D", "K"}

    def test_disjunction_processes(self, fig1):
        disjunctions = fig1.graph.disjunction_processes()
        assert disjunctions["P2"] == Condition("C")
        assert disjunctions["P11"] == Condition("D")
        assert disjunctions["P12"] == Condition("K")

    def test_published_guards(self, fig1):
        guards = fig1.graph.guards()
        assert guards["P3"].is_true()
        assert guards["P17"].is_true()
        assert str(guards["P5"]) == "C"
        assert guards["P14"].is_equivalent_to(
            guards["P14"]
        )  # sanity: well-formed expression
        assert {c.name for c in guards["P14"].conditions} == {"D", "K"}

    def test_conjunction_processes_include_p7_and_p17(self, fig1):
        conjunctions = set(fig1.graph.conjunction_processes())
        assert "P7" in conjunctions
        assert "P17" in conjunctions

    def test_six_alternative_paths(self, fig1):
        assert PathEnumerator(fig1.graph).count() == 6
        assert len(PAPER_PATH_DELAYS) == 6

    def test_polar_structure_p0_p32(self, fig1):
        assert fig1.graph.source.name == "P0"
        assert fig1.graph.sink.name == "P32"

    def test_sink_predecessors_are_p10_and_p17(self, fig1):
        preds = set(fig1.process_graph.predecessors("P32"))
        assert preds == {"P10", "P17"}

    def test_paper_constants_are_positive(self):
        assert PAPER_WORST_CASE_DELAY == 39.0
        assert all(delay > 0 for delay in PAPER_PATH_DELAYS.values())


class TestReconstructionQuality:
    def test_delta_m_is_same_order_as_paper(self, fig1_merge_result):
        # The intra-processor edges of Fig. 1 are not published, so the absolute
        # delays differ; they must however stay in the same range (tens of time
        # units, not hundreds).
        assert 25 <= fig1_merge_result.delta_m <= 60
        assert 25 <= fig1_merge_result.delta_max <= 60

    def test_longest_and_shortest_path_ordering(self, fig1_merge_result):
        delays = sorted(s.delay for s in fig1_merge_result.path_schedules.values())
        assert delays[0] < delays[-1]

    def test_loader_returns_fresh_objects(self):
        first = load_fig1_example()
        second = load_fig1_example()
        assert first.graph is not second.graph
