"""Tests of the observability layer: tracing, metrics, trace reports.

The contract under test, in four parts.  (1) The disabled path is free:
``NULL_TRACER`` hands out one shared no-op span and instrumented layers
default to ``tracer=None``/``metrics=None``, so results are bit-identical
with observability on or off.  (2) Traces are schema-strict and
deterministic: the same seed produces the same span/event sequence modulo
timestamps.  (3) Metrics snapshots merge correctly: per-worker registries
fold into the same view one shared registry would have produced.  (4) The
resilience machinery surfaces as first-class trace events under the fault
matrix, and ``repro-cpg trace-report`` aggregates it all into per-stage
wall-time tables.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.exploration import (
    CachedEvaluator,
    EvaluationPool,
    ExplorationConfig,
    ExplorationProblem,
    Explorer,
    FaultInjector,
    RetryPolicy,
)
from repro.generator import generate_system
from repro.observability import (
    NULL_TRACER,
    RECORD_KEYS,
    HistogramStats,
    JsonlSink,
    MetricsRegistry,
    MetricsSnapshot,
    RingBufferSink,
    TraceError,
    Tracer,
    aggregate_trace,
    format_trace_report,
    iter_spans,
    merge_snapshots,
    read_trace,
    tracer_or_null,
    validate_record,
)


@pytest.fixture(scope="module")
def problem():
    """A small seeded problem (16 nodes, 2 alternative paths)."""
    return ExplorationProblem.from_system(generate_system(16, 2, seed=3))


def _explore(problem, tracer=None, metrics=None, engine="tabu", seed=3):
    config = ExplorationConfig(seed=seed, max_cycles=3, neighbors_per_cycle=4)
    explorer = Explorer(problem, config=config, tracer=tracer, metrics=metrics)
    return explorer.explore(engine)


# -- schema ------------------------------------------------------------------------


def _record(**overrides):
    base = {
        "type": "span",
        "run": "r",
        "seq": 0,
        "id": 1,
        "parent": None,
        "name": "engine",
        "t0": 0.0,
        "dt": 0.5,
        "attrs": {"engine": "tabu"},
    }
    base.update(overrides)
    return base


def test_valid_record_passes():
    record = _record()
    assert validate_record(record) is record


@pytest.mark.parametrize(
    "mutation",
    [
        {"type": "other"},
        {"run": ""},
        {"run": 7},
        {"seq": True},
        {"id": "x"},
        {"parent": "x"},
        {"name": ""},
        {"t0": -1.0},
        {"dt": "fast"},
        {"dt": -0.1},
        {"attrs": [1]},
        {"attrs": {"bad": [1, 2]}},
    ],
)
def test_invalid_field_rejected(mutation):
    with pytest.raises(TraceError):
        validate_record(_record(**mutation))


def test_missing_and_unknown_keys_rejected():
    record = _record()
    del record["name"]
    with pytest.raises(TraceError, match="missing"):
        validate_record(record)
    with pytest.raises(TraceError, match="unknown"):
        validate_record(_record(extra=1))


def test_non_dict_record_rejected():
    with pytest.raises(TraceError):
        validate_record(["span"])


# -- tracer ------------------------------------------------------------------------


def test_spans_nest_and_events_attach():
    sink = RingBufferSink()
    tracer = Tracer(sink, run_id="t")
    with tracer.span("engine", engine="tabu") as engine:
        with tracer.span("cycle") as cycle:
            tracer.event("resilience.retry", attempt=1)
    tracer.close()
    records = sink.records
    for record in records:
        validate_record(record)
    by_name = {record["name"]: record for record in records}
    assert by_name["cycle"]["parent"] == engine.span_id
    assert by_name["resilience.retry"]["parent"] == cycle.span_id
    assert by_name["resilience.retry"]["dt"] == 0.0
    assert by_name["engine"]["parent"] is None
    # Spans emit at close: children precede parents; seq restores order.
    assert [r["name"] for r in records] == [
        "resilience.retry", "cycle", "engine",
    ]
    assert [r["seq"] for r in records] == [0, 1, 2]


def test_close_pops_open_descendants():
    sink = RingBufferSink()
    tracer = Tracer(sink)
    outer = tracer.span("outer")
    tracer.span("inner")  # left open, as after a loop ``break``
    outer.close()
    names = [record["name"] for record in sink.records]
    assert names == ["inner", "outer"]
    assert sink.records[0]["parent"] == outer.span_id


def test_close_attrs_and_duration():
    sink = RingBufferSink()
    tracer = Tracer(sink)
    span = tracer.span("stage.merge")
    duration = span.close(hit=True)
    assert duration >= 0.0
    assert span.close() == 0.0  # idempotent
    record = sink.records[0]
    assert record["attrs"] == {"hit": True}
    assert record["dt"] >= 0.0 and record["t0"] >= 0.0


def test_ring_buffer_evicts_oldest():
    sink = RingBufferSink(capacity=2)
    tracer = Tracer(sink)
    for index in range(4):
        tracer.span(f"s{index}").close()
    assert [record["name"] for record in sink.records] == ["s2", "s3"]
    with pytest.raises(ValueError):
        RingBufferSink(capacity=0)


def test_jsonl_sink_roundtrip(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(JsonlSink(path), run_id="roundtrip")
    with tracer.span("engine", engine="anneal"):
        tracer.event("resilience.timeout")
    tracer.close()
    records = read_trace(path)
    assert [record["name"] for record in records] == [
        "resilience.timeout", "engine",
    ]
    assert all(record["run"] == "roundtrip" for record in records)
    assert list(iter_spans(records)) == [records[1]]


def test_read_trace_rejects_bad_lines(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("not json\n")
    with pytest.raises(TraceError, match=":1:"):
        read_trace(path)
    path.write_text(json.dumps({"type": "span"}) + "\n")
    with pytest.raises(TraceError, match="missing"):
        read_trace(path)


# -- disabled-path guarantees ------------------------------------------------------


def test_null_tracer_allocates_no_spans():
    # The no-op path hands out one shared span instance: identity, not just
    # equality — the disabled path must not allocate per call.
    assert NULL_TRACER.span("a") is NULL_TRACER.span("b", attr=1)
    assert NULL_TRACER.span("a").close(attr=2) == 0.0
    assert NULL_TRACER.event("x") is None
    assert NULL_TRACER.enabled is False
    with NULL_TRACER.span("ctx") as span:
        assert span is NULL_TRACER.span("ctx")
    NULL_TRACER.close()


def test_tracer_or_null():
    assert tracer_or_null(None) is NULL_TRACER
    tracer = Tracer(RingBufferSink())
    assert tracer_or_null(tracer) is tracer


def test_default_result_carries_no_timing(problem):
    result = _explore(problem)
    assert result.stage_seconds is None
    assert result.wall_seconds is None


def test_instrumented_run_is_bit_identical_to_plain(problem):
    plain = _explore(problem)
    traced = _explore(
        problem, tracer=Tracer(RingBufferSink()), metrics=MetricsRegistry()
    )
    assert traced.best == plain.best
    assert traced.trajectory == plain.trajectory
    assert traced.evaluations == plain.evaluations


# -- determinism -------------------------------------------------------------------


def _normalised(records):
    """Trace records with the timing fields zeroed (determinism yardstick)."""
    return [{**record, "t0": 0.0, "dt": 0.0} for record in records]


def test_trace_is_deterministic_modulo_timestamps(problem):
    sequences = []
    for _ in range(2):
        sink = RingBufferSink(capacity=100_000)
        _explore(problem, tracer=Tracer(sink), metrics=MetricsRegistry())
        sequences.append(_normalised(sink.records))
    assert sequences[0] == sequences[1]


# -- metrics -----------------------------------------------------------------------


def test_registry_counters_gauges_histograms():
    registry = MetricsRegistry()
    registry.count("cache.hits")
    registry.count("cache.hits", 2)
    registry.gauge("pool.queue_depth", 5.0)
    registry.observe("stage.merge.seconds", 0.25)
    registry.observe("stage.merge.seconds", 0.75)
    snapshot = registry.snapshot()
    assert snapshot.counters["cache.hits"] == 3.0
    assert snapshot.gauges["pool.queue_depth"] == 5.0
    stats = snapshot.histograms["stage.merge.seconds"]
    assert stats.count == 2
    assert stats.total == 1.0
    assert stats.minimum == 0.25 and stats.maximum == 0.75
    assert stats.mean == 0.5
    assert snapshot.stage_seconds() == {"merge": 1.0}


def test_snapshot_is_frozen_copy():
    registry = MetricsRegistry()
    registry.count("c")
    snapshot = registry.snapshot()
    registry.count("c")
    assert snapshot.counters["c"] == 1.0
    assert registry.snapshot().counters["c"] == 2.0


def test_merge_equals_single_registry():
    # Per-worker registries folded together must equal one shared registry
    # that saw every write — the property pool-mode reporting relies on.
    observations = [0.1, 0.4, 0.2, 0.9, 0.3, 0.6]
    shared = MetricsRegistry()
    workers = [MetricsRegistry() for _ in range(3)]
    for index, value in enumerate(observations):
        for registry in (shared, workers[index % 3]):
            registry.observe("stage.expansion.seconds", value)
            registry.count("cache.misses")
    shared.gauge("pool.queue_depth", 7.0)
    workers[0].gauge("pool.queue_depth", 3.0)
    workers[2].gauge("pool.queue_depth", 7.0)
    merged = merge_snapshots(*[worker.snapshot() for worker in workers])
    expected = shared.snapshot()
    assert merged.counters == expected.counters
    assert merged.gauges == expected.gauges
    assert merged.histograms == expected.histograms
    assert merged.stage_seconds() == expected.stage_seconds()


def test_merge_snapshots_skips_none_and_handles_empty():
    snapshot = MetricsSnapshot(counters={"a": 1.0})
    merged = merge_snapshots(None, snapshot, None)
    assert merged.counters == {"a": 1.0}
    assert merge_snapshots().counters == {}
    empty = HistogramStats()
    assert empty.combined(HistogramStats(count=1, total=2.0)).total == 2.0
    assert empty.mean == 0.0


# -- instrumented pipeline ---------------------------------------------------------


def test_metrics_cover_every_stage(problem):
    metrics = MetricsRegistry()
    result = _explore(problem, metrics=metrics)
    assert result.wall_seconds is not None and result.wall_seconds > 0
    assert set(result.stage_seconds) >= {
        "expansion", "path_schedule", "merge",
    }
    snapshot = metrics.snapshot()
    assert snapshot.counters["cache.misses"] > 0
    assert snapshot.histograms["evaluate.seconds"].count == result.evaluations
    assert "engine.tabu.cycle.seconds" in snapshot.histograms


def test_trace_covers_stages_and_engines(problem):
    sink = RingBufferSink(capacity=100_000)
    _explore(problem, tracer=Tracer(sink), engine="anneal")
    report = aggregate_trace(sink.records)
    assert {"expansion", "path_schedule", "merge"} <= set(report.stages)
    assert report.per_engine[("anneal", "merge")].count > 0
    assert report.engines["anneal"] > 0
    # evaluate spans exist but are not stages.
    assert "evaluate" not in report.stages


def test_genetic_engine_traces_generations(problem):
    sink = RingBufferSink(capacity=100_000)
    metrics = MetricsRegistry()
    result = _explore(problem, tracer=Tracer(sink), metrics=metrics,
                      engine="genetic")
    assert result.stage_seconds is not None
    names = {record["name"] for record in sink.records}
    assert {"engine", "cycle", "evaluate"} <= names
    assert "engine.genetic.cycle.seconds" in metrics.snapshot().histograms


def test_thread_pool_shares_tracer_and_metrics(problem):
    metrics = MetricsRegistry()
    tracer = Tracer(RingBufferSink(capacity=100_000))
    batch = []
    initial = problem.initial_candidate()
    batch.append(initial)
    for process in problem.movable_processes[:3]:
        targets = [
            pe for pe in problem.processor_names
            if pe != initial.pe_of(process)
        ]
        batch.append(initial.reassigned(process, targets[0]))
    with EvaluationPool(problem, mode="serial") as reference_pool:
        reference = reference_pool.evaluate(batch)
    with EvaluationPool(
        problem, mode="thread", workers=2, tracer=tracer, metrics=metrics
    ) as pool:
        evaluations = pool.evaluate(batch)
    assert evaluations == reference
    snapshot = metrics.snapshot()
    assert snapshot.histograms["evaluate.seconds"].count == len(batch)
    assert snapshot.histograms["pool.unit.seconds"].count > 0
    assert snapshot.gauges["pool.queue_depth"] >= 1.0


# -- resilience events -------------------------------------------------------------


def test_fault_matrix_emits_resilience_events(problem):
    batch = [problem.initial_candidate()]
    for process in problem.movable_processes[:4]:
        targets = [
            pe for pe in problem.processor_names
            if pe != batch[0].pe_of(process)
        ]
        batch.append(batch[0].reassigned(process, targets[0]))
    with EvaluationPool(problem, mode="serial") as clean_pool:
        clean = clean_pool.evaluate(batch)

    sink = RingBufferSink(capacity=100_000)
    metrics = MetricsRegistry()
    injector = FaultInjector(seed=3, crash_rate=0.5)
    with EvaluationPool(
        problem,
        mode="serial",
        retry=RetryPolicy(backoff_base=0.0),
        fault_injector=injector,
        tracer=Tracer(sink),
        metrics=metrics,
    ) as pool:
        faulted = pool.evaluate(batch)
        stats = pool.resilience_stats
    # Faults change nothing about the evaluations...
    assert faulted == clean
    assert stats.injected > 0
    # ...but every injection and retry is a first-class trace event,
    events = [r for r in sink.records if r["type"] == "event"]
    names = [record["name"] for record in events]
    assert names.count("resilience.fault_injected") == stats.injected
    assert names.count("resilience.retry") == stats.retries
    for record in events:
        assert record["attrs"].get("fingerprint")
    # ...mirrored into the pool.* counters,
    counters = metrics.snapshot().counters
    assert counters["pool.injected"] == stats.injected
    assert counters["pool.retries"] == stats.retries
    # ...and tallied by trace-report aggregation.
    report = aggregate_trace(sink.records)
    assert report.events["resilience.fault_injected"] == stats.injected


def test_quarantine_event_when_retries_exhausted(problem):
    candidate = problem.initial_candidate()
    sink = RingBufferSink()
    with EvaluationPool(
        problem,
        mode="serial",
        retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
        fault_injector=FaultInjector(seed=3, crash_rate=1.0),
        tracer=Tracer(sink),
    ) as pool:
        (evaluation,) = pool.evaluate([candidate])
    assert not evaluation.feasible
    names = [r["name"] for r in sink.records if r["type"] == "event"]
    assert "resilience.quarantine" in names


# -- trace report ------------------------------------------------------------------


def test_report_substage_not_double_counted():
    sink = RingBufferSink()
    tracer = Tracer(sink)
    with tracer.span("engine", engine="tabu"):
        with tracer.span("stage.merge"):
            tracer.span("stage.merge_readjust").close()
    tracer.close()
    report = aggregate_trace(sink.records)
    merge = report.stages["merge"]
    # merge_readjust time is inside merge's span: excluded from the total.
    assert report.profiled_seconds == pytest.approx(merge.total_seconds)
    rows = {row[0]: row for row in report.stage_rows()}
    assert rows["merge_readjust"][4] == "(in merge)"
    assert rows["merge"][4].endswith("%")
    assert report.per_engine[("tabu", "merge_readjust")].count == 1


def test_report_attributes_orphan_stages_to_dash():
    sink = RingBufferSink()
    tracer = Tracer(sink)
    tracer.span("stage.expansion").close()
    tracer.close()
    report = aggregate_trace(sink.records)
    assert ("-", "expansion") in report.per_engine
    assert report.engine_rows()[0][0] == "-"


def test_format_trace_report_renders_tables():
    sink = RingBufferSink()
    tracer = Tracer(sink)
    with tracer.span("engine", engine="tabu"):
        tracer.span("stage.expansion").close()
        tracer.event("resilience.retry")
    tracer.close()
    text = format_trace_report(aggregate_trace(sink.records), source="x.jsonl")
    assert "trace (x.jsonl)" in text
    assert "per-stage wall time" in text
    assert "expansion" in text
    assert "resilience.retry" in text


def test_record_keys_documented():
    assert set(_record()) == set(RECORD_KEYS)


# -- CLI ---------------------------------------------------------------------------


def _cli_explore(extra, capsys):
    argv = [
        "explore", "--fig1", "--cycles", "2", "--neighbors", "4", "--seed", "1",
    ] + extra
    code = main(argv)
    return code, capsys.readouterr().out


def test_cli_trace_and_report(tmp_path, capsys):
    trace_path = tmp_path / "run.jsonl"
    code, output = _cli_explore(
        ["--trace", str(trace_path), "--metrics"], capsys
    )
    assert code == 0
    assert "timing: wall" in output
    records = read_trace(trace_path)  # schema-valid by construction
    assert records
    assert main(["trace-report", str(trace_path)]) == 0
    report_output = capsys.readouterr().out
    assert "per-stage wall time" in report_output
    for stage in ("expansion", "path_schedule", "merge"):
        assert stage in report_output


def test_cli_json_with_metrics(tmp_path, capsys):
    code, output = _cli_explore(["--metrics", "--json"], capsys)
    assert code == 0
    document = json.loads(output)
    result = document["results"][0]
    assert result["wall_seconds"] > 0
    assert set(result["stage_seconds"]) >= {
        "expansion", "path_schedule", "merge",
    }
    assert result["stages"] is not None  # hit/miss block still present


def test_cli_json_without_metrics_is_unstamped(capsys):
    code, output = _cli_explore(["--json"], capsys)
    assert code == 0
    result = json.loads(output)["results"][0]
    assert result["wall_seconds"] is None
    assert result["stage_seconds"] is None


def test_cli_trace_report_rejects_malformed_file(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"type": "span"}\n')
    assert main(["trace-report", str(bad)]) == 2
    assert "error: invalid trace" in capsys.readouterr().err


def test_cli_trace_report_missing_file(capsys):
    assert main(["trace-report", "/nonexistent/trace.jsonl"]) == 2
    assert "no such file" in capsys.readouterr().err
