"""Unit tests for the conditional process graph container (guards, structure, validation)."""

import pytest

from repro.conditions import BoolExpr, Condition
from repro.graph import (
    CPGBuilder,
    ConditionalProcessGraph,
    Edge,
    GraphStructureError,
    ordinary_process,
    sink_process,
    source_process,
)

C = Condition("C")
D = Condition("D")


def build_branching_graph():
    """source -> P1 (computes C) -> {P2 if C, P3 if !C} -> P4 (conjunction) -> sink."""
    builder = CPGBuilder("branching")
    builder.process("P1", 2.0)
    builder.process("P2", 3.0)
    builder.process("P3", 4.0)
    builder.process("P4", 1.0)
    builder.edge("P1", "P2", condition=C.true())
    builder.edge("P1", "P3", condition=C.false())
    builder.edge("P2", "P4")
    builder.edge("P3", "P4")
    return builder.build()


class TestConstruction:
    def test_duplicate_process_rejected(self):
        graph = ConditionalProcessGraph()
        graph.add_process(ordinary_process("P1", 1.0))
        with pytest.raises(GraphStructureError):
            graph.add_process(ordinary_process("P1", 2.0))

    def test_duplicate_source_rejected(self):
        graph = ConditionalProcessGraph()
        graph.add_process(source_process("s1"))
        with pytest.raises(GraphStructureError):
            graph.add_process(source_process("s2"))

    def test_edge_requires_existing_endpoints(self):
        graph = ConditionalProcessGraph()
        graph.add_process(ordinary_process("P1", 1.0))
        with pytest.raises(GraphStructureError):
            graph.add_edge(Edge("P1", "P2"))

    def test_duplicate_edge_rejected(self):
        graph = ConditionalProcessGraph()
        graph.add_process(ordinary_process("P1", 1.0))
        graph.add_process(ordinary_process("P2", 1.0))
        graph.connect("P1", "P2")
        with pytest.raises(GraphStructureError):
            graph.connect("P1", "P2")

    def test_len_and_iteration(self):
        graph = build_branching_graph()
        assert len(graph) == 6  # four processes + source + sink
        assert {p.name for p in graph} >= {"P1", "P2", "P3", "P4"}

    def test_accessors(self):
        graph = build_branching_graph()
        assert graph.source.is_source and graph.sink.is_sink
        assert graph.has_edge("P1", "P2")
        assert graph.get_edge("P1", "P2").condition == C.true()
        assert set(graph.successors("P1")) == {"P2", "P3"}
        assert set(graph.predecessors("P4")) == {"P2", "P3"}
        assert len(graph.conditional_edges) == 2

    def test_topological_order_is_consistent(self):
        graph = build_branching_graph()
        order = graph.topological_order()
        assert order.index("P1") < order.index("P2")
        assert order.index("P2") < order.index("P4")

    def test_to_networkx_carries_attributes(self):
        nx_graph = build_branching_graph().to_networkx()
        assert nx_graph.nodes["P1"]["process"].name == "P1"
        assert nx_graph.edges["P1", "P2"]["edge"].is_conditional

    def test_copy_and_subgraph(self):
        graph = build_branching_graph()
        clone = graph.copy()
        assert len(clone) == len(graph)
        sub = graph.subgraph(["P1", "P2"])
        assert set(sub.process_names) == {"P1", "P2"}
        assert sub.has_edge("P1", "P2")
        assert not sub.has_edge("P1", "P3")


class TestConditionsAndGuards:
    def test_conditions_listed(self):
        assert build_branching_graph().conditions == (C,)

    def test_disjunction_processes(self):
        graph = build_branching_graph()
        assert graph.disjunction_processes() == {"P1": C}
        assert graph.disjunction_process_of(C) == "P1"

    def test_disjunction_process_of_unknown_condition(self):
        with pytest.raises(KeyError):
            build_branching_graph().disjunction_process_of(Condition("Z"))

    def test_conjunction_detection(self):
        graph = build_branching_graph()
        assert graph.is_conjunction_process("P4")
        assert not graph.is_conjunction_process("P2")

    def test_explicit_conjunction_flag_respected(self):
        builder = CPGBuilder("explicit")
        builder.process("P1", 1.0)
        builder.add(ordinary_process("P2", 1.0, is_conjunction=True))
        builder.edge("P1", "P2")
        graph = builder.build()
        assert graph.is_conjunction_process("P2")

    def test_guards(self):
        graph = build_branching_graph()
        guards = graph.guards()
        assert guards["P1"].is_true()
        assert guards["P2"] == BoolExpr.from_literal(C.true())
        assert guards["P3"] == BoolExpr.from_literal(C.false())
        assert guards["P4"].is_true()
        assert guards[graph.sink.name].is_true()

    def test_guard_of_single_process(self):
        graph = build_branching_graph()
        assert graph.guard_of("P2") == BoolExpr.from_literal(C.true())

    def test_nested_condition_guard(self):
        builder = CPGBuilder("nested")
        for name in ("P1", "P2", "P3", "P4", "P5"):
            builder.process(name, 1.0)
        builder.edge("P1", "P2", condition=C.true())
        builder.edge("P1", "P3", condition=C.false())
        builder.edge("P2", "P4", condition=D.true())
        builder.edge("P2", "P5", condition=D.false())
        graph = builder.build(validate=False)
        guards = graph.guards()
        assert guards["P4"] == BoolExpr.from_literal(C.true()).and_(
            BoolExpr.from_literal(D.true())
        )

    def test_two_conditions_from_one_node_rejected(self):
        builder = CPGBuilder("bad")
        for name in ("P1", "P2", "P3"):
            builder.process(name, 1.0)
        builder.edge("P1", "P2", condition=C.true())
        builder.edge("P1", "P3", condition=D.true())
        with pytest.raises(GraphStructureError):
            builder.build()

    def test_condition_computed_twice_rejected(self):
        builder = CPGBuilder("bad")
        for name in ("P1", "P2", "P3", "P4"):
            builder.process(name, 1.0)
        builder.edge("P1", "P2", condition=C.true())
        builder.edge("P3", "P4", condition=C.true())
        with pytest.raises(GraphStructureError):
            builder.build()


class TestActivation:
    def test_active_processes_follow_guards(self):
        graph = build_branching_graph()
        active_true = graph.active_processes({C: True})
        active_false = graph.active_processes({C: False})
        assert "P2" in active_true and "P3" not in active_true
        assert "P3" in active_false and "P2" not in active_false
        assert "P4" in active_true and "P4" in active_false

    def test_active_predecessors_of_conjunction(self):
        graph = build_branching_graph()
        assert graph.active_predecessors("P4", {C: True}) == ("P2",)
        assert graph.active_predecessors("P4", {C: False}) == ("P3",)

    def test_active_predecessors_of_regular_node(self):
        graph = build_branching_graph()
        assert graph.active_predecessors("P2", {C: True}) == ("P1",)
        assert graph.active_predecessors("P2", {C: False}) == ()


class TestValidation:
    def test_valid_graph_passes(self):
        build_branching_graph().validate()

    def test_missing_source_detected(self):
        graph = ConditionalProcessGraph()
        graph.add_process(sink_process())
        with pytest.raises(GraphStructureError):
            graph.validate()

    def test_cycle_detected(self):
        graph = ConditionalProcessGraph()
        graph.add_process(source_process())
        graph.add_process(sink_process())
        graph.add_process(ordinary_process("P1", 1.0))
        graph.add_process(ordinary_process("P2", 1.0))
        graph.connect("source", "P1")
        graph.connect("P1", "P2")
        graph.connect("P2", "P1")
        graph.connect("P2", "sink")
        with pytest.raises(GraphStructureError):
            graph.validate()

    def test_non_polar_graph_detected(self):
        graph = ConditionalProcessGraph()
        graph.add_process(source_process())
        graph.add_process(sink_process())
        graph.add_process(ordinary_process("P1", 1.0))
        graph.connect("source", "sink")
        # P1 is disconnected: neither successor of source nor predecessor of sink
        with pytest.raises(GraphStructureError):
            graph.validate()

    def test_mixed_inputs_inherit_the_stronger_guard(self):
        # P3 waits for inputs from both P1 (always active) and P2 (guard C);
        # deriving its guard as the conjunction keeps the model's rule
        # "X_Pj implies X_Pi" satisfied: P3 only runs when C holds, so it never
        # waits for a message that cannot arrive.
        builder = CPGBuilder("mixed-guard")
        builder.process("P1", 1.0)
        builder.process("P2", 1.0)
        builder.process("P3", 1.0)
        builder.process("P4", 1.0)
        builder.edge("P1", "P2", condition=C.true())
        builder.edge("P1", "P4", condition=C.false())
        builder.edge("P2", "P3")
        builder.edge("P1", "P3")
        graph = builder.build()
        assert graph.guard_of("P3") == BoolExpr.from_literal(C.true())
        for edge in graph.in_edges("P3"):
            assert graph.guard_of("P3").implies(graph.guard_of(edge.src))

    def test_repr_mentions_size(self):
        assert "processes=6" in repr(build_branching_graph())
