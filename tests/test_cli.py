"""Tests for the repro-cpg command-line interface."""

import json

import pytest

from repro.cli import main
from repro.io import save_system


@pytest.fixture()
def system_file(tmp_path, small_system):
    path = tmp_path / "system.json"
    save_system(
        path,
        small_system["graph"],
        small_system["architecture"],
        small_system["mapping"],
        name="cli-demo",
    )
    return path


def test_info_command(system_file, capsys):
    assert main(["info", str(system_file)]) == 0
    output = capsys.readouterr().out
    assert "cli-demo" in output
    assert "alternative paths: 2" in output
    assert "pe1" in output


def test_schedule_command(system_file, capsys):
    assert main(["schedule", str(system_file)]) == 0
    output = capsys.readouterr().out
    assert "delta_M" in output and "delta_max" in output


def test_schedule_command_with_table_and_validation(system_file, capsys):
    assert main(["schedule", str(system_file), "--table", "--validate"]) == 0
    output = capsys.readouterr().out
    assert "process" in output
    assert "validated 2 paths" in output


def test_fig1_command(capsys):
    assert main(["fig1"]) == 0
    output = capsys.readouterr().out
    assert "delta_max" in output
    assert "validated 6 alternative paths" in output


def test_sweep_command(capsys):
    assert main(["sweep", "--nodes", "16", "--paths", "2", "3", "--graphs", "1"]) == 0
    output = capsys.readouterr().out
    assert "16 nodes" in output


def test_schedule_command_json(system_file, capsys):
    assert main(["schedule", str(system_file), "--validate", "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["system"] == "cli-demo"
    assert document["alternative_paths"] == 2
    assert document["delta_max"] >= document["delta_m"] > 0
    assert len(document["path_delays"]) == 2
    assert document["validation"]["paths_checked"] == 2


def test_sweep_command_json(capsys):
    assert main(["sweep", "--nodes", "16", "--paths", "2", "--graphs", "1",
                 "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert "16 nodes" in document["series"]


def test_explore_command(capsys):
    assert main(["explore", "--nodes", "14", "--paths", "2", "--seed", "1",
                 "--cycles", "3", "--neighbors", "3", "--trajectory"]) == 0
    output = capsys.readouterr().out
    assert "delta_max" in output
    assert "cache hits" in output
    assert "cycle" in output  # trajectory table header


def test_explore_command_json_both_engines(capsys):
    arguments = ["explore", "--nodes", "14", "--paths", "2", "--seed", "1",
                 "--cycles", "3", "--neighbors", "3", "--engine", "both",
                 "--json"]
    assert main(arguments) == 0
    document = json.loads(capsys.readouterr().out)
    assert {result["engine"] for result in document["results"]} == {
        "tabu", "anneal"
    }
    assert document["best_engine"] in ("tabu", "anneal")
    for result in document["results"]:
        assert result["best"]["cost"] <= result["initial"]["cost"] + 1e-9
        assert result["trajectory"]
    # Determinism across invocations: identical JSON for identical arguments.
    assert main(arguments) == 0
    again = json.loads(capsys.readouterr().out)
    assert again == document


def test_explore_command_on_system_file(system_file, capsys):
    assert main(["explore", str(system_file), "--cycles", "2",
                 "--neighbors", "2"]) == 0
    output = capsys.readouterr().out
    assert "system.json" in output


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_file_reported():
    with pytest.raises(FileNotFoundError):
        main(["info", "/nonexistent/system.json"])
