"""Tests for the repro-cpg command-line interface."""

import json

import pytest

from repro.cli import main
from repro.io import save_system


@pytest.fixture()
def system_file(tmp_path, small_system):
    path = tmp_path / "system.json"
    save_system(
        path,
        small_system["graph"],
        small_system["architecture"],
        small_system["mapping"],
        name="cli-demo",
    )
    return path


def test_info_command(system_file, capsys):
    assert main(["info", str(system_file)]) == 0
    output = capsys.readouterr().out
    assert "cli-demo" in output
    assert "alternative paths: 2" in output
    assert "pe1" in output


def test_schedule_command(system_file, capsys):
    assert main(["schedule", str(system_file)]) == 0
    output = capsys.readouterr().out
    assert "delta_M" in output and "delta_max" in output


def test_schedule_command_with_table_and_validation(system_file, capsys):
    assert main(["schedule", str(system_file), "--table", "--validate"]) == 0
    output = capsys.readouterr().out
    assert "process" in output
    assert "validated 2 paths" in output


def test_fig1_command(capsys):
    assert main(["fig1"]) == 0
    output = capsys.readouterr().out
    assert "delta_max" in output
    assert "validated 6 alternative paths" in output


def test_sweep_command(capsys):
    assert main(["sweep", "--nodes", "16", "--paths", "2", "3", "--graphs", "1"]) == 0
    output = capsys.readouterr().out
    assert "16 nodes" in output


def test_schedule_command_json(system_file, capsys):
    assert main(["schedule", str(system_file), "--validate", "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["system"] == "cli-demo"
    assert document["alternative_paths"] == 2
    assert document["delta_max"] >= document["delta_m"] > 0
    assert len(document["path_delays"]) == 2
    assert document["validation"]["paths_checked"] == 2


def test_sweep_command_json(capsys):
    assert main(["sweep", "--nodes", "16", "--paths", "2", "--graphs", "1",
                 "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert "16 nodes" in document["series"]


def test_explore_command(capsys):
    assert main(["explore", "--nodes", "14", "--paths", "2", "--seed", "1",
                 "--cycles", "3", "--neighbors", "3", "--trajectory"]) == 0
    output = capsys.readouterr().out
    assert "delta_max" in output
    assert "cache hits" in output
    assert "cycle" in output  # trajectory table header


def test_explore_command_json_both_engines(capsys):
    arguments = ["explore", "--nodes", "14", "--paths", "2", "--seed", "1",
                 "--cycles", "3", "--neighbors", "3", "--engine", "both",
                 "--json"]
    assert main(arguments) == 0
    document = json.loads(capsys.readouterr().out)
    assert {result["engine"] for result in document["results"]} == {
        "tabu", "anneal"
    }
    assert document["best_engine"] in ("tabu", "anneal")
    for result in document["results"]:
        assert result["best"]["cost"] <= result["initial"]["cost"] + 1e-9
        assert result["trajectory"]
    # Determinism across invocations: identical JSON for identical arguments.
    assert main(arguments) == 0
    again = json.loads(capsys.readouterr().out)
    assert again == document


def test_explore_genetic_pareto_fig1_json(capsys):
    """The acceptance scenario: a deterministic-per-seed non-dominated front
    with >= 2 distinct trade-off points on the Fig. 1 example, sizing on."""
    arguments = ["explore", "--fig1", "--size-architecture",
                 "--engine", "genetic", "--pareto", "--json",
                 "--cycles", "6", "--population", "12", "--seed", "0"]
    assert main(arguments) == 0
    document = json.loads(capsys.readouterr().out)
    (result,) = document["results"]
    assert result["engine"] == "genetic"
    front = result["front"]
    assert front["size"] >= 2
    vectors = [
        tuple(point["objectives"][key] for key in sorted(point["objectives"]))
        for point in front["points"]
    ]
    assert len(set(vectors)) == len(vectors)  # distinct trade-off points
    for point in front["points"]:
        assert point["platform"]["processors"]  # sizing was enabled
    # Determinism: identical JSON (front included) for identical arguments.
    assert main(arguments) == 0
    again = json.loads(capsys.readouterr().out)
    assert again == document


def test_explore_genetic_pareto_text_output(capsys):
    assert main(["explore", "--nodes", "14", "--paths", "2", "--seed", "1",
                 "--engine", "genetic", "--pareto", "--cycles", "2",
                 "--population", "6"]) == 0
    output = capsys.readouterr().out
    assert "Pareto front (genetic)" in output
    assert "delta_max" in output and "arch cost" in output


def test_explore_engine_all_runs_three_engines(capsys):
    assert main(["explore", "--nodes", "14", "--paths", "2", "--seed", "1",
                 "--engine", "all", "--cycles", "2", "--neighbors", "2",
                 "--population", "4", "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert {result["engine"] for result in document["results"]} == {
        "tabu", "anneal", "genetic"
    }


def test_explore_fig1_and_system_file_mutually_exclusive(system_file, capsys):
    assert main(["explore", str(system_file), "--fig1"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_explore_command_on_system_file(system_file, capsys):
    assert main(["explore", str(system_file), "--cycles", "2",
                 "--neighbors", "2"]) == 0
    output = capsys.readouterr().out
    assert "system.json" in output


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_file_reported():
    with pytest.raises(FileNotFoundError):
        main(["info", "/nonexistent/system.json"])
