"""Tests for the repro-cpg command-line interface."""

import pytest

from repro.cli import main
from repro.io import save_system


@pytest.fixture()
def system_file(tmp_path, small_system):
    path = tmp_path / "system.json"
    save_system(
        path,
        small_system["graph"],
        small_system["architecture"],
        small_system["mapping"],
        name="cli-demo",
    )
    return path


def test_info_command(system_file, capsys):
    assert main(["info", str(system_file)]) == 0
    output = capsys.readouterr().out
    assert "cli-demo" in output
    assert "alternative paths: 2" in output
    assert "pe1" in output


def test_schedule_command(system_file, capsys):
    assert main(["schedule", str(system_file)]) == 0
    output = capsys.readouterr().out
    assert "delta_M" in output and "delta_max" in output


def test_schedule_command_with_table_and_validation(system_file, capsys):
    assert main(["schedule", str(system_file), "--table", "--validate"]) == 0
    output = capsys.readouterr().out
    assert "process" in output
    assert "validated 2 paths" in output


def test_fig1_command(capsys):
    assert main(["fig1"]) == 0
    output = capsys.readouterr().out
    assert "delta_max" in output
    assert "validated 6 alternative paths" in output


def test_sweep_command(capsys):
    assert main(["sweep", "--nodes", "16", "--paths", "2", "3", "--graphs", "1"]) == 0
    output = capsys.readouterr().out
    assert "16 nodes" in output


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_file_reported():
    with pytest.raises(FileNotFoundError):
        main(["info", "/nonexistent/system.json"])
