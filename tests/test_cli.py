"""Tests for the repro-cpg command-line interface."""

import json

import pytest

from repro.cli import main
from repro.io import save_system


@pytest.fixture()
def system_file(tmp_path, small_system):
    path = tmp_path / "system.json"
    save_system(
        path,
        small_system["graph"],
        small_system["architecture"],
        small_system["mapping"],
        name="cli-demo",
    )
    return path


def test_info_command(system_file, capsys):
    assert main(["info", str(system_file)]) == 0
    output = capsys.readouterr().out
    assert "cli-demo" in output
    assert "alternative paths: 2" in output
    assert "pe1" in output


def test_schedule_command(system_file, capsys):
    assert main(["schedule", str(system_file)]) == 0
    output = capsys.readouterr().out
    assert "delta_M" in output and "delta_max" in output


def test_schedule_command_with_table_and_validation(system_file, capsys):
    assert main(["schedule", str(system_file), "--table", "--validate"]) == 0
    output = capsys.readouterr().out
    assert "process" in output
    assert "validated 2 paths" in output


def test_fig1_command(capsys):
    assert main(["fig1"]) == 0
    output = capsys.readouterr().out
    assert "delta_max" in output
    assert "validated 6 alternative paths" in output


def test_sweep_command(capsys):
    assert main(["sweep", "--nodes", "16", "--paths", "2", "3", "--graphs", "1"]) == 0
    output = capsys.readouterr().out
    assert "16 nodes" in output


def test_schedule_command_json(system_file, capsys):
    assert main(["schedule", str(system_file), "--validate", "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["system"] == "cli-demo"
    assert document["alternative_paths"] == 2
    assert document["delta_max"] >= document["delta_m"] > 0
    assert len(document["path_delays"]) == 2
    assert document["validation"]["paths_checked"] == 2


def test_sweep_command_json(capsys):
    assert main(["sweep", "--nodes", "16", "--paths", "2", "--graphs", "1",
                 "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert "16 nodes" in document["series"]


def test_explore_command(capsys):
    assert main(["explore", "--nodes", "14", "--paths", "2", "--seed", "1",
                 "--cycles", "3", "--neighbors", "3", "--trajectory"]) == 0
    output = capsys.readouterr().out
    assert "delta_max" in output
    assert "cache hits" in output
    assert "cycle" in output  # trajectory table header


def test_explore_command_json_both_engines(capsys):
    arguments = ["explore", "--nodes", "14", "--paths", "2", "--seed", "1",
                 "--cycles", "3", "--neighbors", "3", "--engine", "both",
                 "--json"]
    assert main(arguments) == 0
    document = json.loads(capsys.readouterr().out)
    assert {result["engine"] for result in document["results"]} == {
        "tabu", "anneal"
    }
    assert document["best_engine"] in ("tabu", "anneal")
    for result in document["results"]:
        assert result["best"]["cost"] <= result["initial"]["cost"] + 1e-9
        assert result["trajectory"]
    # Determinism across invocations: identical JSON for identical arguments.
    assert main(arguments) == 0
    again = json.loads(capsys.readouterr().out)
    assert again == document


def test_explore_genetic_pareto_fig1_json(capsys):
    """The acceptance scenario: a deterministic-per-seed non-dominated front
    with >= 2 distinct trade-off points on the Fig. 1 example, sizing on."""
    arguments = ["explore", "--fig1", "--size-architecture",
                 "--engine", "genetic", "--pareto", "--json",
                 "--cycles", "6", "--population", "12", "--seed", "0"]
    assert main(arguments) == 0
    document = json.loads(capsys.readouterr().out)
    (result,) = document["results"]
    assert result["engine"] == "genetic"
    front = result["front"]
    assert front["size"] >= 2
    vectors = [
        tuple(point["objectives"][key] for key in sorted(point["objectives"]))
        for point in front["points"]
    ]
    assert len(set(vectors)) == len(vectors)  # distinct trade-off points
    for point in front["points"]:
        assert point["platform"]["processors"]  # sizing was enabled
    # Determinism: identical JSON (front included) for identical arguments.
    assert main(arguments) == 0
    again = json.loads(capsys.readouterr().out)
    assert again == document


def test_explore_genetic_pareto_text_output(capsys):
    assert main(["explore", "--nodes", "14", "--paths", "2", "--seed", "1",
                 "--engine", "genetic", "--pareto", "--cycles", "2",
                 "--population", "6"]) == 0
    output = capsys.readouterr().out
    assert "Pareto front (genetic)" in output
    assert "delta_max" in output and "arch cost" in output


def test_explore_engine_all_runs_three_engines(capsys):
    assert main(["explore", "--nodes", "14", "--paths", "2", "--seed", "1",
                 "--engine", "all", "--cycles", "2", "--neighbors", "2",
                 "--population", "4", "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert {result["engine"] for result in document["results"]} == {
        "tabu", "anneal", "genetic"
    }


def test_explore_fig1_and_system_file_mutually_exclusive(system_file, capsys):
    assert main(["explore", str(system_file), "--fig1"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_explore_command_on_system_file(system_file, capsys):
    assert main(["explore", str(system_file), "--cycles", "2",
                 "--neighbors", "2"]) == 0
    output = capsys.readouterr().out
    assert "system.json" in output


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_file_reported(capsys):
    assert main(["info", "/nonexistent/system.json"]) == 2
    captured = capsys.readouterr()
    assert "no such file" in captured.err
    assert "/nonexistent/system.json" in captured.err


def test_malformed_system_json_exits_with_message(tmp_path, capsys):
    path = tmp_path / "broken.json"
    path.write_text('{"architecture": {"processors": []}, "processes": "oops"}')
    assert main(["info", str(path)]) == 2
    captured = capsys.readouterr()
    assert "invalid system description" in captured.err
    assert captured.out == ""


def test_unparseable_json_exits_with_message(tmp_path, capsys):
    path = tmp_path / "garbage.json"
    path.write_text("this is not json")
    assert main(["schedule", str(path)]) == 2
    assert "not valid JSON" in capsys.readouterr().err


def test_explore_with_fault_injection_matches_clean_run(capsys):
    base = [
        "explore", "--nodes", "16", "--paths", "2", "--seed", "3",
        "--cycles", "3", "--engine", "tabu", "--json",
    ]
    assert main(base) == 0
    clean = json.loads(capsys.readouterr().out)
    assert main(base + [
        "--fault-crash-rate", "0.1", "--fault-exit-rate", "0.05",
        "--retries", "5",
    ]) == 0
    faulted = json.loads(capsys.readouterr().out)
    assert faulted["results"][0]["best"] == clean["results"][0]["best"]
    assert faulted["results"][0]["trajectory"] == clean["results"][0]["trajectory"]
    resilience = faulted["results"][0]["resilience"]
    assert resilience is not None and not resilience["degraded"]
    assert clean["results"][0]["resilience"] is None


def test_explore_checkpoint_resume_cli_round_trip(tmp_path, capsys):
    checkpoint = tmp_path / "search.ckpt.json"
    base = [
        "explore", "--nodes", "16", "--paths", "2", "--seed", "3",
        "--engine", "anneal", "--json",
    ]
    assert main(base + ["--cycles", "6"]) == 0
    full = json.loads(capsys.readouterr().out)["results"][0]
    assert main(base + ["--cycles", "3", "--checkpoint", str(checkpoint)]) == 0
    capsys.readouterr()
    assert main(
        base + ["--cycles", "6", "--checkpoint", str(checkpoint), "--resume"]
    ) == 0
    resumed = json.loads(capsys.readouterr().out)["results"][0]
    assert resumed["resumed_from"] == 3
    assert resumed["best"] == full["best"]
    assert resumed["trajectory"] == full["trajectory"]


def test_explore_resume_requires_checkpoint(capsys):
    assert main(["explore", "--nodes", "16", "--resume"]) == 2
    assert "--checkpoint" in capsys.readouterr().err


def test_explore_checkpoint_rejects_multiple_engines(capsys, tmp_path):
    assert main([
        "explore", "--nodes", "16", "--engine", "both",
        "--checkpoint", str(tmp_path / "c.json"),
    ]) == 2
    assert "one engine" in capsys.readouterr().err
