"""Tests of the resilient exploration runtime.

Fault-injection matrix (crash / hang / exit at seeded rates, across pool
modes and engines): because fault decisions are hashed from
``(seed, fingerprint, attempt)`` and evaluation is pure, every faulted run
must report *bit-identical* results to the fault-free run with the same
engine seed.  Plus: quarantine of poison candidates, graceful degrade to
in-process evaluation, fail-fast worker initialisation, checkpoint/resume
bit-identity (property-based), and stage-cache integrity self-healing.
"""

from __future__ import annotations

import json
import math
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exploration import (
    CHECKPOINT_VERSION,
    CheckpointError,
    Checkpointer,
    CostWeights,
    EvaluationPool,
    ExplorationConfig,
    ExplorationProblem,
    Explorer,
    FaultInjector,
    InjectedFault,
    RetryPolicy,
    StageCache,
    WorkerInitializationError,
    evaluate_candidate,
    load_checkpoint,
    quarantined_evaluation,
    validate_checkpoint,
)
from repro.generator import generate_system


@pytest.fixture(scope="module")
def problem():
    """A small seeded problem (16 nodes, 2 alternative paths)."""
    return ExplorationProblem.from_system(generate_system(16, 2, seed=3))


def _batch(problem, count=6):
    """``count`` distinct candidates: the initial one plus single remaps."""
    initial = problem.initial_candidate()
    out = [initial]
    seen = {initial.fingerprint}
    processes = problem.movable_processes
    targets = problem.processor_names
    index = 0
    while len(out) < count:
        process = processes[index % len(processes)]
        target = targets[(index + 1) % len(targets)]
        candidate = initial.reassigned(process, target)
        if candidate.fingerprint not in seen:
            seen.add(candidate.fingerprint)
            out.append(candidate)
        index += 1
    return out


@pytest.fixture(scope="module")
def batch(problem):
    return _batch(problem)


@pytest.fixture(scope="module")
def reference(problem, batch):
    """Fault-free evaluations of the batch (the bit-identity yardstick)."""
    return EvaluationPool(problem, mode="serial").evaluate(batch)


# -- fault injector ----------------------------------------------------------------


class TestFaultInjector:
    def test_unarmed_by_default(self):
        injector = FaultInjector()
        assert not injector.armed
        assert all(injector.fault_for(f"fp{i}", 0) is None for i in range(50))

    def test_decisions_are_deterministic(self):
        first = FaultInjector(seed=7, crash_rate=0.3, hang_rate=0.2, exit_rate=0.1)
        second = FaultInjector(seed=7, crash_rate=0.3, hang_rate=0.2, exit_rate=0.1)
        decisions = [(f"fp{i}", attempt) for i in range(40) for attempt in range(3)]
        assert [first.fault_for(*d) for d in decisions] == [
            second.fault_for(*d) for d in decisions
        ]

    def test_seed_changes_decisions(self):
        a = FaultInjector(seed=1, crash_rate=0.5)
        b = FaultInjector(seed=2, crash_rate=0.5)
        decisions = [a.fault_for(f"fp{i}", 0) for i in range(64)]
        assert decisions != [b.fault_for(f"fp{i}", 0) for i in range(64)]

    def test_certain_rates(self):
        assert FaultInjector(crash_rate=1.0).fault_for("fp", 0) == "crash"
        assert FaultInjector(hang_rate=1.0).fault_for("fp", 0) == "hang"
        assert FaultInjector(exit_rate=1.0).fault_for("fp", 0) == "exit"

    def test_retry_reaches_a_clean_attempt(self):
        injector = FaultInjector(seed=0, crash_rate=0.5)
        # P(20 consecutive faulted attempts) = 0.5**20; seeded, so stable.
        for i in range(20):
            fingerprint = f"fp{i}"
            assert any(
                injector.fault_for(fingerprint, attempt) is None
                for attempt in range(20)
            )

    def test_inject_raises_in_process(self):
        crash = FaultInjector(crash_rate=1.0)
        with pytest.raises(InjectedFault, match="crash"):
            crash.inject("fp", 0, in_worker=False)
        # In-process, hang and exit degrade to raised faults: sleeping or
        # killing the coordinator would take the whole run down.
        with pytest.raises(InjectedFault, match="hang"):
            FaultInjector(hang_rate=1.0, hang_seconds=0.0).inject(
                "fp", 0, in_worker=False
            )
        with pytest.raises(InjectedFault, match="exit"):
            FaultInjector(exit_rate=1.0).inject("fp", 0, in_worker=False)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(crash_rate=1.5)
        with pytest.raises(ValueError):
            FaultInjector(hang_seconds=-1.0)


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=0.05, backoff_factor=2.0, backoff_max=0.4)
        delays = [policy.delay_for(attempt, "key") for attempt in range(1, 10)]
        assert delays == [policy.delay_for(attempt, "key") for attempt in range(1, 10)]
        assert all(0 < delay <= 0.4 for delay in delays)
        # Jitter only ever shortens the nominal exponential delay.
        nominal = [min(0.4, 0.05 * 2.0 ** (attempt - 1)) for attempt in range(1, 10)]
        assert all(d <= n for d, n in zip(delays, nominal))

    def test_zero_base_disables_backoff(self):
        policy = RetryPolicy(backoff_base=0.0)
        assert policy.delay_for(3, "key") == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


# -- fault matrix: pool modes ------------------------------------------------------


FAULT_RATES = [
    pytest.param(0.2, 0.0, 0.0, id="crash"),
    pytest.param(0.0, 0.2, 0.0, id="hang"),
    pytest.param(0.0, 0.0, 0.2, id="exit"),
    pytest.param(0.15, 0.1, 0.1, id="mixed"),
]


def _retry():
    return RetryPolicy(max_attempts=10, timeout=30.0, backoff_base=0.0)


class TestPoolFaultMatrix:
    @pytest.mark.parametrize("crash,hang,exit_", FAULT_RATES)
    def test_serial_faults_do_not_change_results(
        self, problem, batch, reference, crash, hang, exit_
    ):
        injector = FaultInjector(
            seed=11, crash_rate=crash, hang_rate=hang, exit_rate=exit_,
            hang_seconds=0.01,
        )
        pool = EvaluationPool(
            problem, mode="serial", retry=_retry(), fault_injector=injector
        )
        assert pool.evaluate(batch) == reference
        stats = pool.resilience_stats
        assert stats.retries == stats.injected  # every injected fault retried
        assert stats.quarantined == 0

    @pytest.mark.parametrize("crash,hang,exit_", FAULT_RATES)
    @pytest.mark.parametrize("workers", [2, 4])
    def test_thread_faults_do_not_change_results(
        self, problem, batch, reference, crash, hang, exit_, workers
    ):
        injector = FaultInjector(
            seed=11, crash_rate=crash, hang_rate=hang, exit_rate=exit_,
            hang_seconds=0.01,
        )
        with EvaluationPool(
            problem,
            workers=workers,
            mode="thread",
            retry=_retry(),
            fault_injector=injector,
        ) as pool:
            assert pool.evaluate(batch) == reference
            assert pool.resilience_stats.quarantined == 0

    def test_process_faults_do_not_change_results(self, problem, batch, reference):
        # Seed 0 deterministically draws both a 'crash' and an 'exit' on the
        # batch's first attempts, so a worker genuinely dies mid-round.
        injector = FaultInjector(seed=0, crash_rate=0.2, exit_rate=0.15)
        with EvaluationPool(
            problem,
            workers=2,
            mode="process",
            retry=_retry(),
            fault_injector=injector,
        ) as pool:
            assert pool.evaluate(batch) == reference
            stats = pool.resilience_stats
            assert not stats.degraded
            # injected 'exit' kills a worker: the pool must have respawned.
            assert stats.worker_restarts >= 1

    def test_unarmed_pool_has_quiet_stats(self, problem, batch, reference):
        pool = EvaluationPool(problem, mode="serial")
        assert pool.evaluate(batch) == reference
        assert not pool.resilience_stats.eventful


# -- quarantine, degrade, worker init ----------------------------------------------


class TestQuarantine:
    def test_always_crashing_candidates_are_quarantined(self, problem, batch):
        pool = EvaluationPool(
            problem,
            mode="serial",
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
            fault_injector=FaultInjector(crash_rate=1.0),
        )
        evaluations = pool.evaluate(batch)
        assert len(evaluations) == len(batch)
        for candidate, evaluation in zip(batch, evaluations):
            assert evaluation.fingerprint == candidate.fingerprint
            assert not evaluation.feasible
            assert math.isinf(evaluation.cost)
            assert "quarantined" in evaluation.error
        assert pool.resilience_stats.quarantined == len(batch)

    def test_thread_mode_quarantines_poison_without_killing_chunk_mates(
        self, problem, batch
    ):
        with EvaluationPool(
            problem,
            workers=2,
            mode="thread",
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
            fault_injector=FaultInjector(crash_rate=1.0),
        ) as pool:
            evaluations = pool.evaluate(batch)
            assert len(evaluations) == len(batch)
            assert all(not e.feasible for e in evaluations)
            assert pool.resilience_stats.quarantined == len(batch)

    def test_quarantined_evaluation_sentinel(self):
        sentinel = quarantined_evaluation("fp", 3, "boom")
        assert not sentinel.feasible
        assert math.isinf(sentinel.cost)
        assert "fp" not in sentinel.error or sentinel.fingerprint == "fp"
        assert "3" in sentinel.error and "boom" in sentinel.error


class TestDegrade:
    def test_pool_degrades_to_in_process_and_still_answers(
        self, problem, batch, reference
    ):
        # Every pooled attempt kills its worker; after the restart budget the
        # pool must fall back to trusted in-process evaluation and still
        # return the exact fault-free evaluations.
        with EvaluationPool(
            problem,
            workers=2,
            mode="process",
            retry=RetryPolicy(
                max_attempts=10, timeout=30.0, backoff_base=0.0, max_pool_restarts=1
            ),
            fault_injector=FaultInjector(exit_rate=1.0),
        ) as pool:
            assert pool.evaluate(batch) == reference
            stats = pool.resilience_stats
            assert stats.degraded and pool.degraded
            assert stats.worker_restarts >= 2
            # Degraded pools evaluate in-process from then on.
            assert pool.evaluate(batch[:2]) == reference[:2]
            assert pool.stage_stats is not None


class TestWorkerInitialisation:
    def test_injected_init_failure_fails_fast(self, problem, batch):
        with EvaluationPool(
            problem,
            workers=2,
            mode="process",
            fault_injector=FaultInjector(fail_worker_init=True),
        ) as pool:
            with pytest.raises(WorkerInitializationError) as excinfo:
                pool.evaluate(batch)
        message = str(excinfo.value)
        assert problem.name in message
        assert "worker" in message

    def test_unrebuildable_payload_is_named_before_spawning(
        self, problem, batch, monkeypatch
    ):
        monkeypatch.setattr(
            ExplorationProblem,
            "to_payload",
            lambda self: {"name": problem.name, "nonsense": True},
        )
        pool = EvaluationPool(problem, workers=2, mode="process")
        with pytest.raises(WorkerInitializationError) as excinfo:
            pool.evaluate(batch)
        assert "cannot be rebuilt" in str(excinfo.value)
        assert problem.name in str(excinfo.value)


# -- engines under faults ----------------------------------------------------------


def _config(seed=0, cycles=4):
    return ExplorationConfig(
        seed=seed,
        max_cycles=cycles,
        neighbors_per_cycle=4,
        population_size=6,
        stall_cycles=0,
    )


class TestEngineFaultMatrix:
    @pytest.mark.parametrize("engine", ["tabu", "anneal", "genetic"])
    def test_faulted_search_is_bit_identical(self, problem, engine):
        config = _config()
        clean = Explorer(problem, config=config).explore(engine)
        pool = EvaluationPool(
            problem,
            mode="serial",
            retry=_retry(),
            fault_injector=FaultInjector(
                seed=5, crash_rate=0.1, hang_rate=0.05, exit_rate=0.05,
                hang_seconds=0.01,
            ),
        )
        faulted = Explorer(problem, config=config, pool=pool).explore(engine)
        assert faulted.best.cost == clean.best.cost
        assert faulted.best_candidate == clean.best_candidate
        assert faulted.trajectory == clean.trajectory
        assert faulted.resilience is not None
        assert clean.resilience is None  # no pool, no resilience layer

    def test_resilience_stats_surface_in_result(self, problem):
        pool = EvaluationPool(
            problem,
            mode="serial",
            retry=_retry(),
            fault_injector=FaultInjector(seed=5, crash_rate=0.3),
        )
        result = Explorer(problem, config=_config(), pool=pool).explore("tabu")
        assert result.resilience.injected > 0
        assert result.resilience.eventful


# -- checkpoint / resume -----------------------------------------------------------


class TestCheckpointResume:
    @pytest.mark.parametrize("engine", ["tabu", "anneal", "genetic"])
    def test_kill_and_resume_matches_uninterrupted(self, problem, tmp_path, engine):
        total, split = 6, 3
        config = _config(cycles=total)
        reference = Explorer(problem, config=config).explore(engine)

        path = tmp_path / f"{engine}.ckpt.json"
        # "Kill" the run at the split point: the partial run stops there and
        # only its checkpoint survives.
        Explorer(problem, config=_config(cycles=split)).explore(
            engine, checkpoint=path
        )
        resumed = Explorer(problem, config=config).explore(
            engine, checkpoint=path, resume=True
        )
        assert resumed.resumed_from == split
        assert resumed.best.cost == reference.best.cost
        assert resumed.best_candidate == reference.best_candidate
        assert resumed.trajectory == reference.trajectory
        if reference.front is not None and resumed.front is not None:
            assert [p.objectives for p in resumed.front] == [
                p.objectives for p in reference.front
            ]

    def test_completed_checkpoint_records_final_state(self, problem, tmp_path):
        path = tmp_path / "done.json"
        result = Explorer(problem, config=_config(cycles=3)).explore(
            "tabu", checkpoint=path
        )
        document = load_checkpoint(path)
        assert document["version"] == CHECKPOINT_VERSION
        assert document["completed"] is True
        assert document["engine"] == "tabu"
        assert document["state"]["cycle"] == 3
        assert document["best"]["evaluation"]["cost"] == result.best.cost

    def test_resume_into_wrong_run_is_rejected(self, problem, tmp_path):
        path = tmp_path / "tabu.json"
        Explorer(problem, config=_config(cycles=2)).explore("tabu", checkpoint=path)
        document = load_checkpoint(path)
        key = document["problem"]
        validate_checkpoint(document, engine="tabu", seed=0, problem_key=key)
        with pytest.raises(CheckpointError, match="engine"):
            validate_checkpoint(document, engine="anneal", seed=0, problem_key=key)
        with pytest.raises(CheckpointError, match="seed"):
            validate_checkpoint(document, engine="tabu", seed=1, problem_key=key)
        with pytest.raises(CheckpointError, match="problem"):
            validate_checkpoint(document, engine="tabu", seed=0, problem_key="other")
        # The same rejection, end to end through the explorer.
        with pytest.raises(CheckpointError):
            Explorer(problem, config=_config(cycles=2)).explore(
                "anneal", checkpoint=path, resume=True
            )

    def test_corrupt_checkpoint_is_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json at all")
        with pytest.raises(CheckpointError, match="JSON"):
            load_checkpoint(path)
        path.write_text(json.dumps({"version": 999}))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)
        with pytest.raises(CheckpointError, match="exist"):
            load_checkpoint(tmp_path / "never-written.json")

    def test_resume_with_missing_file_starts_fresh(self, problem, tmp_path):
        # Idempotent job-runner behaviour: --resume before any checkpoint
        # exists is a fresh start, not an error.
        path = tmp_path / "never.json"
        config = _config(cycles=3)
        reference = Explorer(problem, config=config).explore("tabu")
        fresh = Explorer(problem, config=config).explore(
            "tabu", checkpoint=path, resume=True
        )
        assert fresh.resumed_from is None
        assert fresh.best.cost == reference.best.cost
        assert path.exists()  # and it still checkpoints the new run

    def test_checkpointer_period_and_atomicity(self, tmp_path):
        path = tmp_path / "periodic.json"
        checkpointer = Checkpointer(path, every=3)
        assert [cycle for cycle in range(1, 10) if checkpointer.due(cycle)] == [3, 6, 9]
        checkpointer.save({"version": CHECKPOINT_VERSION, "payload": 1})
        checkpointer.save({"version": CHECKPOINT_VERSION, "payload": 2})
        assert checkpointer.saves == 2
        assert json.loads(path.read_text())["payload"] == 2
        assert not path.with_name(path.name + ".tmp").exists()

    def test_checkpoint_every_reduces_writes(self, problem, tmp_path):
        path = tmp_path / "sparse.json"
        config = replace(_config(cycles=5), checkpoint_every=2)
        result = Explorer(problem, config=config).explore("tabu", checkpoint=path)
        document = load_checkpoint(path)
        # The final save always lands, whatever the period.
        assert document["completed"] is True
        assert document["state"]["cycle"] == 5
        assert result.best.cost == document["best"]["evaluation"]["cost"]

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        engine=st.sampled_from(["tabu", "anneal", "genetic"]),
        split=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2),
    )
    def test_resume_is_bit_identical_property(
        self, problem, tmp_path, engine, split, seed
    ):
        total = 5
        config = _config(seed=seed, cycles=total)
        reference = Explorer(problem, config=config).explore(engine)
        path = tmp_path / f"{engine}-{split}-{seed}.json"
        Explorer(problem, config=_config(seed=seed, cycles=split)).explore(
            engine, checkpoint=path
        )
        resumed = Explorer(problem, config=config).explore(
            engine, checkpoint=path, resume=True
        )
        assert resumed.resumed_from == split
        assert resumed.best.cost == reference.best.cost
        assert resumed.best_candidate == reference.best_candidate
        assert resumed.trajectory == reference.trajectory

    def test_resume_without_checkpoint_path_is_an_error(self, problem):
        with pytest.raises(ValueError, match="resume"):
            Explorer(problem, config=_config(cycles=2)).explore("tabu", resume=True)


# -- stage-cache integrity ---------------------------------------------------------


class TestStageCacheIntegrity:
    def test_clean_cache_passes(self, problem, batch):
        cache = StageCache()
        for candidate in batch:
            evaluate_candidate(problem, candidate, CostWeights(), stage_cache=cache)
        assert cache.check_integrity() == 0
        assert cache.stats.integrity_evictions == 0

    def test_poisoned_expansions_are_evicted_and_heal(self, problem, batch):
        cache = StageCache()
        weights = CostWeights()
        reference = [
            evaluate_candidate(problem, candidate, weights, stage_cache=cache)
            for candidate in batch
        ]
        keys = list(cache._expansions)
        assert len(keys) >= 2
        # Simulate a torn write: two entries swap values, so each value no
        # longer realises its key's assignment.
        cache._expansions[keys[0]], cache._expansions[keys[1]] = (
            cache._expansions[keys[1]],
            cache._expansions[keys[0]],
        )
        evicted = cache.check_integrity()
        assert evicted == 2
        assert cache.stats.integrity_evictions == 2
        # Self-healing: the next evaluations recompute the evicted stages and
        # come out bit-identical.
        healed = [
            evaluate_candidate(problem, candidate, weights, stage_cache=cache)
            for candidate in batch
        ]
        assert healed == reference

    def test_poisoned_schedule_is_evicted(self, problem, batch):
        cache = StageCache()
        for candidate in batch:
            evaluate_candidate(problem, candidate, CostWeights(), stage_cache=cache)
        labels = {key_id: key[0] for key, key_id in cache._key_ids.items()}
        entries = list(cache._schedules.items())
        poisoned = None
        for key, _schedule in entries:
            for _other_key, other_schedule in entries:
                if other_schedule.path.label != labels[key[0]]:
                    poisoned = (key, other_schedule)
                    break
            if poisoned:
                break
        assert poisoned is not None, "problem must enumerate at least two paths"
        cache._schedules[poisoned[0]] = poisoned[1]
        assert cache.check_integrity() == 1
        assert cache.stats.integrity_evictions == 1
