"""Unit tests for processing elements, architectures and mappings."""

import pytest

from repro.architecture import (
    Architecture,
    ArchitectureError,
    Mapping,
    MappingError,
    PEKind,
    bus,
    hardware,
    make_processor,
    programmable,
    simple_architecture,
)


class TestProcessingElement:
    def test_kinds(self):
        assert programmable("pe1").kind is PEKind.PROGRAMMABLE
        assert hardware("hw").kind is PEKind.HARDWARE
        assert bus("b").kind is PEKind.BUS

    def test_sequential_execution_flags(self):
        assert programmable("pe1").executes_sequentially
        assert bus("b").executes_sequentially
        assert not hardware("hw").executes_sequentially

    def test_predicates(self):
        assert programmable("pe1").is_programmable
        assert hardware("hw").is_hardware
        assert bus("b").is_bus

    def test_scaled_time_uses_speed(self):
        fast = programmable("pent", speed=2.0)
        assert fast.scaled_time(10.0) == pytest.approx(5.0)

    def test_scaled_time_rejects_negative(self):
        with pytest.raises(ValueError):
            programmable("pe1").scaled_time(-1.0)

    def test_speed_must_be_positive(self):
        with pytest.raises(ValueError):
            programmable("pe1", speed=0.0)

    def test_name_must_be_non_empty(self):
        with pytest.raises(ValueError):
            programmable("")

    def test_make_processor(self):
        assert make_processor("a", is_hardware=True).is_hardware
        assert make_processor("b").is_programmable


class TestArchitecture:
    def test_basic_accessors(self):
        arch = Architecture(
            [programmable("pe1"), hardware("hw1")], [bus("bus1")], 1.0
        )
        assert {pe.name for pe in arch.processors} == {"pe1", "hw1"}
        assert [pe.name for pe in arch.buses] == ["bus1"]
        assert len(arch.processing_elements) == 3
        assert arch.condition_broadcast_time == 1.0

    def test_lookup_by_name(self):
        arch = simple_architecture(2, 1, 1)
        assert arch["pe1"].is_programmable
        assert arch["bus1"].is_bus
        with pytest.raises(KeyError):
            arch["nope"]
        assert arch.get("nope") is None

    def test_contains_accepts_names_and_elements(self):
        arch = simple_architecture(1, 0, 1)
        assert "pe1" in arch
        assert arch["pe1"] in arch
        assert "other" not in arch

    def test_duplicate_names_rejected(self):
        with pytest.raises(ArchitectureError):
            Architecture([programmable("pe1"), programmable("pe1")], [])

    def test_bus_passed_as_processor_rejected(self):
        with pytest.raises(ArchitectureError):
            Architecture([bus("b")], [])

    def test_processor_passed_as_bus_rejected(self):
        with pytest.raises(ArchitectureError):
            Architecture([programmable("pe1")], [programmable("pe2")])

    def test_needs_at_least_one_processor(self):
        with pytest.raises(ArchitectureError):
            Architecture([], [bus("b")])

    def test_broadcast_buses_default_to_all(self):
        arch = simple_architecture(3, 0, 2)
        assert {b.name for b in arch.broadcast_buses()} == {"bus1", "bus2"}

    def test_restricted_connectivity(self):
        arch = Architecture(
            [programmable("pe1"), programmable("pe2")],
            [bus("bus1"), bus("bus2")],
            connectivity={"bus2": ["pe1"]},
        )
        assert [b.name for b in arch.broadcast_buses()] == ["bus1"]
        assert [p.name for p in arch.processors_on_bus("bus2")] == ["pe1"]
        assert [b.name for b in arch.buses_between(arch["pe1"], arch["pe2"])] == [
            "bus1"
        ]

    def test_connectivity_unknown_bus_rejected(self):
        with pytest.raises(ArchitectureError):
            Architecture(
                [programmable("pe1")], [bus("bus1")], connectivity={"busX": ["pe1"]}
            )

    def test_connectivity_unknown_processor_rejected(self):
        with pytest.raises(ArchitectureError):
            Architecture(
                [programmable("pe1")], [bus("bus1")], connectivity={"bus1": ["peX"]}
            )

    def test_validate_requires_a_broadcast_bus(self):
        arch = Architecture(
            [programmable("pe1"), programmable("pe2")],
            [bus("bus1")],
            connectivity={"bus1": ["pe1"]},
        )
        with pytest.raises(ArchitectureError):
            arch.validate()

    def test_validate_passes_for_full_connectivity(self):
        simple_architecture(2, 1, 2).validate()

    def test_describe_mentions_every_element(self):
        text = simple_architecture(2, 1, 1).describe()
        for name in ("pe1", "pe2", "pe3", "bus1", "tau0"):
            assert name in text

    def test_simple_architecture_validation(self):
        with pytest.raises(ArchitectureError):
            simple_architecture(0)


class TestMapping:
    def test_assign_and_lookup(self):
        arch = simple_architecture(2, 0, 1)
        mapping = Mapping(arch)
        mapping.assign("P1", arch["pe1"])
        assert mapping["P1"] == arch["pe1"]
        assert "P1" in mapping and "P2" not in mapping
        assert len(mapping) == 1

    def test_assign_by_name(self):
        arch = simple_architecture(1, 0, 1)
        mapping = Mapping(arch)
        mapping.assign("P1", "pe1")
        assert mapping["P1"].name == "pe1"

    def test_assign_many_and_processes_on(self):
        arch = simple_architecture(2, 0, 1)
        mapping = Mapping(arch)
        mapping.assign_many(arch["pe2"], ["P1", "P2"])
        assert mapping.processes_on(arch["pe2"]) == ("P1", "P2")

    def test_unknown_element_rejected(self):
        arch = simple_architecture(1, 0, 1)
        other = programmable("foreign")
        with pytest.raises(MappingError):
            Mapping(arch).assign("P1", other)

    def test_missing_process_lookup_raises(self):
        arch = simple_architecture(1, 0, 1)
        with pytest.raises(MappingError):
            Mapping(arch)["missing"]
        assert Mapping(arch).get("missing") is None

    def test_validate_for_rejects_bus_mapping(self):
        arch = simple_architecture(1, 0, 1)
        mapping = Mapping(arch)
        mapping.assign("P1", arch["bus1"])
        with pytest.raises(MappingError):
            mapping.validate_for(["P1"])

    def test_validate_for_rejects_unmapped(self):
        arch = simple_architecture(1, 0, 1)
        with pytest.raises(MappingError):
            Mapping(arch).validate_for(["P1"])

    def test_copy_is_independent(self):
        arch = simple_architecture(2, 0, 1)
        mapping = Mapping(arch, {"P1": arch["pe1"]})
        clone = mapping.copy()
        clone.assign("P2", arch["pe2"])
        assert "P2" not in mapping

    def test_describe_groups_by_element(self):
        arch = simple_architecture(2, 0, 1)
        mapping = Mapping(arch, {"P1": arch["pe1"], "P2": arch["pe1"]})
        assert "pe1: P1, P2" in mapping.describe()

    def test_items_iteration(self):
        arch = simple_architecture(1, 0, 1)
        mapping = Mapping(arch, {"P1": arch["pe1"]})
        assert dict(mapping.items()) == {"P1": arch["pe1"]}

    def test_assign_unknown_name_rejected(self):
        arch = simple_architecture(1, 0, 1)
        with pytest.raises(MappingError):
            Mapping(arch).assign("P1", "nonexistent")

    def test_processes_on_accepts_names(self):
        arch = simple_architecture(2, 0, 1)
        mapping = Mapping(arch, {"P1": "pe1", "P2": "pe1"})
        assert mapping.processes_on("pe1") == ("P1", "P2")
        assert mapping.processes_on("pe2") == ()

    def test_processes_on_index_follows_reassignment(self):
        arch = simple_architecture(2, 0, 1)
        mapping = Mapping(arch, {"P1": "pe1", "P2": "pe1"})
        mapping.assign("P1", "pe2")
        assert mapping.processes_on("pe1") == ("P2",)
        assert mapping.processes_on("pe2") == ("P1",)
        mapping.assign("P1", "pe2")  # re-assigning to the same PE is a no-op
        assert mapping.processes_on("pe2") == ("P1",)

    def test_reassigned_returns_independent_mapping(self):
        arch = simple_architecture(2, 0, 1)
        mapping = Mapping(arch, {"P1": "pe1", "P2": "pe1"})
        moved = mapping.reassigned({"P2": "pe2"})
        assert moved["P2"].name == "pe2"
        assert mapping["P2"].name == "pe1"
        assert mapping.processes_on("pe1") == ("P1", "P2")
        assert moved.processes_on("pe1") == ("P1",)

    def test_constructor_accepts_names(self):
        arch = simple_architecture(1, 0, 1)
        mapping = Mapping(arch, {"P1": "pe1"})
        assert mapping["P1"] == arch["pe1"]
