"""Unit tests for condition assignment helpers."""

import pytest

from repro.conditions import (
    Condition,
    Conjunction,
    all_assignments,
    assignment_from_literals,
    conjunction_from_assignment,
    extend_assignment,
    is_extension_of,
    literals_from_assignment,
    restrict_assignment,
)

C = Condition("C")
D = Condition("D")
K = Condition("K")


def test_assignment_from_literals_round_trip():
    literals = [C.true(), D.false()]
    assignment = assignment_from_literals(literals)
    assert assignment == {C: True, D: False}
    assert literals_from_assignment(assignment) == frozenset(literals)


def test_assignment_from_literals_rejects_contradiction():
    with pytest.raises(ValueError):
        assignment_from_literals([C.true(), C.false()])


def test_conjunction_from_assignment():
    assert conjunction_from_assignment({C: True, K: False}) == Conjunction.of(
        C.true(), K.false()
    )


def test_all_assignments_enumerates_every_combination():
    assignments = list(all_assignments([C, D]))
    assert len(assignments) == 4
    assert {(a[C], a[D]) for a in assignments} == {
        (False, False),
        (False, True),
        (True, False),
        (True, True),
    }


def test_all_assignments_of_nothing_is_single_empty():
    assert list(all_assignments([])) == [{}]


def test_extend_assignment_adds_condition():
    extended = extend_assignment({C: True}, D, False)
    assert extended == {C: True, D: False}


def test_extend_assignment_rejects_conflict():
    with pytest.raises(ValueError):
        extend_assignment({C: True}, C, False)


def test_extend_assignment_is_idempotent_for_same_value():
    assert extend_assignment({C: True}, C, True) == {C: True}


def test_restrict_assignment():
    assignment = {C: True, D: False, K: True}
    assert restrict_assignment(assignment, [C, K]) == {C: True, K: True}


def test_is_extension_of():
    assert is_extension_of({C: True, D: False}, {C: True})
    assert not is_extension_of({C: True}, {C: True, D: False})
    assert not is_extension_of({C: False}, {C: True})
    assert is_extension_of({}, {})
