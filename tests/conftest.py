"""Shared fixtures: the paper's Fig. 1 example and a few small hand-built systems.

Also installs a per-test wall-clock timeout (SIGALRM-based, POSIX main thread
only) so a hung evaluation worker or a deadlocked pool aborts the single test
with a traceback instead of wedging the whole suite.  Configure with the
``REPRO_TEST_TIMEOUT`` environment variable (seconds; ``0`` disables; default
300).
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro import (
    Architecture,
    CPGBuilder,
    Condition,
    Mapping,
    bus,
    hardware,
    programmable,
)
from repro.data import load_fig1_example
from repro.graph import expand_communications


@pytest.fixture(scope="session")
def fig1():
    """The paper's Fig. 1 system (graph, architecture, mapping, expansion)."""
    return load_fig1_example()


@pytest.fixture(scope="session")
def fig1_merge_result(fig1):
    """The merged schedule table of the Fig. 1 system (computed once)."""
    from repro import ScheduleMerger

    return ScheduleMerger(fig1.graph, fig1.expanded_mapping).merge()


@pytest.fixture()
def two_processor_architecture():
    """Two programmable processors, one ASIC and one bus (tau0 = 1)."""
    return Architecture(
        processors=[programmable("pe1"), programmable("pe2"), hardware("hw1")],
        buses=[bus("bus1")],
        condition_broadcast_time=1.0,
    )


def build_small_conditional_system(architecture: Architecture):
    """A five-process graph with one condition, mapped on two processors.

    Structure::

        P1 (pe1, computes C) --C--> P2 (pe2) ----\\
           \\--!C--> P3 (pe1) --------------------> P5 (pe2)
        P4 (pe2) --------------------------------/
    """
    C = Condition("C")
    builder = CPGBuilder("small")
    builder.process("P1", 4.0)
    builder.process("P2", 3.0)
    builder.process("P3", 5.0)
    builder.process("P4", 2.0)
    builder.process("P5", 1.0)
    builder.edge("P1", "P2", condition=C.true(), communication_time=2.0)
    builder.edge("P1", "P3", condition=C.false())
    builder.edge("P2", "P5")
    builder.edge("P3", "P5", communication_time=2.0)
    builder.edge("P4", "P5")
    graph = builder.build()

    mapping = Mapping(architecture)
    mapping.assign("P1", architecture["pe1"])
    mapping.assign("P3", architecture["pe1"])
    mapping.assign("P2", architecture["pe2"])
    mapping.assign("P4", architecture["pe2"])
    mapping.assign("P5", architecture["pe2"])
    expanded = expand_communications(graph, mapping, architecture)
    return graph, mapping, expanded


@pytest.fixture()
def small_system(two_processor_architecture):
    """The small one-condition system plus its communication expansion."""
    graph, mapping, expanded = build_small_conditional_system(
        two_processor_architecture
    )
    return {
        "architecture": two_processor_architecture,
        "graph": graph,
        "mapping": mapping,
        "expanded": expanded,
    }


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf: wall-clock smoke checks against the BENCH_core.json baseline "
        "(deselect with -m 'not perf' on constrained machines)",
    )


_TEST_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "300"))

# Background resources (service threads, event loops) the timeout must tear
# down: a bare TimeoutError would otherwise leak the server thread past the
# test that started it.  Tests register a shutdown callable; the registry is
# drained — timeout or not — when the test call phase ends.
_timeout_cleanups = []


def register_timeout_cleanup(cleanup) -> None:
    """Run ``cleanup()`` when this test ends (normally or by timeout)."""
    _timeout_cleanups.append(cleanup)


@pytest.fixture()
def timeout_cleanup():
    """The cleanup-registering function, as a fixture."""
    return register_timeout_cleanup


def _drain_timeout_cleanups() -> None:
    while _timeout_cleanups:
        cleanup = _timeout_cleanups.pop()
        try:
            cleanup()
        except Exception:
            pass  # teardown best effort; the test outcome is already decided


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    del _timeout_cleanups[:]
    if (
        _TEST_TIMEOUT <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        try:
            return (yield)
        finally:
            _drain_timeout_cleanups()

    def _expired(signum, frame):
        # Tear the registered services down first so their loops terminate
        # cleanly instead of leaking past the failed test.
        _drain_timeout_cleanups()
        raise TimeoutError(
            f"test exceeded REPRO_TEST_TIMEOUT={_TEST_TIMEOUT:g}s wall-clock limit"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, _TEST_TIMEOUT)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
        _drain_timeout_cleanups()
