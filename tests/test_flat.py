"""Flat schedule kernel: round-trip properties and batch equivalence.

The flat kernel (``repro.scheduling.flat``) packs schedules and tables into
parallel integer/float columns; the batched neighbourhood evaluator
(``repro.exploration.evaluate_neighbourhood``) scores whole move batches
against one shared expansion state.  Both are pure representation/throughput
changes, so the tests here pin the *no semantics change* contract:

* ``from_flat(to_flat(x)) == x`` — lossless, insertion-order-exact round
  trips for path schedules and schedule tables (hypothesis-driven over
  random generated systems, plus the paper's Fig. 1 example);
* batch-vs-serial equivalence — the same candidates produce identical
  :class:`~repro.exploration.CandidateEvaluation` values and consistent
  stage-cache accounting whether scored one by one, as one batch, or through
  serial/thread/process evaluation pools.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import load_fig1_example
from repro.exploration import (
    BatchStats,
    CachedEvaluator,
    EvaluationPool,
    ExplorationProblem,
    NeighborhoodSampler,
    StageCache,
    evaluate_candidate,
    evaluate_neighbourhood,
)
from repro.generator import GeneratorConfig, RandomSystemGenerator
from repro.scheduling import (
    ScheduleMerger,
    pack_time,
    schedule_from_flat,
    schedule_to_flat,
    table_from_flat,
    table_to_flat,
    unpack_time,
)


def merge_generated(config: GeneratorConfig):
    system = RandomSystemGenerator(config).generate()
    merger = ScheduleMerger(
        system.graph, system.expanded_mapping, system.architecture
    )
    return merger.merge()


def merge_fig1():
    system = load_fig1_example()
    merger = ScheduleMerger(
        system.graph, system.expanded_mapping, system.architecture
    )
    return merger.merge()


# -- int-packed time ---------------------------------------------------------


@given(st.floats(min_value=0.0, allow_nan=False, allow_infinity=False))
def test_pack_time_round_trips_bit_exactly(value):
    assert unpack_time(pack_time(value)) == value


@given(
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
)
def test_pack_time_preserves_order(a, b):
    # The IEEE-754 bit pattern of a non-negative double, read as an int64,
    # orders exactly like the float — the invariant the packed-column
    # comparisons in the merger rely on.
    assert (pack_time(a) <= pack_time(b)) == (a <= b)


# -- lossless flat round trips -----------------------------------------------


@settings(max_examples=12, deadline=None)
@given(
    nodes=st.integers(min_value=14, max_value=26),
    paths=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_flat_round_trip_over_generated_systems(nodes, paths, seed):
    result = merge_generated(
        GeneratorConfig(nodes=nodes, alternative_paths=paths, seed=seed)
    )
    for schedule in result.path_schedules.values():
        assert schedule_from_flat(schedule_to_flat(schedule)) == schedule
    assert table_from_flat(table_to_flat(result.table)) == result.table


def test_flat_round_trip_fig1():
    result = merge_fig1()
    for schedule in result.path_schedules.values():
        restored = schedule_from_flat(schedule_to_flat(schedule))
        assert restored == schedule
        assert restored.delay == schedule.delay
    table = table_from_flat(table_to_flat(result.table))
    assert table == result.table
    # The restored table must answer queries identically, not just compare
    # equal: activation times drive the delta_max computation.
    assert table.name == result.table.name


# -- batch-vs-serial evaluation equivalence ----------------------------------


def neighbourhood(problem, count=8, seed=7):
    base = problem.initial_candidate()
    sampler = NeighborhoodSampler(problem)
    rng = random.Random(seed)
    return [base] + [candidate for _, candidate in sampler.sample(base, rng, count)]


@pytest.fixture(scope="module")
def fig1_problem():
    return ExplorationProblem.from_system(load_fig1_example())


def test_batch_matches_serial_evaluation(fig1_problem):
    candidates = neighbourhood(fig1_problem)
    serial_cache = StageCache()
    serial = [
        evaluate_candidate(fig1_problem, candidate, stage_cache=serial_cache)
        for candidate in candidates
    ]
    batch_cache = StageCache()
    stats = BatchStats()
    batched = evaluate_neighbourhood(
        fig1_problem, candidates, stage_cache=batch_cache, batch_stats=stats
    )
    assert batched == serial
    # Batched scoring probes the stage cache in the same order as the serial
    # loop, so the hit/miss accounting must be identical, not just similar.
    assert batch_cache.stats == serial_cache.stats
    assert stats.batches == 1
    assert stats.candidates == len(candidates)
    assert stats.mean_batch_size == pytest.approx(len(candidates))
    assert stats.payload_bytes == 0


def test_batch_stats_snapshot_accumulates():
    stats = BatchStats()
    assert stats.snapshot() == {
        "batches": 0,
        "candidates": 0,
        "mean_batch_size": 0.0,
        "payload_bytes": 0,
    }
    stats.record_batch(4)
    stats.record_batch(6, payload_bytes=120)
    snapshot = stats.snapshot()
    assert snapshot["batches"] == 2
    assert snapshot["candidates"] == 10
    assert snapshot["mean_batch_size"] == pytest.approx(5.0)
    assert snapshot["payload_bytes"] == 120


@pytest.mark.parametrize(
    "mode,workers",
    [("serial", 1), ("thread", 2), ("process", 2)],
)
def test_pool_modes_score_identically(fig1_problem, mode, workers):
    candidates = neighbourhood(fig1_problem)
    unique = len({candidate.fingerprint for candidate in candidates})
    expected = [
        evaluate_candidate(fig1_problem, candidate, stage_cache=StageCache())
        for candidate in candidates
    ]
    with EvaluationPool(fig1_problem, mode=mode, workers=workers) as pool:
        evaluator = CachedEvaluator(fig1_problem, pool=pool)
        got = evaluator.evaluate_many(candidates)
        assert got == expected
        stats = evaluator.batch_stats
        assert stats.batches == 1
        assert stats.candidates == unique
        if mode == "process":
            # The pickled-once problem blob plus the pre-pickled units all
            # crossed the process boundary and were counted.
            assert pool.payload_bytes_shipped > 0
            assert stats.payload_bytes == pool.payload_bytes_shipped
        else:
            # Nothing is serialised in-process.
            assert pool.payload_bytes_shipped == 0
            assert stats.payload_bytes == 0
