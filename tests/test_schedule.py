"""Unit tests for scheduled tasks and per-path schedules."""

import pytest

from repro.architecture import bus, hardware, programmable
from repro.conditions import Condition
from repro.graph.paths import AlternativePath
from repro.conditions import Conjunction
from repro.scheduling import PathSchedule, ScheduledTask

C = Condition("C")
PE1 = programmable("pe1")
PE2 = programmable("pe2")
HW = hardware("hw1")
BUS = bus("bus1")


def make_path():
    return AlternativePath(
        label=Conjunction.true(), assignment={}, active_processes=("P1", "P2", "P3")
    )


def make_schedule():
    tasks = {
        "P1": ScheduledTask("P1", 0.0, 4.0, PE1),
        "P2": ScheduledTask("P2", 4.0, 3.0, PE1),
        "P3": ScheduledTask("P3", 2.0, 5.0, PE2),
    }
    broadcasts = {C: ScheduledTask("cond:C", 4.0, 1.0, BUS, C)}
    return PathSchedule(make_path(), tasks, broadcasts, {C: 4.0}, {C: PE1})


class TestScheduledTask:
    def test_end_time(self):
        assert ScheduledTask("P1", 2.0, 3.0, PE1).end == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            ScheduledTask("P1", -1.0, 3.0, PE1)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            ScheduledTask("P1", 1.0, -3.0, PE1)

    def test_broadcast_flag(self):
        assert ScheduledTask("cond:C", 0.0, 1.0, BUS, C).is_broadcast
        assert not ScheduledTask("P1", 0.0, 1.0, PE1).is_broadcast

    def test_moved_to_keeps_everything_else(self):
        task = ScheduledTask("P1", 0.0, 3.0, PE1)
        moved = task.moved_to(7.0)
        assert moved.start == 7.0 and moved.duration == 3.0 and moved.pe == PE1

    def test_str_mentions_pe(self):
        assert "pe1" in str(ScheduledTask("P1", 0.0, 3.0, PE1))


class TestPathSchedule:
    def test_delay_is_latest_end(self):
        assert make_schedule().delay == 7.0

    def test_empty_schedule_has_zero_delay(self):
        empty = PathSchedule(make_path(), {}, {}, {}, {})
        assert empty.delay == 0.0

    def test_start_and_end_lookup(self):
        schedule = make_schedule()
        assert schedule.start_of("P2") == 4.0
        assert schedule.end_of("P2") == 7.0
        assert "P2" in schedule and "missing" not in schedule

    def test_ordering_helpers(self):
        schedule = make_schedule()
        assert [t.name for t in schedule.tasks_in_order()] == ["P1", "P3", "P2"]
        names = [t.name for t in schedule.all_items_in_order()]
        assert names.index("P1") < names.index("cond:C")

    def test_tasks_on_pe(self):
        schedule = make_schedule()
        assert [t.name for t in schedule.tasks_on(PE1)] == ["P1", "P2"]
        assert [t.name for t in schedule.tasks_on(BUS)] == ["cond:C"]

    def test_condition_known_time_on_origin_and_elsewhere(self):
        schedule = make_schedule()
        assert schedule.condition_known_time(C, PE1) == 4.0  # origin processor
        assert schedule.condition_known_time(C, PE2) == 5.0  # after broadcast
        assert schedule.condition_known_time(C, None) == 5.0

    def test_condition_known_time_unknown_condition(self):
        with pytest.raises(KeyError):
            make_schedule().condition_known_time(Condition("Z"), PE1)

    def test_conditions_known_at(self):
        schedule = make_schedule()
        assert schedule.conditions_known_at(PE1, 4.0) == (C,)
        assert schedule.conditions_known_at(PE2, 4.5) == ()
        assert schedule.conditions_known_at(PE2, 5.0) == (C,)
        assert schedule.conditions_known_at(PE2, 10.0, restrict_to=[]) == ()

    def test_busy_intervals_only_for_sequential_elements(self):
        tasks = {
            "P1": ScheduledTask("P1", 0.0, 4.0, PE1),
            "H1": ScheduledTask("H1", 0.0, 9.0, HW),
        }
        schedule = PathSchedule(make_path(), tasks, {}, {}, {})
        intervals = schedule.busy_intervals()
        assert "pe1" in intervals and "hw1" not in intervals

    def test_validate_resources_detects_overlap(self):
        tasks = {
            "P1": ScheduledTask("P1", 0.0, 4.0, PE1),
            "P2": ScheduledTask("P2", 2.0, 4.0, PE1),
        }
        schedule = PathSchedule(make_path(), tasks, {}, {}, {})
        with pytest.raises(ValueError):
            schedule.validate_resources()

    def test_validate_resources_accepts_back_to_back(self):
        make_schedule().validate_resources()

    def test_copy_is_independent(self):
        schedule = make_schedule()
        clone = schedule.copy()
        clone.tasks["P9"] = ScheduledTask("P9", 0.0, 1.0, PE2)
        assert "P9" not in schedule.tasks

    def test_repr(self):
        assert "delay=7" in repr(make_schedule())
