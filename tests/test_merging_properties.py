"""Property-style tests of the merging algorithm over randomly generated systems.

These are the library's strongest correctness checks: for a variety of random
conditional process graphs, architectures and mappings, the generated schedule
table must satisfy the paper's four requirements, execute correctly on the
run-time simulator for every alternative path, and respect the analytic bounds
(``delta_M <= delta_max <=`` condition-blind delay is *not* guaranteed by the
paper, so only the lower bound is asserted).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import critical_path_lower_bound, ideal_per_path_delay
from repro.generator import GeneratorConfig, RandomSystemGenerator
from repro.graph import PathEnumerator
from repro.scheduling import ScheduleMerger
from repro.simulation import validate_merge_result


def merge_generated(config: GeneratorConfig):
    system = RandomSystemGenerator(config).generate()
    merger = ScheduleMerger(system.graph, system.expanded_mapping, system.architecture)
    return system, merger.merge()


FIXED_CONFIGS = [
    GeneratorConfig(nodes=18, alternative_paths=3, seed=101),
    GeneratorConfig(nodes=24, alternative_paths=5, seed=202, buses=1),
    GeneratorConfig(
        nodes=24,
        alternative_paths=6,
        seed=303,
        execution_time_distribution="exponential",
        programmable_processors=2,
    ),
    GeneratorConfig(nodes=30, alternative_paths=8, seed=404, programmable_processors=4, buses=3),
    GeneratorConfig(nodes=20, alternative_paths=4, seed=505, hardware_mapping_fraction=0.5),
    GeneratorConfig(nodes=16, alternative_paths=2, seed=606, programmable_processors=1),
]


@pytest.mark.parametrize("config", FIXED_CONFIGS, ids=lambda c: f"seed{c.seed}")
def test_merge_is_valid_for_generated_systems(config):
    system, result = merge_generated(config)
    report = validate_merge_result(
        system.graph, system.expanded_mapping, result, system.architecture
    )
    assert report.paths_checked == config.alternative_paths
    assert result.delta_max >= result.delta_m - 1e-9


@pytest.mark.parametrize("config", FIXED_CONFIGS[:3], ids=lambda c: f"seed{c.seed}")
def test_delta_m_equals_ideal_per_path_delay(config):
    system, result = merge_generated(config)
    ideal = ideal_per_path_delay(system.graph, system.expanded_mapping)
    assert result.delta_m == pytest.approx(ideal)


@pytest.mark.parametrize("config", FIXED_CONFIGS[:3], ids=lambda c: f"seed{c.seed}")
def test_critical_path_bound_holds(config):
    system, result = merge_generated(config)
    bound = critical_path_lower_bound(system.graph, system.expanded_mapping)
    assert result.delta_max >= bound - 1e-9


@pytest.mark.parametrize("config", FIXED_CONFIGS[:2], ids=lambda c: f"seed{c.seed}")
def test_every_path_delay_bounded_by_delta_max(config):
    system, result = merge_generated(config)
    for path in result.paths:
        delay = result.table.delay_of_path(system.graph, system.expanded_mapping, path)
        assert delay <= result.delta_max + 1e-9


@pytest.mark.parametrize("config", FIXED_CONFIGS[:2], ids=lambda c: f"seed{c.seed}")
def test_longest_path_not_disturbed(config):
    # Section 6: the path with the largest delay is executed in exactly delta_M time.
    system, result = merge_generated(config)
    longest = max(result.path_schedules.values(), key=lambda s: s.delay)
    table_delay = result.table.delay_of_path(
        system.graph, system.expanded_mapping, longest.path
    )
    assert table_delay == pytest.approx(result.delta_m)


@settings(max_examples=8, deadline=None)
@given(
    paths=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
    processors=st.integers(min_value=1, max_value=4),
    buses=st.integers(min_value=1, max_value=3),
)
def test_randomised_systems_produce_deterministic_valid_tables(
    paths, seed, processors, buses
):
    config = GeneratorConfig(
        nodes=16,
        alternative_paths=paths,
        seed=seed,
        programmable_processors=processors,
        buses=buses,
    )
    system, result = merge_generated(config)
    validate_merge_result(
        system.graph, system.expanded_mapping, result, system.architecture
    )
    assert PathEnumerator(system.graph).count() == paths
    # Re-running the whole pipeline must give the same worst-case delay.
    _, again = merge_generated(config)
    assert again.delta_max == pytest.approx(result.delta_max)
