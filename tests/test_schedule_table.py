"""Tests for the schedule table structure and the paper's determinism requirements."""

import pytest

from repro.conditions import Condition, Conjunction
from repro.graph import CPGBuilder, PathEnumerator
from repro.scheduling import ScheduleTable, ScheduleTableError

C = Condition("C")
D = Condition("D")

TRUE = Conjunction.true()
C_TRUE = Conjunction.of(C.true())
C_FALSE = Conjunction.of(C.false())


def branching_graph():
    builder = CPGBuilder("branch")
    builder.process("P1", 2.0)
    builder.process("P2", 3.0)
    builder.process("P3", 4.0)
    builder.process("P4", 1.0)
    builder.edge("P1", "P2", condition=C.true())
    builder.edge("P1", "P3", condition=C.false())
    builder.edge("P2", "P4")
    builder.edge("P3", "P4")
    return builder.build()


def valid_table():
    table = ScheduleTable("demo")
    table.add_process_entry("P1", TRUE, 0.0)
    table.add_process_entry("P2", C_TRUE, 2.0)
    table.add_process_entry("P3", C_FALSE, 2.0)
    table.add_process_entry("P4", C_TRUE, 5.0)
    table.add_process_entry("P4", C_FALSE, 6.0)
    table.add_condition_entry(C, TRUE, 2.0)
    return table


class TestStructure:
    def test_rows_and_columns(self):
        table = valid_table()
        assert set(table.process_names) == {"P1", "P2", "P3", "P4"}
        assert table.conditions == (C,)
        assert TRUE in table.columns() and C_TRUE in table.columns()
        assert len(table) == 4

    def test_entries_accessors(self):
        table = valid_table()
        assert len(table.process_entries("P4")) == 2
        assert table.process_entries("unknown") == ()
        assert len(table.condition_entries(C)) == 1
        assert table.condition_entries(D) == ()

    def test_iteration(self):
        table = valid_table()
        rows = dict(iter(table))
        assert set(rows) == {"P1", "P2", "P3", "P4"}

    def test_repr(self):
        assert "rows=4" in repr(valid_table())


class TestInterpretation:
    def test_activation_time_selects_applicable_column(self):
        table = valid_table()
        assert table.activation_time("P4", {C: True}) == 5.0
        assert table.activation_time("P4", {C: False}) == 6.0
        assert table.activation_time("P2", {C: False}) is None
        assert table.activation_time("P1", {C: False}) == 0.0

    def test_ambiguous_activation_raises(self):
        table = ScheduleTable()
        table.add_process_entry("P1", TRUE, 0.0)
        table.add_process_entry("P1", C_TRUE, 3.0)
        with pytest.raises(ScheduleTableError):
            table.activation_time("P1", {C: True})

    def test_broadcast_time(self):
        table = valid_table()
        assert table.broadcast_time(C, {C: True}) == 2.0
        assert table.broadcast_time(D, {C: True}) is None

    def test_delay_of_path_and_worst_case(self, two_processor_architecture):
        from repro.architecture import Mapping

        graph = branching_graph()
        mapping = Mapping(two_processor_architecture)
        for name in ("P1", "P2", "P3", "P4"):
            mapping.assign(name, two_processor_architecture["pe1"])
        table = valid_table()
        paths = PathEnumerator(graph).paths()
        by_label = {str(p.label): p for p in paths}
        assert table.delay_of_path(graph, mapping, by_label["C"]) == pytest.approx(6.0)
        assert table.delay_of_path(graph, mapping, by_label["!C"]) == pytest.approx(7.0)
        assert table.worst_case_delay(graph, mapping, paths) == pytest.approx(7.0)

    def test_delay_of_path_missing_entry_raises(self, two_processor_architecture):
        from repro.architecture import Mapping

        graph = branching_graph()
        mapping = Mapping(two_processor_architecture)
        for name in ("P1", "P2", "P3", "P4"):
            mapping.assign(name, two_processor_architecture["pe1"])
        table = ScheduleTable()
        table.add_process_entry("P1", TRUE, 0.0)
        path = PathEnumerator(graph).paths()[0]
        with pytest.raises(ScheduleTableError):
            table.delay_of_path(graph, mapping, path)


class TestRequirements:
    def test_requirement_1_checks_guard_implication(self):
        graph = branching_graph()
        table = valid_table()
        table.check_requirement_1(graph)
        bad = ScheduleTable()
        bad.add_process_entry("P2", TRUE, 1.0)  # P2's guard is C, "true" is weaker
        with pytest.raises(ScheduleTableError):
            bad.check_requirement_1(graph)

    def test_requirement_2_detects_overlapping_columns(self):
        table = ScheduleTable()
        table.add_process_entry("P1", C_TRUE, 1.0)
        table.add_process_entry("P1", Conjunction.of(D.true()), 2.0)
        with pytest.raises(ScheduleTableError):
            table.check_requirement_2()

    def test_requirement_2_allows_equal_times(self):
        table = ScheduleTable()
        table.add_process_entry("P1", C_TRUE, 1.0)
        table.add_process_entry("P1", Conjunction.of(D.true()), 1.0)
        table.check_requirement_2()

    def test_requirement_2_allows_exclusive_columns(self):
        valid_table().check_requirement_2()

    def test_requirement_2_applies_to_condition_rows(self):
        table = ScheduleTable()
        table.add_condition_entry(C, Conjunction.of(D.true()), 1.0)
        table.add_condition_entry(C, TRUE, 2.0)
        with pytest.raises(ScheduleTableError):
            table.check_requirement_2()

    def test_requirement_3_needs_full_coverage(self):
        graph = branching_graph()
        paths = PathEnumerator(graph).paths()
        incomplete = ScheduleTable()
        incomplete.add_process_entry("P1", TRUE, 0.0)
        incomplete.add_process_entry("P2", C_TRUE, 2.0)
        incomplete.add_process_entry("P4", C_TRUE, 5.0)
        # P3 and the !C activation of P4 are missing.
        with pytest.raises(ScheduleTableError):
            incomplete.check_requirement_3(graph, paths)
        valid_table().check_requirement_3(graph, paths)

    def test_check_requirements_runs_all(self):
        graph = branching_graph()
        paths = PathEnumerator(graph).paths()
        valid_table().check_requirements(graph, paths)
