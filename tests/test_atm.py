"""Tests for the ATM OAM case study (Table 2 of the paper).

The absolute nanosecond values of Table 2 cannot be reproduced (the VHDL
process graphs and their execution times are not public), but the qualitative
conclusions the paper draws from the table are asserted here:

* a faster processor reduces the delay in every mode;
* an additional processor never helps mode 2, always helps mode 1, and helps
  mode 3 only for the 486;
* an additional memory module never helps modes 2 and 3, and pays off for
  mode 1 once both processors are Pentiums.
"""

import pytest

from repro.atm import (
    OAMArchitectureConfig,
    PAPER_TABLE2,
    build_all_modes,
    build_oam_architecture,
    candidate_mappings,
    evaluate_mode,
    evaluate_table2,
    processor_speed,
    table2_architecture_configs,
    table2_delays,
)
from repro.graph import PathEnumerator
from repro.simulation import validate_merge_result


@pytest.fixture(scope="module")
def table2():
    """The full evaluated Table 2 (computed once for the whole module)."""
    return table2_delays(evaluate_table2())


class TestModeGraphs:
    @pytest.mark.parametrize("index", [0, 1, 2])
    def test_published_sizes_and_path_counts(self, index):
        mode = build_all_modes()[index]
        assert len(mode.graph.ordinary_processes) == mode.expected_processes
        assert PathEnumerator(mode.graph).count() == mode.expected_paths

    def test_modes_validate_structurally(self):
        for mode in build_all_modes():
            mode.graph.validate()

    def test_every_process_is_tagged(self):
        for mode in build_all_modes():
            tagged = set(mode.cpu_groups) | set(mode.memory_groups)
            assert tagged == {p.name for p in mode.graph.ordinary_processes}

    def test_each_mode_has_memory_traffic(self):
        for mode in build_all_modes():
            assert mode.memory_processes


class TestArchitectures:
    def test_processor_speed_lookup(self):
        assert processor_speed("486") == 1.0
        assert processor_speed("Pentium") > 1.0
        with pytest.raises(ValueError):
            processor_speed("z80")

    def test_build_architecture_shapes(self):
        config = OAMArchitectureConfig(("486", "Pentium"), 2)
        architecture = build_oam_architecture(config)
        names = {pe.name for pe in architecture.programmable_processors}
        assert names == {"cpu1", "cpu2", "mem1", "mem2"}
        assert architecture["cpu2"].speed > architecture["cpu1"].speed

    def test_invalid_architectures_rejected(self):
        with pytest.raises(ValueError):
            build_oam_architecture(OAMArchitectureConfig(("486",) * 3, 1))
        with pytest.raises(ValueError):
            build_oam_architecture(OAMArchitectureConfig(("486",), 3))

    def test_table2_configs_cover_ten_columns(self):
        configs = table2_architecture_configs()
        assert len(configs) == 10
        assert len({c.label for c in configs}) == 10
        assert set(PAPER_TABLE2[1]) == {c.label for c in configs}

    def test_candidate_mappings_cover_strategies(self):
        mode = build_all_modes()[0]
        architecture = build_oam_architecture(OAMArchitectureConfig(("486", "486"), 2))
        candidates = candidate_mappings(mode, architecture)
        strategies = {(cpu, mem) for cpu, mem, _ in candidates}
        assert strategies == {
            ("single", "single"),
            ("single", "split"),
            ("split", "single"),
            ("split", "split"),
        }

    def test_single_resource_architecture_has_one_candidate(self):
        mode = build_all_modes()[1]
        architecture = build_oam_architecture(OAMArchitectureConfig(("486",), 1))
        assert len(candidate_mappings(mode, architecture)) == 1


class TestEvaluation:
    def test_evaluate_mode_returns_valid_schedule(self):
        mode = build_all_modes()[1]
        evaluation = evaluate_mode(mode, OAMArchitectureConfig(("Pentium",), 1))
        assert evaluation.worst_case_delay > 0
        assert evaluation.result.delta_max == evaluation.worst_case_delay

    def test_mode2_schedule_table_is_valid_end_to_end(self):
        from repro.graph import expand_communications

        mode = build_all_modes()[1]
        architecture = build_oam_architecture(OAMArchitectureConfig(("486",), 1))
        _, _, mapping = candidate_mappings(mode, architecture)[0]
        expanded = expand_communications(mode.graph, mapping, architecture)
        from repro.scheduling import ScheduleMerger

        result = ScheduleMerger(expanded.graph, expanded.mapping, architecture).merge()
        validate_merge_result(expanded.graph, expanded.mapping, result, architecture)


class TestTable2Qualitative:
    def test_faster_processor_always_reduces_delay(self, table2):
        for mode in (1, 2, 3):
            assert table2[mode]["1P/1M Pentium"] < table2[mode]["1P/1M 486"]
            assert table2[mode]["2P/1M 2xPentium"] < table2[mode]["2P/1M 2x486"]

    def test_mode2_insensitive_to_architecture(self, table2):
        row = table2[2]
        delays_486 = {row["1P/1M 486"], row["1P/2M 486"], row["2P/1M 2x486"], row["2P/2M 2x486"]}
        delays_pent = {
            row["1P/1M Pentium"],
            row["1P/2M Pentium"],
            row["2P/1M 2xPentium"],
            row["2P/2M 2xPentium"],
            row["2P/1M 486+Pentium"],
            row["2P/2M 486+Pentium"],
        }
        assert len(delays_486) == 1
        assert len(delays_pent) == 1

    def test_second_processor_always_helps_mode1(self, table2):
        row = table2[1]
        assert row["2P/1M 2x486"] < row["1P/1M 486"]
        assert row["2P/1M 2xPentium"] < row["1P/1M Pentium"]

    def test_second_processor_never_helps_mode2(self, table2):
        row = table2[2]
        assert row["2P/1M 2x486"] == pytest.approx(row["1P/1M 486"])
        assert row["2P/1M 2xPentium"] == pytest.approx(row["1P/1M Pentium"])

    def test_second_processor_helps_mode3_only_for_486(self, table2):
        row = table2[3]
        assert row["2P/1M 2x486"] < row["1P/1M 486"]
        assert row["2P/1M 2xPentium"] == pytest.approx(row["1P/1M Pentium"])

    def test_memory_module_never_helps_modes_2_and_3(self, table2):
        for mode in (2, 3):
            row = table2[mode]
            for one_mem, two_mem in [
                ("1P/1M 486", "1P/2M 486"),
                ("1P/1M Pentium", "1P/2M Pentium"),
                ("2P/1M 2x486", "2P/2M 2x486"),
                ("2P/1M 2xPentium", "2P/2M 2xPentium"),
            ]:
                assert row[two_mem] == pytest.approx(row[one_mem])

    def test_memory_module_irrelevant_for_single_processor_mode1(self, table2):
        row = table2[1]
        assert row["1P/2M 486"] == pytest.approx(row["1P/1M 486"])
        assert row["1P/2M Pentium"] == pytest.approx(row["1P/1M Pentium"])

    def test_memory_module_pays_off_for_two_pentiums_mode1(self, table2):
        row = table2[1]
        assert row["2P/2M 2xPentium"] < row["2P/1M 2xPentium"]

    def test_memory_module_roughly_neutral_for_two_486_mode1(self, table2):
        row = table2[1]
        relative_change = abs(row["2P/2M 2x486"] - row["2P/1M 2x486"]) / row["2P/1M 2x486"]
        assert relative_change < 0.02

    def test_mixed_processors_not_slower_than_two_486(self, table2):
        for mode in (1, 2, 3):
            assert table2[mode]["2P/1M 486+Pentium"] <= table2[mode]["2P/1M 2x486"] + 1e-6

    def test_paper_reference_table_is_complete(self):
        for mode in (1, 2, 3):
            assert set(PAPER_TABLE2[mode]) == {c.label for c in table2_architecture_configs()}
