"""Service-level tests: the async job server over shared LRU stage caches.

Everything here exercises a **real** localhost socket — the asyncio server
of :mod:`repro.service.server` on an ephemeral port, spoken to with the
stdlib client — because the service's promises (byte-identity with the
one-shot CLI, cross-request stage-cache reuse, offender-naming errors) are
wire-level promises.  Servers register with the conftest timeout-cleanup
registry so a hung test tears its server down instead of leaking it.
"""

import json
import threading

import pytest

from repro.cli import main
from repro.io import system_to_dict
from repro.service import ServiceClient, ServiceError, start_in_thread


@pytest.fixture()
def service(timeout_cleanup):
    """A running service on an ephemeral port (torn down even on timeout)."""
    running = start_in_thread(job_workers=2)
    timeout_cleanup(running.close)
    try:
        yield running
    finally:
        running.close()


@pytest.fixture()
def client(service):
    return ServiceClient(service.url, timeout=60.0)


FIG1_REQUEST = {"fig1": True, "cycles": 4, "neighbors": 4, "seed": 1}


def _system_payload(small_system, name):
    return system_to_dict(
        small_system["graph"],
        small_system["architecture"],
        small_system["mapping"],
        name,
    )


def test_submit_poll_fetch_roundtrip(client):
    assert client.health() == {"status": "ok"}
    submitted = client.submit(dict(FIG1_REQUEST))
    assert submitted["state"] in ("queued", "running")
    assert submitted["job"].startswith("job-")

    status = client.wait(submitted["job"], timeout=120)
    assert status["state"] == "done"
    assert status["problem"] == "the paper's Fig. 1 example"
    assert status["cache_scope"]
    assert status["shared_cache"]["entries_at_start"] == 0

    document = client.result(submitted["job"])
    assert document["problem"] == "the paper's Fig. 1 example"
    assert document["seed"] == 1
    assert document["best_engine"] == "tabu"
    result = document["results"][0]
    assert result["best"]["feasible"] is True
    # The served job runs in the CLI's serial shape: no pool, no resilience.
    assert result["resilience"] is None
    assert result["stages"]["schedule_misses"] > 0

    trajectory = client.trajectory(submitted["job"])
    assert trajectory["trajectories"]["tabu"] == result["trajectory"]

    listed = client.jobs()["jobs"]
    assert [entry["job"] for entry in listed] == [submitted["job"]]


def test_served_result_is_byte_identical_to_one_shot_cli(client, capsys):
    assert main([
        "explore", "--fig1", "--cycles", "4", "--neighbors", "4",
        "--seed", "1", "--json",
    ]) == 0
    one_shot = capsys.readouterr().out

    submitted = client.submit(dict(FIG1_REQUEST))
    client.wait(submitted["job"], timeout=120)
    document = client.result(submitted["job"])
    served = json.dumps(document, indent=2, sort_keys=True) + "\n"
    assert served == one_shot


def test_concurrent_clients_same_request_get_identical_results(service):
    documents = [None] * 4
    errors = []

    def _one_client(index):
        try:
            client = ServiceClient(service.url, timeout=60.0)
            submitted = client.submit(dict(FIG1_REQUEST))
            client.wait(submitted["job"], timeout=120)
            documents[index] = client.result(submitted["job"])
        except Exception as error:  # surfaced below; threads must not die silently
            errors.append(error)

    threads = [
        threading.Thread(target=_one_client, args=(index,))
        for index in range(len(documents))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    # Concurrent jobs share stage caches and may coalesce into common
    # evaluation rounds, yet every client sees the same document — stage
    # sharing may only change counters, never results.
    first = documents[0]
    assert first is not None
    stripped = [
        {key: value for key, value in doc.items()} for doc in documents
    ]
    for doc in stripped[1:]:
        assert doc["best_engine"] == first["best_engine"]
        for ours, theirs in zip(doc["results"], first["results"]):
            assert ours["best"] == theirs["best"]
            assert ours["trajectory"] == theirs["trajectory"]
            assert ours["evaluations"] == theirs["evaluations"]


def test_near_duplicate_tenants_share_the_stage_cache(client, small_system):
    # Two tenants, same graph/architecture but different system names and
    # seeds: they land in one cache scope, and the second answers partly
    # from the first's stage entries.
    first = client.submit({
        "system": _system_payload(small_system, "tenant-a"),
        "cycles": 4, "neighbors": 4, "seed": 1,
    })
    status_a = client.wait(first["job"], timeout=120)
    assert status_a["shared_cache"]["entries_at_start"] == 0

    second = client.submit({
        "system": _system_payload(small_system, "tenant-b"),
        "cycles": 4, "neighbors": 4, "seed": 2,
    })
    status_b = client.wait(second["job"], timeout=120)
    assert status_b["cache_scope"] == status_a["cache_scope"]
    assert status_b["shared_cache"]["entries_at_start"] > 0
    assert status_b["shared_cache"]["stage_hits"] > 0

    cache = client.cache_stats()
    scope = cache["scopes"][status_a["cache_scope"]]
    assert scope["tenants"] == 2
    assert scope["entries"] > 0
    assert scope["occupancy_bytes"] > 0
    assert scope["max_entries"] > 0 and scope["max_bytes"] > 0
    assert cache["totals"]["hits"] >= status_b["shared_cache"]["stage_hits"]


def test_identical_tenant_replays_entirely_from_cache(client):
    first = client.submit(dict(FIG1_REQUEST))
    client.wait(first["job"], timeout=120)
    second = client.submit(dict(FIG1_REQUEST))
    status = client.wait(second["job"], timeout=120)
    # Same request, warm scope: every stage query hits.
    assert status["shared_cache"]["stage_misses"] == 0
    assert status["shared_cache"]["stage_hits"] > 0
    # A warm cache may only change the stage hit counters, nothing else.
    cold, warm = client.result(first["job"]), client.result(second["job"])
    for document in (cold, warm):
        for result in document["results"]:
            result.pop("stages")
    assert cold == warm


def test_malformed_payloads_name_the_offender(client, small_system):
    status, document = client.request("POST", "/jobs", {"fig1": True, "cycles": "x"})
    assert status == 400
    assert "'cycles'" in document["error"]

    status, document = client.request("POST", "/jobs", {"cycles": 4})
    assert status == 400
    assert "exactly one problem source" in document["error"]

    status, document = client.request(
        "POST", "/jobs", {"fig1": True, "budget": 9}
    )
    assert status == 400
    assert "'budget'" in document["error"]

    broken = _system_payload(small_system, "broken")
    offender = broken["processes"][0]["name"]
    broken["processes"][0].pop("execution_time")
    status, document = client.request("POST", "/jobs", {"system": broken})
    assert status == 400
    assert offender in document["error"]
    assert "execution_time" in document["error"]

    status, document = client.request("POST", "/jobs", None)
    assert status == 400
    assert "empty" in document["error"]

    status, document = client.request("GET", "/jobs/job-999")
    assert status == 404
    assert "job-999" in document["error"]

    status, document = client.request("DELETE", "/healthz")
    assert status == 405


def test_schedule_and_sweep_queries(client, small_system, capsys, tmp_path):
    payload = _system_payload(small_system, "query-demo")
    served = client.schedule({"system": payload, "validate": True})

    from repro.io import save_system
    path = tmp_path / "system.json"
    save_system(
        path,
        small_system["graph"],
        small_system["architecture"],
        small_system["mapping"],
        name="query-demo",
    )
    assert main(["schedule", str(path), "--validate", "--json"]) == 0
    one_shot = json.loads(capsys.readouterr().out)
    assert served == one_shot

    swept = client.sweep({"nodes": [10], "paths": [2], "graphs": 1})
    assert main([
        "sweep", "--nodes", "10", "--paths", "2", "--graphs", "1", "--json",
    ]) == 0
    assert swept == json.loads(capsys.readouterr().out)


def test_pareto_job_exposes_fronts(client):
    submitted = client.submit(dict(FIG1_REQUEST, pareto=True))
    client.wait(submitted["job"], timeout=120)
    fronts = client.front(submitted["job"])
    assert fronts["fronts"]["tabu"]["size"] >= 1

    plain = client.submit(dict(FIG1_REQUEST))
    client.wait(plain["job"], timeout=120)
    with pytest.raises(ServiceError, match="Pareto front"):
        client.front(plain["job"])


def test_stats_track_requests_and_batching(client):
    submitted = client.submit(dict(FIG1_REQUEST))
    client.wait(submitted["job"], timeout=120)
    stats = client.stats()
    assert stats["requests"]["total"] > 0
    assert stats["requests"]["by_route"]["/jobs"] >= 1
    assert stats["requests_per_second"] > 0
    assert stats["jobs"]["by_state"] == {"done": 1}
    assert stats["jobs"]["queue_depth"] == 0
    assert stats["batching"]["rounds"] > 0
    assert stats["batching"]["batches"] >= stats["batching"]["rounds"]


def test_shutdown_endpoint_stops_the_server(timeout_cleanup):
    running = start_in_thread(job_workers=1)
    timeout_cleanup(running.close)
    client = ServiceClient(running.url, timeout=30.0)
    assert client.shutdown() == {"status": "shutting down"}
    running._thread.join(timeout=30)
    assert not running._thread.is_alive()
    with pytest.raises(OSError):
        client.health()
