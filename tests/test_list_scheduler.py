"""Tests for the per-path list scheduler (resources, dependencies, broadcasts, locks)."""

import pytest

from repro.architecture import Architecture, Mapping, bus, hardware, programmable
from repro.conditions import Condition
from repro.graph import CPGBuilder, PathEnumerator, expand_communications
from repro.scheduling import PathListScheduler, SchedulingError
from repro.scheduling.priorities import critical_path_priorities, static_order_priorities

C = Condition("C")


def single_path_of(graph):
    paths = PathEnumerator(graph).paths()
    assert len(paths) == 1
    return paths[0]


def test_chain_respects_dependencies_and_communication():
    architecture = Architecture(
        [programmable("pe1"), programmable("pe2")], [bus("bus1")]
    )
    builder = CPGBuilder("chain")
    builder.process("A", 3.0)
    builder.process("B", 4.0)
    builder.edge("A", "B", communication_time=2.0)
    graph = builder.build()
    mapping = Mapping(
        architecture, {"A": architecture["pe1"], "B": architecture["pe2"]}
    )
    expanded = expand_communications(graph, mapping, architecture)
    scheduler = PathListScheduler(expanded.graph, expanded.mapping, architecture)
    schedule = scheduler.schedule(single_path_of(expanded.graph))
    comm = expanded.communication_between("A", "B").name
    assert schedule.start_of("A") == 0.0
    assert schedule.start_of(comm) == pytest.approx(3.0)
    assert schedule.start_of("B") == pytest.approx(5.0)
    assert schedule.delay == pytest.approx(9.0)


def test_programmable_processor_serialises_processes():
    architecture = Architecture([programmable("pe1")], [bus("bus1")])
    builder = CPGBuilder("parallel")
    builder.process("A", 3.0)
    builder.process("B", 4.0)
    graph = builder.build()
    mapping = Mapping(architecture, {"A": architecture["pe1"], "B": architecture["pe1"]})
    scheduler = PathListScheduler(graph, mapping, architecture)
    schedule = scheduler.schedule(single_path_of(graph))
    schedule.validate_resources()
    assert schedule.delay == pytest.approx(7.0)


def test_hardware_processor_runs_in_parallel():
    architecture = Architecture([programmable("pe1"), hardware("hw1")], [bus("bus1")])
    builder = CPGBuilder("parallel-hw")
    builder.process("A", 3.0)
    builder.process("B", 4.0)
    graph = builder.build()
    mapping = Mapping(architecture, {"A": architecture["hw1"], "B": architecture["hw1"]})
    scheduler = PathListScheduler(graph, mapping, architecture)
    schedule = scheduler.schedule(single_path_of(graph))
    assert schedule.start_of("A") == 0.0 and schedule.start_of("B") == 0.0
    assert schedule.delay == pytest.approx(4.0)


def test_priorities_pick_critical_chain_first():
    # Two independent chains compete for one processor; the longer chain's head
    # must be dispatched first to minimise the makespan.
    architecture = Architecture([programmable("pe1")], [bus("bus1")])
    builder = CPGBuilder("priorities")
    builder.process("long1", 5.0)
    builder.process("long2", 5.0)
    builder.process("short", 2.0)
    builder.chain("long1", "long2")
    graph = builder.build()
    mapping = Mapping(architecture)
    for name in ("long1", "long2", "short"):
        mapping.assign(name, architecture["pe1"])
    scheduler = PathListScheduler(graph, mapping, architecture)
    path = single_path_of(graph)
    schedule = scheduler.schedule(path)
    assert schedule.start_of("long1") == 0.0
    priorities = critical_path_priorities(graph, path, mapping)
    assert priorities["long1"] > priorities["short"]


def test_speed_scaling_applies_to_durations():
    architecture = Architecture([programmable("fast", speed=2.0)], [bus("bus1")])
    builder = CPGBuilder("speed")
    builder.process("A", 10.0)
    graph = builder.build()
    mapping = Mapping(architecture, {"A": architecture["fast"]})
    schedule = PathListScheduler(graph, mapping, architecture).schedule(
        single_path_of(graph)
    )
    assert schedule.delay == pytest.approx(5.0)


def test_unmapped_process_raises():
    architecture = Architecture([programmable("pe1")], [bus("bus1")])
    builder = CPGBuilder("unmapped")
    builder.process("A", 1.0)
    graph = builder.build()
    scheduler = PathListScheduler(graph, Mapping(architecture), architecture)
    with pytest.raises(SchedulingError):
        scheduler.schedule(single_path_of(graph))


def build_conditional_system(num_buses=1):
    architecture = Architecture(
        [programmable("pe1"), programmable("pe2")],
        [bus(f"bus{i+1}") for i in range(num_buses)],
        condition_broadcast_time=1.0,
    )
    builder = CPGBuilder("conditional")
    builder.process("D", 4.0)     # disjunction process computing C on pe1
    builder.process("T", 3.0)     # guard C, on pe2
    builder.process("F", 2.0)     # guard !C, on pe1
    builder.process("J", 1.0)     # conjunction
    builder.edge("D", "T", condition=C.true(), communication_time=2.0)
    builder.edge("D", "F", condition=C.false())
    builder.edge("T", "J", communication_time=1.0)
    builder.edge("F", "J", communication_time=1.0)
    graph = builder.build()
    mapping = Mapping(architecture)
    mapping.assign("D", architecture["pe1"])
    mapping.assign("F", architecture["pe1"])
    mapping.assign("T", architecture["pe2"])
    mapping.assign("J", architecture["pe2"])
    expanded = expand_communications(graph, mapping, architecture)
    return architecture, expanded


class TestConditionBroadcasts:
    def test_broadcast_scheduled_after_disjunction_process(self):
        architecture, expanded = build_conditional_system()
        scheduler = PathListScheduler(expanded.graph, expanded.mapping, architecture)
        enumerator = PathEnumerator(expanded.graph)
        path = enumerator.path_for({C: True})
        schedule = scheduler.schedule(path)
        assert C in schedule.broadcasts
        broadcast = schedule.broadcasts[C]
        assert broadcast.start >= schedule.end_of("D")
        assert broadcast.duration == pytest.approx(1.0)
        assert broadcast.pe.is_bus

    def test_condition_known_earlier_on_origin_processor(self):
        architecture, expanded = build_conditional_system()
        scheduler = PathListScheduler(expanded.graph, expanded.mapping, architecture)
        path = PathEnumerator(expanded.graph).path_for({C: True})
        schedule = scheduler.schedule(path)
        pe1, pe2 = architecture["pe1"], architecture["pe2"]
        assert schedule.condition_known_time(C, pe1) == pytest.approx(
            schedule.end_of("D")
        )
        assert schedule.condition_known_time(C, pe2) >= schedule.end_of("D") + 1.0

    def test_guarded_process_waits_for_condition_knowledge(self):
        # T runs on pe2 and is guarded by C; it must not start before the value
        # of C has reached pe2 (requirement 4 of the paper).
        architecture, expanded = build_conditional_system()
        scheduler = PathListScheduler(expanded.graph, expanded.mapping, architecture)
        path = PathEnumerator(expanded.graph).path_for({C: True})
        schedule = scheduler.schedule(path)
        assert schedule.start_of("T") >= schedule.condition_known_time(
            C, architecture["pe2"]
        )

    def test_single_processor_system_needs_no_broadcast(self):
        architecture = Architecture(
            [programmable("pe1")], [bus("bus1")], condition_broadcast_time=1.0
        )
        builder = CPGBuilder("single")
        builder.process("D", 2.0)
        builder.process("T", 1.0)
        builder.process("F", 1.0)
        builder.edge("D", "T", condition=C.true())
        builder.edge("D", "F", condition=C.false())
        graph = builder.build()
        mapping = Mapping(architecture)
        for name in ("D", "T", "F"):
            mapping.assign(name, architecture["pe1"])
        schedule = PathListScheduler(graph, mapping, architecture).schedule(
            PathEnumerator(graph).path_for({C: True})
        )
        assert schedule.broadcasts[C].duration == 0.0


class TestLockingAndAdjustment:
    def test_locked_start_is_respected(self):
        architecture, expanded = build_conditional_system()
        scheduler = PathListScheduler(expanded.graph, expanded.mapping, architecture)
        path = PathEnumerator(expanded.graph).path_for({C: False})
        free = scheduler.schedule(path)
        locked_time = free.start_of("F") + 5.0
        locked = scheduler.schedule(path, locked_starts={"F": locked_time})
        assert locked.start_of("F") == pytest.approx(locked_time)

    def test_locked_reservation_pushes_other_processes(self):
        architecture = Architecture([programmable("pe1")], [bus("bus1")])
        builder = CPGBuilder("locked")
        builder.process("A", 3.0)
        builder.process("B", 3.0)
        graph = builder.build()
        mapping = Mapping(architecture, {"A": architecture["pe1"], "B": architecture["pe1"]})
        scheduler = PathListScheduler(graph, mapping, architecture)
        path = single_path_of(graph)
        schedule = scheduler.schedule(path, locked_starts={"A": 2.0})
        assert schedule.start_of("A") == pytest.approx(2.0)
        # B must not overlap the locked reservation of A.
        assert (
            schedule.start_of("B") >= 5.0 or schedule.end_of("B") <= 2.0
        )
        schedule.validate_resources()

    def test_order_hint_preserves_relative_order(self):
        architecture = Architecture([programmable("pe1")], [bus("bus1")])
        builder = CPGBuilder("hinted")
        builder.process("A", 3.0)
        builder.process("B", 3.0)
        graph = builder.build()
        mapping = Mapping(architecture, {"A": architecture["pe1"], "B": architecture["pe1"]})
        scheduler = PathListScheduler(graph, mapping, architecture)
        path = single_path_of(graph)
        forward = scheduler.schedule(path, order_hint={"A": 0.0, "B": 10.0})
        backward = scheduler.schedule(path, order_hint={"A": 10.0, "B": 0.0})
        assert forward.start_of("A") < forward.start_of("B")
        assert backward.start_of("B") < backward.start_of("A")

    def test_static_order_priorities_reverse_order_values(self):
        path = PathEnumerator(build_conditional_system()[1].graph).paths()[0]
        priorities = static_order_priorities(path, {"D": 0.0, "T": 5.0})
        assert priorities["D"] > priorities["T"]

    def test_schedule_all_covers_every_path(self):
        architecture, expanded = build_conditional_system()
        scheduler = PathListScheduler(expanded.graph, expanded.mapping, architecture)
        paths = PathEnumerator(expanded.graph).paths()
        schedules = scheduler.schedule_all(paths)
        assert set(schedules) == set(paths)
        for path, schedule in schedules.items():
            for name in path.active_processes:
                if not expanded.graph[name].is_dummy:
                    assert name in schedule.tasks


class TestResourceCorrectness:
    @pytest.mark.parametrize("num_buses", [1, 2])
    def test_no_overlap_on_sequential_resources(self, num_buses):
        architecture, expanded = build_conditional_system(num_buses)
        scheduler = PathListScheduler(expanded.graph, expanded.mapping, architecture)
        for path in PathEnumerator(expanded.graph).paths():
            schedule = scheduler.schedule(path)
            schedule.validate_resources()

    def test_every_dependency_respected_on_fig1(self, fig1):
        scheduler = PathListScheduler(fig1.graph, fig1.expanded_mapping, fig1.architecture)
        enumerator = PathEnumerator(fig1.graph)
        for path in enumerator.paths():
            schedule = scheduler.schedule(path)
            schedule.validate_resources()
            for name in path.active_processes:
                if fig1.graph[name].is_dummy:
                    continue
                for pred in fig1.graph.active_predecessors(name, path.assignment):
                    if fig1.graph[pred].is_dummy:
                        continue
                    assert schedule.start_of(name) >= schedule.end_of(pred) - 1e-9


class TestBroadcastDispatchOrder:
    """The heap-backed pending-broadcast queue must preserve dispatch order.

    Broadcasts are dispatched in ascending (determination time, condition)
    order — the order the former sort-then-pop(0) implementation produced —
    so conditions determined earlier grab the bus first.
    """

    def build_multi_condition_system(self):
        architecture = Architecture(
            [programmable("pe1"), programmable("pe2")],
            [bus("bus1")],
            condition_broadcast_time=2.0,
        )
        builder = CPGBuilder("multi-cond")
        K1, K2, K3 = Condition("K1"), Condition("K2"), Condition("K3")
        builder.process("S", 1.0)
        # Three disjunction processes finishing at staggered times on pe1/pe2.
        builder.process("D1", 2.0)
        builder.process("D2", 3.0)
        builder.process("D3", 5.0)
        for name, cond in (("D1", K1), ("D2", K2), ("D3", K3)):
            builder.process(f"{name}t", 1.0)
            builder.process(f"{name}f", 1.0)
            builder.edge("S", name)
            builder.edge(name, f"{name}t", condition=cond.true())
            builder.edge(name, f"{name}f", condition=cond.false())
        builder.process("T", 1.0, is_conjunction=True)
        for name in ("D1", "D2", "D3"):
            builder.edge(f"{name}t", "T")
            builder.edge(f"{name}f", "T")
        graph = builder.build()
        mapping = Mapping(architecture)
        pe1, pe2 = architecture["pe1"], architecture["pe2"]
        for process in graph.ordinary_processes:
            mapping.assign(process.name, pe1 if process.name != "D2" else pe2)
        expanded = expand_communications(graph, mapping, architecture)
        return architecture, expanded, (K1, K2, K3)

    def test_broadcasts_dispatched_in_determination_order(self):
        architecture, expanded, conditions = self.build_multi_condition_system()
        scheduler = PathListScheduler(expanded.graph, expanded.mapping, architecture)
        for path in PathEnumerator(expanded.graph).paths():
            schedule = scheduler.schedule(path)
            determined = sorted(
                schedule.determination_times.items(), key=lambda kv: (kv[1], kv[0])
            )
            starts = [schedule.broadcasts[cond].start for cond, _ in determined]
            # Earlier-determined conditions are granted the bus first: the
            # broadcast start times are non-decreasing in dispatch order.
            assert starts == sorted(starts)
            # And on a single-bus system the broadcasts never overlap.
            ordered = sorted(
                (schedule.broadcasts[cond] for cond in schedule.broadcasts),
                key=lambda task: task.start,
            )
            for first, second in zip(ordered, ordered[1:]):
                assert second.start >= first.end - 1e-9
