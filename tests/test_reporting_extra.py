"""Additional tests for report formatting helpers and execution-trace access."""

import pytest

from repro.analysis.reporting import (
    as_dict,
    format_pareto_front,
    format_series,
    format_table,
)
from repro.simulation.runtime import ExecutedActivity
from repro.architecture import programmable


def test_as_dict_indexes_rows_by_key_column():
    rows = [["1P/1M", 4471, 1732], ["2P/1M", 2932, 1732]]
    indexed = as_dict(rows)
    assert indexed["1P/1M"][1] == 4471
    assert set(indexed) == {"1P/1M", "2P/1M"}


def test_as_dict_with_other_key_index():
    rows = [["a", "x"], ["b", "y"]]
    assert as_dict(rows, key_index=1)["y"][0] == "b"


def test_format_table_mixes_text_and_numbers():
    text = format_table("t", ["name", "value"], [["row", 1.5], ["other", "n/a"]])
    assert "1.5" in text and "n/a" in text


def test_format_series_custom_value_format():
    text = format_series("s", "x", {"a": {1: 0.123456}}, value_format="{:.4f}")
    assert "0.1235" in text


def test_format_series_empty_series():
    text = format_series("empty", "x", {})
    assert "empty" in text


def test_format_pareto_front_renders_platform_and_objectives():
    from repro.exploration import ParetoFront
    from repro.exploration.candidate import Candidate
    from repro.exploration.cost import CandidateEvaluation

    front = ParetoFront()
    sized = Candidate(
        assignment=(("P1", "pe1"),),
        platform=(("bus1", "bus"), ("pe1", "programmable")),
    )
    front.offer(sized, CandidateEvaluation(
        fingerprint=sized.fingerprint, cost=10.0, feasible=True,
        delta_max=10.0, delta_m=10.0, mean_path_delay=9.5,
        load_imbalance=0.25, architecture_cost=1.5,
    ))
    unsized = Candidate(assignment=(("P1", "pe2"),))
    front.offer(unsized, CandidateEvaluation(
        fingerprint=unsized.fingerprint, cost=8.0, feasible=True,
        delta_max=8.0, delta_m=8.0, mean_path_delay=11.0,
        load_imbalance=0.5, architecture_cost=2.0,
    ))
    text = format_pareto_front("front", front)
    assert "1 PE + 1 bus" in text  # the sized platform summary
    assert "-" in text             # the unsized placeholder
    assert "10" in text and "9.50" in text and "0.250" in text and "1.5" in text


def test_executed_activity_flags():
    pe = programmable("pe1")
    plain = ExecutedActivity("P1", 0.0, 2.0, pe)
    assert not plain.is_broadcast
    assert plain.end == 2.0


def test_executed_activity_ordering_fields():
    pe = programmable("pe1")
    first = ExecutedActivity("A", 0.0, 1.0, pe)
    second = ExecutedActivity("B", 1.0, 2.0, pe)
    assert first.start < second.start
    with pytest.raises(AttributeError):
        first.start = 5.0  # frozen dataclass
