"""Additional tests for report formatting helpers and execution-trace access."""

import pytest

from repro.analysis.reporting import as_dict, format_series, format_table
from repro.simulation.runtime import ExecutedActivity
from repro.architecture import programmable


def test_as_dict_indexes_rows_by_key_column():
    rows = [["1P/1M", 4471, 1732], ["2P/1M", 2932, 1732]]
    indexed = as_dict(rows)
    assert indexed["1P/1M"][1] == 4471
    assert set(indexed) == {"1P/1M", "2P/1M"}


def test_as_dict_with_other_key_index():
    rows = [["a", "x"], ["b", "y"]]
    assert as_dict(rows, key_index=1)["y"][0] == "b"


def test_format_table_mixes_text_and_numbers():
    text = format_table("t", ["name", "value"], [["row", 1.5], ["other", "n/a"]])
    assert "1.5" in text and "n/a" in text


def test_format_series_custom_value_format():
    text = format_series("s", "x", {"a": {1: 0.123456}}, value_format="{:.4f}")
    assert "0.1235" in text


def test_format_series_empty_series():
    text = format_series("empty", "x", {})
    assert "empty" in text


def test_executed_activity_flags():
    pe = programmable("pe1")
    plain = ExecutedActivity("P1", 0.0, 2.0, pe)
    assert not plain.is_broadcast
    assert plain.end == 2.0


def test_executed_activity_ordering_fields():
    pe = programmable("pe1")
    first = ExecutedActivity("A", 0.0, 1.0, pe)
    second = ExecutedActivity("B", 1.0, 2.0, pe)
    assert first.start < second.start
    with pytest.raises(AttributeError):
        first.start = 5.0  # frozen dataclass
