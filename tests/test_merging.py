"""Tests for the schedule-merging algorithm (the paper's core contribution)."""

import pytest

from repro.architecture import Architecture, Mapping, bus, hardware, programmable
from repro.conditions import Condition, Conjunction
from repro.graph import CPGBuilder, PathEnumerator, expand_communications
from repro.scheduling import ScheduleMerger, merge_schedules
from repro.simulation import validate_merge_result

C = Condition("C")
D = Condition("D")


def merge_system(expanded, architecture):
    merger = ScheduleMerger(expanded.graph, expanded.mapping, architecture)
    return merger.merge()


class TestUnconditionalGraph:
    def test_single_path_graph_produces_single_column(self, two_processor_architecture):
        builder = CPGBuilder("plain")
        builder.process("A", 2.0)
        builder.process("B", 3.0)
        builder.chain("A", "B")
        graph = builder.build()
        mapping = Mapping(two_processor_architecture)
        mapping.assign("A", two_processor_architecture["pe1"])
        mapping.assign("B", two_processor_architecture["pe1"])
        result = ScheduleMerger(graph, mapping, two_processor_architecture).merge()
        assert result.table.columns() == (Conjunction.true(),)
        assert result.delta_m == result.delta_max == pytest.approx(5.0)
        validate_merge_result(graph, mapping, result, two_processor_architecture)


class TestSmallConditionalSystem:
    def test_merge_produces_valid_table(self, small_system):
        result = merge_system(small_system["expanded"], small_system["architecture"])
        report = validate_merge_result(
            small_system["expanded"].graph,
            small_system["expanded"].mapping,
            result,
            small_system["architecture"],
        )
        assert report.paths_checked == 2
        assert result.delta_max >= result.delta_m - 1e-9

    def test_conditional_processes_have_conditional_columns(self, small_system):
        result = merge_system(small_system["expanded"], small_system["architecture"])
        entries = result.table.process_entries("P2")
        assert entries, "P2 (guard C) must appear in the table"
        for entry in entries:
            assert entry.column.value_of(C) is True

    def test_unconditional_process_fixed_before_condition_is_known(self, small_system):
        result = merge_system(small_system["expanded"], small_system["architecture"])
        entries = result.table.process_entries("P1")
        assert len(entries) == 1
        assert entries[0].column.is_true()
        assert entries[0].start == 0.0

    def test_longest_path_keeps_its_optimal_schedule(self, small_system):
        result = merge_system(small_system["expanded"], small_system["architecture"])
        longest = max(result.path_schedules.values(), key=lambda s: s.delay)
        table_delay = result.table.delay_of_path(
            small_system["expanded"].graph,
            small_system["expanded"].mapping,
            longest.path,
        )
        assert table_delay == pytest.approx(longest.delay)

    def test_trace_records_decision_tree(self, small_system):
        result = merge_system(small_system["expanded"], small_system["architecture"])
        trace = result.trace
        assert trace.root is not None
        assert len(trace.path_delays) == 2
        assert trace.back_steps == 1
        leaves = trace.leaves()
        assert len(leaves) == 2
        assert any(node.entered_by_back_step for node in trace.nodes())
        assert "following" in trace.render()

    def test_condition_row_is_filled(self, small_system):
        result = merge_system(small_system["expanded"], small_system["architecture"])
        assert result.table.condition_entries(C)


class TestMergeResultMetrics:
    def test_delay_increase_properties(self, small_system):
        result = merge_system(small_system["expanded"], small_system["architecture"])
        assert result.delay_increase == pytest.approx(
            result.delta_max - result.delta_m
        )
        assert result.delay_increase_percent >= 0.0

    def test_merge_schedules_convenience_wrapper(self, small_system):
        result = merge_schedules(
            small_system["expanded"].graph,
            small_system["expanded"].mapping,
            small_system["architecture"],
        )
        assert result.delta_max > 0

    def test_empty_graph_rejected(self, two_processor_architecture):
        builder = CPGBuilder("empty")
        builder.process("A", 1.0)
        graph = builder.build()
        mapping = Mapping(two_processor_architecture, {"A": two_processor_architecture["pe1"]})
        merger = ScheduleMerger(graph, mapping, two_processor_architecture)
        with pytest.raises(ValueError):
            merger.merge(paths=[])


class TestNestedConditions:
    def build_nested(self):
        architecture = Architecture(
            [programmable("pe1"), programmable("pe2"), hardware("hw1")],
            [bus("bus1")],
            condition_broadcast_time=1.0,
        )
        builder = CPGBuilder("nested")
        builder.process("P1", 3.0)   # computes C
        builder.process("P2", 4.0)   # guard C, computes D
        builder.process("P3", 6.0)   # guard !C
        builder.process("P4", 5.0)   # guard C & D
        builder.process("P5", 2.0)   # guard C & !D
        builder.process("P6", 1.0)   # conjunction
        builder.edge("P1", "P2", condition=C.true(), communication_time=1.0)
        builder.edge("P1", "P3", condition=C.false())
        builder.edge("P2", "P4", condition=D.true(), communication_time=1.0)
        builder.edge("P2", "P5", condition=D.false())
        builder.edge("P4", "P6", communication_time=1.0)
        builder.edge("P5", "P6", communication_time=1.0)
        builder.edge("P3", "P6", communication_time=1.0)
        graph = builder.build()
        mapping = Mapping(architecture)
        mapping.assign("P1", architecture["pe1"])
        mapping.assign("P3", architecture["pe1"])
        mapping.assign("P5", architecture["pe1"])
        mapping.assign("P2", architecture["pe2"])
        mapping.assign("P4", architecture["hw1"])
        mapping.assign("P6", architecture["pe2"])
        expanded = expand_communications(graph, mapping, architecture)
        return architecture, expanded

    def test_three_paths_all_covered(self):
        architecture, expanded = self.build_nested()
        result = merge_system(expanded, architecture)
        assert len(result.paths) == 3
        report = validate_merge_result(
            expanded.graph, expanded.mapping, result, architecture
        )
        assert report.paths_checked == 3

    def test_worst_case_is_at_least_every_path_delay(self):
        architecture, expanded = self.build_nested()
        result = merge_system(expanded, architecture)
        for path in result.paths:
            delay = result.table.delay_of_path(expanded.graph, expanded.mapping, path)
            assert delay <= result.delta_max + 1e-9

    def test_decision_tree_has_one_node_per_branching(self):
        architecture, expanded = self.build_nested()
        result = merge_system(expanded, architecture)
        branching_nodes = [n for n in result.trace.nodes() if not n.is_leaf]
        # Conditions C and (on the C-true side) D are each decided once.
        assert len(branching_nodes) == 2

    def test_requirements_hold(self):
        architecture, expanded = self.build_nested()
        result = merge_system(expanded, architecture)
        result.table.check_requirements(expanded.graph, result.paths)


class TestFig1Merge:
    def test_delta_m_matches_longest_individual_path(self, fig1, fig1_merge_result):
        delays = [s.delay for s in fig1_merge_result.path_schedules.values()]
        assert fig1_merge_result.delta_m == pytest.approx(max(delays))

    def test_delta_max_not_smaller_than_delta_m(self, fig1_merge_result):
        assert fig1_merge_result.delta_max >= fig1_merge_result.delta_m - 1e-9

    def test_table_is_valid(self, fig1, fig1_merge_result):
        report = validate_merge_result(
            fig1.graph, fig1.expanded_mapping, fig1_merge_result, fig1.architecture
        )
        assert report.paths_checked == 6

    def test_unconditionally_started_processes(self, fig1, fig1_merge_result):
        # P1 and P2 start before any condition is determined (as in Table 1 of
        # the paper), so their single entry sits in the "true" column.
        for name in ("P1", "P2"):
            entries = fig1_merge_result.table.process_entries(name)
            assert len(entries) == 1
            assert entries[0].column.is_true()

    def test_guard_true_processes_get_one_time_per_path(self, fig1, fig1_merge_result):
        # P11's guard is true; whatever columns its activation times ended up
        # in, every path must see exactly one applicable time (requirements 2/3).
        enumerator = PathEnumerator(fig1.graph)
        for path in enumerator.paths():
            time = fig1_merge_result.table.activation_time("P11", path.assignment)
            assert time is not None

    def test_condition_rows_cover_all_three_conditions(self, fig1_merge_result):
        assert {c.name for c in fig1_merge_result.table.conditions} == {"C", "D", "K"}

    def test_conditional_process_p14_requires_d_and_k(self, fig1, fig1_merge_result):
        for entry in fig1_merge_result.table.process_entries("P14"):
            assert entry.column.value_of(Condition("D")) is True
            assert entry.column.value_of(Condition("K")) is True

    def test_six_leaves_in_decision_tree(self, fig1_merge_result):
        assert len(fig1_merge_result.trace.leaves()) == 6
