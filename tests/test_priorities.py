"""Unit tests for the list-scheduling priority functions."""

import pytest

from repro.architecture import Architecture, Mapping, bus, hardware, programmable
from repro.conditions import Condition
from repro.graph import CPGBuilder, PathEnumerator
from repro.scheduling.priorities import (
    PRIORITY_FUNCTIONS,
    critical_path_priorities,
    priority_function,
    static_order_priorities,
    topological_order_priorities,
    upward_rank_priorities,
)

C = Condition("C")


@pytest.fixture()
def diamond_system():
    architecture = Architecture(
        [programmable("pe1"), programmable("pe2"), hardware("hw1")], [bus("bus1")]
    )
    builder = CPGBuilder("diamond")
    builder.process("A", 2.0)
    builder.process("B", 5.0)
    builder.process("Cn", 1.0)
    builder.process("E", 3.0)
    builder.edge("A", "B")
    builder.edge("A", "Cn")
    builder.edge("B", "E")
    builder.edge("Cn", "E")
    graph = builder.build()
    mapping = Mapping(architecture)
    for name in ("A", "B", "Cn", "E"):
        mapping.assign(name, architecture["pe1"])
    return graph, mapping


def test_critical_path_lengths(diamond_system):
    graph, mapping = diamond_system
    path = PathEnumerator(graph).paths()[0]
    priorities = critical_path_priorities(graph, path, mapping)
    assert priorities["E"] == pytest.approx(3.0)
    assert priorities["B"] == pytest.approx(8.0)
    assert priorities["Cn"] == pytest.approx(4.0)
    assert priorities["A"] == pytest.approx(10.0)
    assert priorities[graph.source.name] == pytest.approx(10.0)


def test_priorities_respect_mapping_speed(diamond_system):
    graph, mapping = diamond_system
    fast_arch = Architecture([programmable("pe1", speed=2.0)], [bus("bus1")])
    fast_mapping = Mapping(fast_arch)
    for name in ("A", "B", "Cn", "E"):
        fast_mapping.assign(name, fast_arch["pe1"])
    path = PathEnumerator(graph).paths()[0]
    slow = critical_path_priorities(graph, path, mapping)
    fast = critical_path_priorities(graph, path, fast_mapping)
    assert fast["A"] == pytest.approx(slow["A"] / 2.0)


def test_priorities_only_cover_active_processes():
    builder = CPGBuilder("conditional")
    builder.process("D", 1.0)
    builder.process("T", 2.0)
    builder.process("F", 3.0)
    builder.edge("D", "T", condition=C.true())
    builder.edge("D", "F", condition=C.false())
    graph = builder.build()
    architecture = Architecture([programmable("pe1")], [bus("bus1")])
    mapping = Mapping(architecture)
    for name in ("D", "T", "F"):
        mapping.assign(name, architecture["pe1"])
    path = PathEnumerator(graph).path_for({C: True})
    priorities = critical_path_priorities(graph, path, mapping)
    assert "F" not in priorities
    assert priorities["D"] == pytest.approx(3.0)


def test_upward_rank_matches_critical_path(diamond_system):
    graph, mapping = diamond_system
    path = PathEnumerator(graph).paths()[0]
    assert upward_rank_priorities(graph, path, mapping) == critical_path_priorities(
        graph, path, mapping
    )


def test_static_order_priorities_without_order(diamond_system):
    graph, _ = diamond_system
    path = PathEnumerator(graph).paths()[0]
    priorities = static_order_priorities(path)
    assert set(priorities) == set(path.active_processes)
    assert len(set(priorities.values())) == 1


def test_static_order_priorities_orders_by_given_times(diamond_system):
    graph, _ = diamond_system
    path = PathEnumerator(graph).paths()[0]
    priorities = static_order_priorities(path, {"A": 0.0, "B": 2.0, "Cn": 7.0, "E": 8.0})
    assert priorities["A"] > priorities["B"] > priorities["Cn"] > priorities["E"]


def test_topological_order_priorities_follow_graph_position(diamond_system):
    graph, mapping = diamond_system
    path = PathEnumerator(graph).paths()[0]
    priorities = topological_order_priorities(graph, path, mapping)
    assert set(priorities) == set(path.active_processes)
    assert priorities["A"] > priorities["B"]
    assert priorities["A"] > priorities["Cn"]
    assert priorities["B"] > priorities["E"]


def test_priority_function_registry(diamond_system):
    assert set(PRIORITY_FUNCTIONS) == {
        "critical_path",
        "upward_rank",
        "static_order",
    }
    assert priority_function("critical_path") is critical_path_priorities
    with pytest.raises(ValueError, match="unknown priority function"):
        priority_function("no_such_priority")


def test_scheduler_accepts_injected_priorities(diamond_system):
    from repro.scheduling import PathListScheduler

    graph, mapping = diamond_system
    path = PathEnumerator(graph).paths()[0]
    default = PathListScheduler(graph, mapping).schedule(path)
    injected = PathListScheduler(
        graph, mapping, priority_function=topological_order_priorities
    ).schedule(path)
    # Both orders are feasible for the diamond; delays agree on one processor.
    assert injected.delay == pytest.approx(default.delay)
    # A large bias on the short branch forces Cn to dispatch before B.
    biased = PathListScheduler(
        graph, mapping, priority_bias={"Cn": 100.0}
    ).schedule(path)
    assert biased.start_of("Cn") < biased.start_of("B")
    assert default.start_of("B") < default.start_of("Cn")
