"""Tests for communication-process expansion."""

import pytest

from repro.architecture import Architecture, Mapping, MappingError, bus, programmable
from repro.conditions import Condition
from repro.graph import CPGBuilder, expand_communications, is_expanded

C = Condition("C")


def build_two_pe_system(num_buses=1, connectivity=None):
    architecture = Architecture(
        [programmable("pe1"), programmable("pe2")],
        [bus(f"bus{i+1}") for i in range(num_buses)],
        connectivity=connectivity,
    )
    builder = CPGBuilder("comm")
    builder.process("P1", 2.0)
    builder.process("P2", 3.0)
    builder.process("P3", 4.0)
    builder.edge("P1", "P2", communication_time=1.5)
    builder.edge("P2", "P3", condition=C.true(), communication_time=2.5)
    graph = builder.build(validate=False)
    mapping = Mapping(architecture)
    mapping.assign("P1", architecture["pe1"])
    mapping.assign("P2", architecture["pe2"])
    mapping.assign("P3", architecture["pe1"])
    return architecture, graph, mapping


class TestExpansion:
    def test_cross_processor_edges_get_communication_processes(self):
        architecture, graph, mapping = build_two_pe_system()
        expanded = expand_communications(graph, mapping, architecture)
        assert len(expanded.communications) == 2
        assert expanded.communication_between("P1", "P2") is not None
        assert expanded.communication_between("P2", "P3") is not None
        assert is_expanded(expanded.graph, expanded.mapping)

    def test_same_processor_edges_untouched(self):
        architecture, graph, mapping = build_two_pe_system()
        mapping.assign("P2", architecture["pe1"])  # everything on pe1 now
        mapping.assign("P3", architecture["pe1"])
        expanded = expand_communications(graph, mapping, architecture)
        assert len(expanded.communications) == 0
        assert expanded.graph.has_edge("P1", "P2")

    def test_communication_process_carries_time_and_bus(self):
        architecture, graph, mapping = build_two_pe_system()
        expanded = expand_communications(graph, mapping, architecture)
        info = expanded.communication_between("P1", "P2")
        assert info.communication_time == 1.5
        assert info.bus.is_bus
        comm_process = expanded.graph[info.name]
        assert comm_process.is_communication
        assert comm_process.execution_time == 1.5
        assert expanded.mapping[info.name] == info.bus

    def test_condition_moves_to_edge_into_communication(self):
        architecture, graph, mapping = build_two_pe_system()
        expanded = expand_communications(graph, mapping, architecture)
        info = expanded.communication_between("P2", "P3")
        into = expanded.graph.get_edge("P2", info.name)
        out_of = expanded.graph.get_edge(info.name, "P3")
        assert into.condition == C.true()
        assert out_of.is_simple

    def test_expanded_graph_preserves_guards(self):
        architecture, graph, mapping = build_two_pe_system()
        expanded = expand_communications(graph, mapping, architecture)
        info = expanded.communication_between("P2", "P3")
        guards = expanded.graph.guards()
        assert str(guards[info.name]) == "C"
        assert str(guards["P3"]) == "C"

    def test_explicit_bus_assignment_is_respected(self):
        architecture, graph, mapping = build_two_pe_system(num_buses=2)
        chosen = architecture["bus2"]
        expanded = expand_communications(
            graph,
            mapping,
            architecture,
            bus_assignment={("P1", "P2"): chosen},
        )
        assert expanded.communication_between("P1", "P2").bus == chosen
        assert expanded.communication_between("P2", "P3").bus == architecture["bus1"]

    def test_unmapped_process_rejected(self):
        architecture, graph, mapping = build_two_pe_system()
        incomplete = Mapping(architecture, {"P1": architecture["pe1"]})
        with pytest.raises(MappingError):
            expand_communications(graph, incomplete, architecture)

    def test_no_connecting_bus_rejected(self):
        architecture, graph, mapping = build_two_pe_system(
            num_buses=1, connectivity={"bus1": ["pe1"]}
        )
        with pytest.raises(MappingError):
            expand_communications(graph, mapping, architecture)

    def test_is_expanded_detects_missing_communication(self):
        architecture, graph, mapping = build_two_pe_system()
        assert not is_expanded(graph, mapping)

    def test_custom_name_format(self):
        architecture, graph, mapping = build_two_pe_system()
        expanded = expand_communications(
            graph, mapping, architecture, name_format="comm_{src}_{dst}"
        )
        assert "comm_P1_P2" in expanded.graph

    def test_fig1_expansion_matches_paper(self, fig1):
        # The paper inserts exactly fourteen communication processes (P18..P31).
        assert len(fig1.expanded.communications) == 14
        comm_times = sorted(
            info.communication_time for info in fig1.expanded.communications.values()
        )
        assert comm_times == sorted(
            [1, 3, 2, 2, 3, 3, 2, 2, 1, 2, 1, 3, 2, 2]
        )
