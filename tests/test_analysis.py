"""Tests for metrics, Gantt rendering, table formatting and reporting."""

import pytest

from repro.analysis import (
    aggregate,
    busy_fraction,
    delay_increase,
    format_comparison,
    format_condition_rows,
    format_schedule_table,
    format_series,
    format_table,
    group_by,
    render_gantt,
    render_schedule_listing,
    schedule_table_summary,
    speedup,
)
from repro.scheduling import ScheduleMerger


@pytest.fixture()
def small_result(small_system):
    return ScheduleMerger(
        small_system["expanded"].graph,
        small_system["expanded"].mapping,
        small_system["architecture"],
    ).merge()


class TestMetrics:
    def test_delay_increase_values(self, small_result):
        increase = delay_increase(small_result)
        assert increase.delta_m == small_result.delta_m
        assert increase.absolute == pytest.approx(
            small_result.delta_max - small_result.delta_m
        )
        assert increase.percent >= 0.0

    def test_zero_increase_detection(self, small_result):
        increase = delay_increase(small_result)
        assert increase.is_zero == (increase.absolute < 1e-9)

    def test_aggregate_over_results(self, small_result):
        stats = aggregate([small_result, small_result])
        assert stats.count == 2
        assert stats.average_delta_m == pytest.approx(small_result.delta_m)
        assert 0.0 <= stats.zero_increase_fraction <= 1.0
        assert len(stats.increases) == 2

    def test_aggregate_empty(self):
        stats = aggregate([])
        assert stats.count == 0
        assert stats.average_increase_percent == 0.0

    def test_group_by(self, small_result):
        groups = group_by([(10, small_result), (10, small_result), (20, small_result)])
        assert groups[10].count == 2
        assert groups[20].count == 1

    def test_speedup(self):
        assert speedup(10.0, 5.0) == pytest.approx(2.0)
        assert speedup(10.0, 0.0) == float("inf")


class TestGantt:
    def test_render_gantt_has_one_lane_per_element(self, small_system, small_result):
        schedule = max(small_result.path_schedules.values(), key=lambda s: s.delay)
        chart = render_gantt(schedule, small_system["architecture"], title="demo")
        assert "demo" in chart
        for pe in small_system["architecture"].processing_elements:
            assert pe.name in chart

    def test_render_schedule_listing_mentions_processes(self, small_result):
        schedule = next(iter(small_result.path_schedules.values()))
        listing = render_schedule_listing(schedule)
        assert "P1" in listing
        assert "broadcast" in listing or "process" in listing

    def test_busy_fraction_between_zero_and_one(self, small_system, small_result):
        schedule = next(iter(small_result.path_schedules.values()))
        fractions = busy_fraction(schedule, small_system["architecture"])
        assert fractions
        assert all(0.0 <= value <= 1.0 + 1e-9 for value in fractions.values())


class TestTableFormat:
    def test_format_schedule_table_contains_rows_and_columns(self, small_result):
        text = format_schedule_table(small_result.table)
        assert "process" in text
        assert "P1" in text
        assert "true" in text

    def test_format_schedule_table_row_selection(self, small_result):
        text = format_schedule_table(small_result.table, process_order=["P1"])
        assert "P1" in text and "P3" not in text.split("\n")[2]

    def test_format_schedule_table_column_truncation(self, small_result):
        text = format_schedule_table(small_result.table, max_columns=1)
        assert text

    def test_condition_rows(self, small_result):
        text = format_condition_rows(small_result.table)
        assert "C" in text and "t=" in text

    def test_summary_counts(self, small_result):
        summary = schedule_table_summary(small_result.table)
        assert summary["rows"] >= 1
        assert summary["columns"] >= 1
        assert summary["entries"] >= summary["rows"]


class TestReporting:
    def test_format_series_aligns_values(self):
        text = format_series(
            "Fig. 5",
            "paths",
            {"60 nodes": {10: 1.0, 12: 2.0}, "80 nodes": {10: 1.5}},
        )
        assert "Fig. 5" in text and "paths" in text
        assert "60 nodes" in text and "80 nodes" in text
        assert "-" in text  # missing value placeholder

    def test_format_table(self):
        text = format_table("Table 2", ["arch", "mode1"], [["1P/1M", 4471]])
        assert "Table 2" in text and "1P/1M" in text and "4471" in text

    def test_format_comparison_includes_both_columns(self):
        text = format_comparison("cmp", {"a": 1.0}, {"a": 2.0, "b": 3.0})
        assert "paper" in text and "measured" in text and "b" in text
