"""Tests for the baselines: ideal per-path delay, bounds, condition-blind schedule."""

import pytest

from repro.baselines import (
    critical_path_length,
    critical_path_lower_bound,
    ideal_per_path_delay,
    per_path_schedules,
    schedule_unconditionally,
    strip_conditions,
)
from repro.graph import PathEnumerator
from repro.scheduling import ScheduleMerger


class TestBounds:
    def test_critical_path_on_small_system(self, small_system):
        graph = small_system["expanded"].graph
        mapping = small_system["expanded"].mapping
        paths = PathEnumerator(graph).paths()
        for path in paths:
            length = critical_path_length(graph, mapping, path)
            assert length > 0

    def test_lower_bound_is_not_above_delta_m(self, small_system):
        graph = small_system["expanded"].graph
        mapping = small_system["expanded"].mapping
        bound = critical_path_lower_bound(graph, mapping)
        ideal = ideal_per_path_delay(graph, mapping)
        assert bound <= ideal + 1e-9

    def test_ideal_delay_matches_merger_delta_m(self, small_system):
        graph = small_system["expanded"].graph
        mapping = small_system["expanded"].mapping
        result = ScheduleMerger(graph, mapping, small_system["architecture"]).merge()
        assert ideal_per_path_delay(graph, mapping) == pytest.approx(result.delta_m)

    def test_per_path_schedules_keyed_by_label(self, small_system):
        graph = small_system["expanded"].graph
        mapping = small_system["expanded"].mapping
        schedules = per_path_schedules(graph, mapping)
        assert set(schedules) == {"C", "!C"}
        assert all(s.delay > 0 for s in schedules.values())

    def test_fig1_bounds_bracket_delta_max(self, fig1, fig1_merge_result):
        lower = critical_path_lower_bound(fig1.graph, fig1.expanded_mapping)
        assert lower <= fig1_merge_result.delta_max + 1e-9


class TestUnconditionalBaseline:
    def test_strip_conditions_removes_conditional_edges(self, small_system):
        flattened = strip_conditions(small_system["expanded"].graph)
        assert not flattened.conditional_edges
        assert len(flattened.processes) == len(small_system["expanded"].graph.processes)

    def test_unconditional_schedule_covers_every_process(self, small_system):
        baseline = schedule_unconditionally(
            small_system["expanded"].graph,
            small_system["expanded"].mapping,
            small_system["architecture"],
        )
        executed = set(baseline.schedule.tasks)
        for process in small_system["expanded"].graph.processes:
            if not process.is_dummy:
                assert process.name in executed

    def test_unconditional_delay_at_least_delta_m(self, small_system):
        # Executing both branches can never be faster than the slowest branch.
        graph = small_system["expanded"].graph
        mapping = small_system["expanded"].mapping
        baseline = schedule_unconditionally(graph, mapping, small_system["architecture"])
        assert baseline.delay >= ideal_per_path_delay(graph, mapping) - 1e-9

    def test_unconditional_delay_at_least_delta_max_on_fig1(self, fig1, fig1_merge_result):
        baseline = schedule_unconditionally(
            fig1.graph, fig1.expanded_mapping, fig1.architecture
        )
        assert baseline.delay >= fig1_merge_result.delta_max - 1e-9

    def test_baseline_respects_resources(self, fig1):
        baseline = schedule_unconditionally(
            fig1.graph, fig1.expanded_mapping, fig1.architecture
        )
        baseline.schedule.validate_resources()
