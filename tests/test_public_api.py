"""Tests of the top-level public API surface."""

import repro


def test_version_string():
    assert repro.__version__ == "1.0.0"


def test_all_symbols_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"


def test_core_types_exported():
    for name in (
        "ConditionalProcessGraph",
        "CPGBuilder",
        "Condition",
        "Conjunction",
        "Architecture",
        "Mapping",
        "PathListScheduler",
        "ScheduleMerger",
        "ScheduleTable",
        "RuntimeSimulator",
        "load_fig1_example",
    ):
        assert name in repro.__all__


def test_subpackages_importable():
    import repro.analysis
    import repro.atm
    import repro.baselines
    import repro.generator

    assert hasattr(repro.generator, "generate_system")
    assert hasattr(repro.atm, "evaluate_table2")
    assert hasattr(repro.baselines, "ideal_per_path_delay")
    assert hasattr(repro.analysis, "format_schedule_table")


def test_docstring_mentions_the_paper():
    assert "Conditional Process Graphs" in (repro.__doc__ or "")


def test_quickstart_snippet_from_module_docstring_runs():
    example = repro.load_fig1_example()
    result = repro.ScheduleMerger(example.graph, example.expanded_mapping).merge()
    assert result.delta_m > 0 and result.delta_max >= result.delta_m - 1e-9
