"""Unit tests for process nodes and edges."""

import pytest

from repro.architecture import hardware, programmable
from repro.conditions import Condition
from repro.graph import (
    Edge,
    ProcessKind,
    communication_process,
    ordinary_process,
    sink_process,
    source_process,
)

C = Condition("C")


class TestProcess:
    def test_kinds_and_predicates(self):
        assert source_process().is_source and source_process().is_dummy
        assert sink_process().is_sink and sink_process().is_dummy
        assert ordinary_process("P1", 2.0).is_ordinary
        assert communication_process("c", 1.0).is_communication

    def test_source_and_sink_have_zero_time(self):
        assert source_process().execution_time == 0.0
        with pytest.raises(ValueError):
            from repro.graph.process import Process

            Process("bad", 1.0, ProcessKind.SOURCE)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ordinary_process("P1", -1.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ordinary_process("", 1.0)

    def test_duration_scales_with_speed(self):
        process = ordinary_process("P1", 10.0)
        assert process.duration_on(programmable("slow", speed=1.0)) == 10.0
        assert process.duration_on(programmable("fast", speed=2.0)) == 5.0

    def test_duration_override_per_pe_is_not_scaled(self):
        process = ordinary_process("P1", 10.0, execution_times={"fast": 7.0})
        assert process.duration_on(programmable("fast", speed=2.0)) == 7.0
        assert process.duration_on(programmable("other", speed=2.0)) == 5.0

    def test_duration_without_pe_is_nominal(self):
        assert ordinary_process("P1", 10.0).duration_on(None) == 10.0

    def test_dummy_duration_is_zero_everywhere(self):
        assert source_process().duration_on(hardware("hw")) == 0.0

    def test_negative_override_rejected(self):
        with pytest.raises(ValueError):
            ordinary_process("P1", 1.0, execution_times={"pe1": -2.0})

    def test_conjunction_flag(self):
        assert ordinary_process("P1", 1.0, is_conjunction=True).is_conjunction
        assert not ordinary_process("P1", 1.0).is_conjunction

    def test_str(self):
        assert str(ordinary_process("P7", 1.0)) == "P7"


class TestEdge:
    def test_simple_and_conditional(self):
        simple = Edge("P1", "P2")
        conditional = Edge("P1", "P2", C.true())
        assert simple.is_simple and not simple.is_conditional
        assert conditional.is_conditional and not conditional.is_simple

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Edge("P1", "P1")

    def test_negative_communication_time_rejected(self):
        with pytest.raises(ValueError):
            Edge("P1", "P2", communication_time=-1.0)

    def test_str_shows_condition(self):
        assert str(Edge("P1", "P2")) == "P1 -> P2"
        assert str(Edge("P1", "P2", C.false())) == "P1 -[!C]-> P2"

    def test_equality(self):
        assert Edge("P1", "P2", C.true(), 2.0) == Edge("P1", "P2", C.true(), 2.0)
        assert Edge("P1", "P2") != Edge("P1", "P3")
