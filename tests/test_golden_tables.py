"""Golden schedule-table equivalence against the seed implementation.

``tests/data/golden_tables.json`` pins the exact schedule tables (every row,
column expression, activation time and processing element) that the seed
implementation produced for the Fig. 1 example, one ATM OAM mode and ten
seeded random CPGs.  These tests replay the same workloads and require the
optimized scheduler to produce byte-identical tables — the contract that the
bitmask condition algebra and the incremental scheduler core are pure
performance changes.

Regenerate the golden file only when a schedule-quality change is intended:
``PYTHONPATH=src python scripts/capture_golden.py``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

SCRIPTS = Path(__file__).resolve().parent.parent / "scripts"
GOLDEN = Path(__file__).resolve().parent / "data" / "golden_tables.json"

sys.path.insert(0, str(SCRIPTS))

from capture_golden import (  # noqa: E402
    RANDOM_CASES,
    merge_atm,
    merge_fig1,
    merge_random,
    serialize_table,
)


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


def assert_table_equal(actual: dict, expected: dict, workload: str) -> None:
    assert actual["process_rows"].keys() == expected["process_rows"].keys(), (
        f"{workload}: different set of process rows"
    )
    for name, entries in expected["process_rows"].items():
        assert actual["process_rows"][name] == entries, (
            f"{workload}: process row {name} differs"
        )
    assert actual["condition_rows"] == expected["condition_rows"], (
        f"{workload}: condition rows differ"
    )
    assert actual["delta_m"] == expected["delta_m"], f"{workload}: delta_m differs"
    assert actual["delta_max"] == expected["delta_max"], (
        f"{workload}: delta_max differs"
    )


def test_fig1_table_matches_golden(golden):
    assert_table_equal(serialize_table(merge_fig1()), golden["fig1"], "fig1")


def test_atm_mode1_table_matches_golden(golden):
    assert_table_equal(serialize_table(merge_atm()), golden["atm_mode1"], "atm_mode1")


@pytest.mark.parametrize("case", RANDOM_CASES, ids=lambda c: f"n{c['nodes']}_s{c['seed']}")
def test_random_cpg_tables_match_golden(golden, case):
    key = f"random_n{case['nodes']}_p{case['alternative_paths']}_s{case['seed']}"
    assert_table_equal(serialize_table(merge_random(case)), golden[key], key)
