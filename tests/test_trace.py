"""Unit tests for the merge trace (decision tree) structures."""

from repro.conditions import Condition, Conjunction
from repro.scheduling.trace import DecisionNode, MergeTrace

C = Condition("C")
D = Condition("D")


def build_tree():
    root = DecisionNode(
        known=Conjunction.true(),
        selected_path=Conjunction.of(C.true(), D.true()),
        entered_by_back_step=False,
        branch_condition=C,
        branch_time=5.0,
    )
    left = DecisionNode(
        known=Conjunction.of(C.true()),
        selected_path=Conjunction.of(C.true(), D.true()),
        entered_by_back_step=False,
        depth=1,
    )
    right = DecisionNode(
        known=Conjunction.of(C.false()),
        selected_path=Conjunction.of(C.false()),
        entered_by_back_step=True,
        depth=1,
    )
    root.children = [left, right]
    trace = MergeTrace(
        root=root,
        path_delays={
            Conjunction.of(C.true(), D.true()): 20.0,
            Conjunction.of(C.false()): 15.0,
        },
        back_steps=1,
    )
    return trace, root, left, right


def test_nodes_are_depth_first():
    trace, root, left, right = build_tree()
    assert trace.nodes() == [root, left, right]


def test_leaves_exclude_branching_nodes():
    trace, root, left, right = build_tree()
    assert trace.leaves() == [left, right]
    assert not root.is_leaf and left.is_leaf


def test_render_marks_back_steps():
    trace, *_ = build_tree()
    text = trace.render()
    assert "->" in text and "<=" in text
    assert "branches on C" in text


def test_ordered_path_delays_sorted_descending():
    trace, *_ = build_tree()
    ordered = trace.ordered_path_delays()
    assert [delay for _, delay in ordered] == [20.0, 15.0]


def test_empty_trace():
    trace = MergeTrace()
    assert trace.nodes() == []
    assert trace.leaves() == []
    assert trace.render() == ""


def test_node_str_mentions_back_step():
    _, _, _, right = build_tree()
    assert "back-step" in str(right)
