"""Unit tests for condition variables and literals."""

import pytest

from repro.conditions import Condition, Literal, conditions_of


class TestCondition:
    def test_name_is_kept(self):
        assert Condition("C").name == "C"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Condition("")

    def test_equality_is_by_name(self):
        assert Condition("C") == Condition("C")
        assert Condition("C") != Condition("D")

    def test_ordering_is_by_name(self):
        assert Condition("A") < Condition("B")

    def test_str(self):
        assert str(Condition("K")) == "K"

    def test_hashable(self):
        assert len({Condition("C"), Condition("C"), Condition("D")}) == 2

    def test_literal_helpers(self):
        c = Condition("C")
        assert c.true() == Literal(c, True)
        assert c.false() == Literal(c, False)
        assert c.literal(False) == c.false()


class TestLiteral:
    def test_str_positive_and_negative(self):
        c = Condition("C")
        assert str(c.true()) == "C"
        assert str(c.false()) == "!C"

    def test_negate(self):
        c = Condition("C")
        assert c.true().negate() == c.false()
        assert ~c.false() == c.true()

    def test_double_negation_is_identity(self):
        literal = Condition("D").true()
        assert ~~literal == literal

    def test_conflicts_with_opposite_polarity(self):
        c = Condition("C")
        assert c.true().conflicts_with(c.false())
        assert not c.true().conflicts_with(c.true())

    def test_no_conflict_between_different_conditions(self):
        assert not Condition("C").true().conflicts_with(Condition("D").false())

    def test_evaluate(self):
        c = Condition("C")
        assert c.true().evaluate({c: True}) is True
        assert c.true().evaluate({c: False}) is False
        assert c.false().evaluate({c: False}) is True

    def test_evaluate_requires_assignment(self):
        c = Condition("C")
        with pytest.raises(KeyError):
            c.true().evaluate({})

    def test_default_polarity_is_true(self):
        assert Literal(Condition("C")).value is True


def test_conditions_of_collects_distinct_variables():
    c, d = Condition("C"), Condition("D")
    assert conditions_of([c.true(), c.false(), d.true()]) == frozenset({c, d})


def test_conditions_of_empty():
    assert conditions_of([]) == frozenset()
