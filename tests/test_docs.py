"""Documentation health checks: links resolve, docstrings exist.

Runs the offline markdown link checker (``scripts/check_links.py``) over the
curated documentation set, requires the ``docs/`` tree the README points to,
and enforces the docstring conventions of the public surface: every module of
``repro.exploration`` carries a module docstring and every symbol re-exported
from ``repro`` documents itself.
"""

from __future__ import annotations

import importlib
import pkgutil
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(ROOT / "scripts"))

from check_links import broken_links, documentation_files, links_in  # noqa: E402

import repro  # noqa: E402
import repro.exploration  # noqa: E402


class TestMarkdownLinks:
    def test_documentation_set_includes_the_docs_tree(self):
        names = {path.relative_to(ROOT).as_posix() for path in documentation_files()}
        for expected in (
            "README.md",
            "PERFORMANCE.md",
            "ROADMAP.md",
            "docs/index.md",
            "docs/architecture.md",
            "docs/exploration.md",
            "docs/cli.md",
        ):
            assert expected in names, f"{expected} missing from the link check"

    def test_angle_bracketed_targets_are_extracted(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "[spaced](<my guide.md>) and [plain](other.md) and "
            "`[code](ignored.md)`\n"
        )
        targets = {link.target for link in links_in(page)}
        assert targets == {"my guide.md", "other.md"}

    def test_no_broken_relative_links(self):
        failures = broken_links()
        assert not failures, "broken markdown links: " + ", ".join(
            f"{link.source.relative_to(ROOT)} -> {link.target}"
            for link in failures
        )


class TestDocstrings:
    def test_every_exploration_module_has_a_docstring(self):
        package = repro.exploration
        modules = [package]
        for info in pkgutil.iter_modules(package.__path__):
            modules.append(
                importlib.import_module(f"{package.__name__}.{info.name}")
            )
        assert len(modules) > 5  # the package plus its submodules
        for module in modules:
            assert module.__doc__ and module.__doc__.strip(), (
                f"{module.__name__} lacks a module docstring"
            )

    def test_every_public_symbol_documents_itself(self):
        undocumented = []
        for name in repro.__all__:
            if name == "__version__":
                continue  # a plain string, not an API object
            symbol = getattr(repro, name)
            doc = getattr(symbol, "__doc__", None)
            if not doc or not doc.strip():
                undocumented.append(name)
        assert not undocumented, (
            "public symbols without docstrings: " + ", ".join(undocumented)
        )

    def test_exploration_exports_document_themselves(self):
        undocumented = []
        for name in repro.exploration.__all__:
            symbol = getattr(repro.exploration, name)
            if isinstance(symbol, (dict, tuple, int, float, str)):
                continue  # data constants (ENGINES, OBJECTIVE_NAMES) carry no __doc__
            if type(symbol).__module__ == "typing":
                continue  # typing aliases (StoppingCriterion) cannot hold __doc__
            doc = getattr(symbol, "__doc__", None)
            if not doc or not doc.strip():
                undocumented.append(name)
        assert not undocumented, (
            "exploration symbols without docstrings: " + ", ".join(undocumented)
        )
