"""Property tests for the bounded (LRU) stage cache behind the service.

The shared cross-request cache of ``repro-cpg serve`` must (1) never exceed
its entry/byte budget, (2) evict cheapest-to-recompute entries first within
the recency window, and (3) stay semantically invisible: a post-eviction
re-query recomputes a bit-identical stage result.  (1) and (2) are checked
with hypothesis against an executable model of the documented policy; (3)
against real evaluations on a small problem, including the
``check_integrity`` self-healing path.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import random

from repro.exploration import (
    CostWeights,
    ExplorationProblem,
    NeighborhoodSampler,
    StageCache,
    evaluate_candidate,
)
from repro.exploration.cost import (
    _EVICTION_WINDOW,
    schedule_entry_cost,
)
from repro.generator import generate_system

import pytest


class _FakePath:
    def __init__(self, label):
        self.label = label


class _FakeSchedule:
    """Just enough of a PathSchedule for cost accounting and integrity."""

    def __init__(self, label, tasks, broadcasts=0):
        self.path = _FakePath(label)
        self.tasks = [None] * tasks
        self.broadcasts = [None] * broadcasts
        self.delay = float(tasks)


def _run_model(cache, max_entries, max_bytes, operations):
    """Drive cache and model together; return the model's (key, cost) order."""
    model = []  # least recent first, mirroring the cache's recency order

    def model_evict():
        while model and (
            (max_entries and len(model) > max_entries)
            or (max_bytes and sum(cost for _, cost in model) > max_bytes)
        ):
            window = model[:_EVICTION_WINDOW]
            victim = min(window, key=lambda item: item[1])
            model.remove(victim)

    for is_store, key_id, tasks in operations:
        key = (("path", key_id), key_id)
        if is_store:
            schedule = _FakeSchedule(("path", key_id), tasks)
            cost = schedule_entry_cost(schedule)
            cache.store_schedule(key, schedule)
            if not (max_bytes and cost > max_bytes):
                model[:] = [item for item in model if item[0] != key]
                model.append((key, cost))
                model_evict()
        else:
            hit = cache.lookup_schedule(key) is not None
            in_model = any(item[0] == key for item in model)
            assert hit == in_model
            if in_model:
                entry = next(item for item in model if item[0] == key)
                model.remove(entry)
                model.append(entry)
    return model


_OPERATIONS = st.lists(
    st.tuples(
        st.booleans(),  # store (True) or lookup (False)
        st.integers(min_value=0, max_value=24),  # key id
        st.integers(min_value=0, max_value=20),  # schedule size
    ),
    min_size=1,
    max_size=80,
)


@settings(max_examples=60, deadline=None)
@given(
    operations=_OPERATIONS,
    max_entries=st.one_of(st.none(), st.integers(min_value=1, max_value=12)),
    max_bytes=st.one_of(
        st.none(), st.integers(min_value=200, max_value=6000)
    ),
)
def test_bounded_cache_matches_the_eviction_model(
    operations, max_entries, max_bytes
):
    if max_entries is None and max_bytes is None:
        max_entries = 4  # at least one budget, else the cache is unbounded
    cache = StageCache(max_entries=max_entries, max_bytes=max_bytes)
    model = _run_model(cache, max_entries, max_bytes, operations)

    stats = cache.stats
    # Budgets are invariants, not targets: never exceeded, not even
    # transiently observable after any operation.
    if max_entries:
        assert stats.schedules <= max_entries
    if max_bytes:
        assert stats.occupancy_bytes <= max_bytes
    # The cache holds exactly what the documented policy says it should:
    # same keys, same recency order, same byte accounting.
    assert list(cache._lru) == [("schedule", key) for key, _ in model]
    assert set(cache._schedules) == {key for key, _ in model}
    assert stats.occupancy_bytes == sum(cost for _, cost in model)
    assert stats.lru_evictions == cache.lru_evictions


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(
        st.integers(min_value=0, max_value=15),
        min_size=_EVICTION_WINDOW + 1,
        max_size=_EVICTION_WINDOW + 1,
    )
)
def test_eviction_prefers_cheapest_in_the_recency_window(sizes):
    max_entries = _EVICTION_WINDOW
    cache = StageCache(max_entries=max_entries)
    schedules = [
        _FakeSchedule(("path", index), tasks) for index, tasks in enumerate(sizes)
    ]
    for index, schedule in enumerate(schedules[:max_entries]):
        cache.store_schedule((("path", index), index), schedule)
    assert cache.lru_evictions == 0

    # The next store overflows the entry budget; the victim must be the
    # cheapest entry in the window (ties fall to the least recent).
    costs = [schedule_entry_cost(schedule) for schedule in schedules[:max_entries]]
    expected_victim = (("path", costs.index(min(costs))), costs.index(min(costs)))
    cache.store_schedule(
        (("path", max_entries), max_entries), schedules[max_entries]
    )
    assert cache.lru_evictions == 1
    assert cache.lookup_schedule(expected_victim) is None
    # Every other pre-overflow entry survived.
    for index in range(max_entries):
        key = (("path", index), index)
        if key != expected_victim:
            assert cache.lookup_schedule(key) is not None


def test_oversize_entries_are_computed_but_never_memoized():
    cache = StageCache(max_bytes=300)
    small = _FakeSchedule(("path", 0), 1)
    huge = _FakeSchedule(("path", 1), 50)
    assert schedule_entry_cost(huge) > 300
    cache.store_schedule((("path", 0), 0), small)
    cache.store_schedule((("path", 1), 1), huge)
    assert cache.lookup_schedule((("path", 0), 0)) is small
    assert cache.lookup_schedule((("path", 1), 1)) is None
    assert cache.occupancy_bytes == schedule_entry_cost(small)


def test_invalid_budgets_are_rejected():
    with pytest.raises(ValueError):
        StageCache(max_entries=0)
    with pytest.raises(ValueError):
        StageCache(max_bytes=-1)


#: Module-level problem for the re-query tests (hypothesis disallows
#: function-scoped fixtures; building once also keeps them fast).
_PROBLEM = ExplorationProblem.from_system(generate_system(10, 2, seed=5))
_WEIGHTS = CostWeights()
_RNG = random.Random(7)
_SAMPLER = NeighborhoodSampler(_PROBLEM)
_CANDIDATES = [_PROBLEM.initial_candidate()]
for _move, _neighbor in _SAMPLER.sample(_CANDIDATES[0], _RNG, 6):
    _CANDIDATES.append(_neighbor)


def _evaluation_key(evaluation):
    return (
        evaluation.feasible,
        evaluation.cost,
        evaluation.delta_max,
        evaluation.delta_m,
        evaluation.objectives,
    )


def test_post_eviction_requery_recomputes_bit_identical_results():
    # A budget this tight evicts constantly; results must not notice.
    bounded = StageCache(max_entries=3, max_bytes=2048)
    unbounded = StageCache()
    for sweep in range(2):  # second sweep re-queries evicted stages
        for candidate in _CANDIDATES:
            with_bound = evaluate_candidate(
                _PROBLEM, candidate, _WEIGHTS, stage_cache=bounded
            )
            without = evaluate_candidate(
                _PROBLEM, candidate, _WEIGHTS, stage_cache=unbounded
            )
            monolithic = evaluate_candidate(_PROBLEM, candidate, _WEIGHTS)
            assert _evaluation_key(with_bound) == _evaluation_key(monolithic)
            assert _evaluation_key(without) == _evaluation_key(monolithic)
    assert bounded.lru_evictions > 0
    assert bounded.stats.schedules <= 3
    assert bounded.occupancy_bytes <= 2048


def test_integrity_eviction_keeps_bounded_accounting_consistent():
    # The PR 6 self-healing path must stay coherent with LRU bookkeeping:
    # an integrity eviction releases the entry's bytes and recency slot.
    cache = StageCache(max_entries=8)
    honest = _FakeSchedule(("path", 0), 2)
    key_id = cache.intern_key((("path", 0), "locks"))
    cache.store_schedule((key_id, ()), honest)

    liar = _FakeSchedule(("path", "other"), 2)
    liar_id = cache.intern_key((("path", 1), "locks"))
    cache.store_schedule((liar_id, ()), liar)
    occupancy_before = cache.occupancy_bytes

    evicted = cache.check_integrity()
    assert evicted == 1
    assert cache.stats.integrity_evictions == 1
    assert cache.lookup_schedule((liar_id, ())) is None
    assert cache.lookup_schedule((key_id, ())) is honest
    assert cache.occupancy_bytes == occupancy_before - schedule_entry_cost(liar)
    assert ("schedule", (liar_id, ())) not in cache._lru

    # Re-querying after the eviction stores a fresh, equal entry.
    healed = _FakeSchedule(("path", 1), 2)
    cache.store_schedule((liar_id, ()), healed)
    assert cache.lookup_schedule((liar_id, ())) is healed
    assert cache.check_integrity() == 0
