"""Tests of the genetic engine and architecture sizing.

Covers per-seed determinism of the final Pareto front, the non-domination
invariant of every reported front, validity of sized architectures after
add/remove-PE/bus move sequences (including a hypothesis sweep), pool-mode
equivalence of genetic evaluation batches, and the payload round trip that
ships sizing bounds to pool workers.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exploration import (
    ArchitectureBounds,
    EvaluationPool,
    ExplorationConfig,
    ExplorationProblem,
    Explorer,
    NeighborhoodSampler,
    dominates,
    evaluate_candidate,
)
from repro.generator import generate_system


@pytest.fixture(scope="module")
def problem():
    """A small fixed-architecture problem (16 nodes, 2 paths)."""
    return ExplorationProblem.from_system(generate_system(16, 2, seed=3))


@pytest.fixture(scope="module")
def sized_problem():
    """The same system with architecture sizing enabled (default bounds)."""
    return ExplorationProblem.from_system(
        generate_system(16, 2, seed=3), bounds=ArchitectureBounds()
    )


def _config(**overrides):
    defaults = dict(seed=5, max_cycles=4, population_size=8)
    defaults.update(overrides)
    return ExplorationConfig(**defaults)


class TestGeneticEngine:
    @pytest.mark.parametrize("fixture", ["problem", "sized_problem"])
    def test_front_deterministic_per_seed(self, fixture, request):
        target = request.getfixturevalue(fixture)
        first = Explorer(target, config=_config()).explore("genetic")
        second = Explorer(target, config=_config()).explore("genetic")
        assert first.best_candidate == second.best_candidate
        assert first.best == second.best
        assert first.trajectory == second.trajectory
        assert first.front.vectors() == second.front.vectors()
        assert [p.candidate.fingerprint for p in first.front] == [
            p.candidate.fingerprint for p in second.front
        ]

    def test_different_seeds_may_differ_but_stay_valid(self, sized_problem):
        results = [
            Explorer(sized_problem, config=_config(seed=seed)).explore("genetic")
            for seed in (0, 1)
        ]
        for result in results:
            assert result.best.feasible
            assert len(result.front) >= 1

    @pytest.mark.parametrize("fixture", ["problem", "sized_problem"])
    def test_front_is_mutually_non_dominated(self, fixture, request):
        target = request.getfixturevalue(fixture)
        result = Explorer(target, config=_config()).explore("genetic")
        vectors = result.front.vectors()
        assert vectors
        for i, a in enumerate(vectors):
            for j, b in enumerate(vectors):
                if i != j:
                    assert not dominates(a, b), (a, b)

    def test_never_worse_than_seed_and_budget_respected(self, problem):
        result = Explorer(problem, config=_config()).explore("genetic")
        assert result.best.cost <= result.initial.cost + 1e-9
        assert result.cycles <= _config().max_cycles
        assert result.best.feasible

    def test_front_covers_best_candidate(self, sized_problem):
        """The scalar-best candidate can never be dominated by a front point
        on the delta_max axis (it minimises the default scalar = delta_max)."""
        result = Explorer(sized_problem, config=_config()).explore("genetic")
        best_delta = result.best.delta_max
        assert min(v[0] for v in result.front.vectors()) <= best_delta + 1e-9

    def test_shares_explorer_cache_with_other_engines(self, problem):
        explorer = Explorer(problem, config=_config())
        explorer.explore("tabu")
        result = explorer.explore("genetic")
        assert result.cache.hits > 0

    def test_stopping_criteria_apply(self, problem):
        config = _config(max_cycles=50, stall_cycles=2)
        result = Explorer(problem, config=config).explore("genetic")
        assert result.cycles < 50
        assert ("stalled" in result.stop_reason
                or "cycle budget" in result.stop_reason)

    def test_track_front_snapshots_evaluator_front(self, problem):
        explorer = Explorer(problem, config=_config(track_front=True))
        result = explorer.explore("genetic")
        assert result.front is not explorer.front  # an independent snapshot
        assert result.front.vectors() == explorer.front.vectors()

    def test_earlier_result_front_is_isolated_from_later_runs(self, problem):
        """A result's front snapshot must not grow when a later engine run on
        the shared explorer discovers new points."""
        explorer = Explorer(problem, config=_config(track_front=True))
        first = explorer.explore("tabu")
        before = first.front.vectors()
        explorer.explore("genetic")
        assert first.front.vectors() == before


class TestGeneticPoolEquivalence:
    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_pool_modes_match_serial(self, sized_problem, mode):
        serial = Explorer(sized_problem, config=_config()).explore("genetic")
        with EvaluationPool(sized_problem, workers=2, mode=mode) as pool:
            pooled = Explorer(
                sized_problem, config=_config(), pool=pool
            ).explore("genetic")
        assert pooled.best_candidate == serial.best_candidate
        assert pooled.best == serial.best
        assert pooled.front.vectors() == serial.front.vectors()
        assert pooled.trajectory == serial.trajectory


class TestArchitectureSizing:
    def test_initial_platform_mirrors_seed_architecture(self, sized_problem):
        candidate = sized_problem.initial_candidate()
        assert set(candidate.platform_processors) == {
            pe.name for pe in sized_problem.architecture.programmable_processors
        }
        assert set(candidate.platform_buses) == {
            pe.name for pe in sized_problem.architecture.buses
        }
        # The seed platform materialises the base architecture's evaluation.
        fixed = ExplorationProblem.from_system(generate_system(16, 2, seed=3))
        sized_eval = evaluate_candidate(sized_problem, candidate)
        fixed_eval = evaluate_candidate(fixed, fixed.initial_candidate())
        assert sized_eval.delta_max == fixed_eval.delta_max

    def test_bounds_resolution_and_validation(self, sized_problem):
        bounds = sized_problem.bounds
        seed_processors = len(sized_problem.architecture.programmable_processors)
        assert bounds.max_processors == seed_processors + 2
        assert bounds.max_buses == len(sized_problem.architecture.buses) + 1
        with pytest.raises(ValueError, match="min_processors"):
            ArchitectureBounds(min_processors=0).resolved_for(
                sized_problem.architecture
            )
        with pytest.raises(ValueError, match="max_processors"):
            ArchitectureBounds(max_processors=1, min_processors=2).validate()

    def test_spare_names_avoid_collisions(self, sized_problem):
        taken = {pe.name for pe in sized_problem.architecture.processing_elements}
        for name in sized_problem.spare_processor_names:
            assert name not in taken
        for name in sized_problem.spare_bus_names:
            assert name not in taken
            assert name not in sized_problem.spare_processor_names

    def test_add_then_remove_processor_roundtrip(self, sized_problem):
        initial = sized_problem.initial_candidate()
        spare = sized_problem.spare_processor_names[0]
        grown = initial.with_element(spare, "programmable")
        assert spare in grown.platform_processors
        architecture = sized_problem.architecture_for(grown)
        assert spare in {pe.name for pe in architecture.programmable_processors}
        architecture.validate()
        evaluation = evaluate_candidate(sized_problem, grown)
        assert evaluation.feasible
        assert evaluation.architecture_cost > evaluate_candidate(
            sized_problem, initial
        ).architecture_cost
        shrunk = grown.without_element(spare)
        assert shrunk.fingerprint == initial.fingerprint

    def test_platform_duplicates_and_unknowns_rejected(self, sized_problem):
        initial = sized_problem.initial_candidate()
        existing = initial.platform_processors[0]
        with pytest.raises(ValueError, match="already part"):
            initial.with_element(existing, "programmable")
        with pytest.raises(ValueError, match="not part"):
            initial.without_element("nonexistent")

    def test_payload_roundtrip_preserves_bounds_and_evaluation(self, sized_problem):
        rebuilt = ExplorationProblem.from_payload(sized_problem.to_payload())
        assert rebuilt.bounds == sized_problem.bounds
        assert rebuilt.spare_processor_names == sized_problem.spare_processor_names
        candidate = sized_problem.initial_candidate()
        spare = sized_problem.spare_processor_names[0]
        grown = candidate.with_element(spare, "programmable")
        assert evaluate_candidate(rebuilt, grown) == evaluate_candidate(
            sized_problem, grown
        )

    def test_sampler_emits_sizing_moves(self, sized_problem):
        sampler = NeighborhoodSampler(sized_problem)
        rng = random.Random(0)
        kinds = set()
        candidate = sized_problem.initial_candidate()
        for _ in range(60):
            for move, neighbor in sampler.sample(candidate, rng, 4):
                kinds.add(move.kind)
                candidate = neighbor
        assert "add_pe" in kinds or "add_bus" in kinds
        assert kinds & {"remap", "swap", "priority", "bias"}

    def test_remove_pe_only_retires_empty_processors(self, sized_problem):
        sampler = NeighborhoodSampler(sized_problem)
        candidate = sized_problem.initial_candidate()
        occupied = set(candidate.assignment_dict.values())
        for move in sampler._sizing_moves(candidate):
            if move.kind == "remove_pe":
                assert move.operands[0] not in occupied


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_sized_move_sequences_keep_architectures_valid(data):
    """Property: any move sequence (including sizing moves) yields platforms
    within bounds whose architectures construct, validate and map cleanly."""
    problem = _SIZED_MOVE_PROBLEM
    bounds = problem.bounds
    sampler = NeighborhoodSampler(problem)
    rng = random.Random(data.draw(st.integers(0, 2**16), label="seed"))
    candidate = problem.initial_candidate()
    for _ in range(data.draw(st.integers(1, 8), label="moves")):
        neighbors = sampler.sample(candidate, rng, 1)
        if not neighbors:
            break
        _, candidate = neighbors[0]
        processors = candidate.platform_processors
        buses = candidate.platform_buses
        assert bounds.min_processors <= len(processors) <= bounds.max_processors
        assert bounds.min_buses <= len(buses) <= bounds.max_buses
        architecture = problem.architecture_for(candidate)  # raises if malformed
        assert {pe.name for pe in architecture.programmable_processors} == set(
            processors
        )
        assert {pe.name for pe in architecture.buses} == set(buses)
        mapping = problem.mapping_for(candidate)  # raises if invalid
        mapping.validate_for(problem.movable_processes)
        assert set(candidate.assignment_dict.values()) <= set(
            problem.processors_for(candidate)
        )


#: Module-level problem for the hypothesis test (built once; hypothesis
#: disallows function-scoped fixtures).
_SIZED_MOVE_PROBLEM = ExplorationProblem.from_system(
    generate_system(12, 2, seed=9), bounds=ArchitectureBounds()
)
