"""Tests for JSON serialisation of system descriptions."""

import json

import pytest

from repro.io import (
    SerializationError,
    architecture_from_dict,
    architecture_to_dict,
    load_system,
    save_system,
    system_from_dict,
    system_to_dict,
)
from repro.scheduling import ScheduleMerger


class TestArchitectureRoundTrip:
    def test_round_trip_preserves_elements(self, two_processor_architecture):
        document = architecture_to_dict(two_processor_architecture)
        rebuilt = architecture_from_dict(document)
        assert {pe.name for pe in rebuilt.processors} == {
            pe.name for pe in two_processor_architecture.processors
        }
        assert {pe.name for pe in rebuilt.buses} == {"bus1"}
        assert rebuilt.condition_broadcast_time == pytest.approx(
            two_processor_architecture.condition_broadcast_time
        )
        assert rebuilt["hw1"].is_hardware

    def test_missing_processors_rejected(self):
        with pytest.raises(SerializationError):
            architecture_from_dict({"buses": []})

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            architecture_from_dict({"processors": [{"name": "x", "kind": "dsp"}]})

    def test_bus_in_processor_list_rejected(self):
        with pytest.raises(SerializationError):
            architecture_from_dict({"processors": [{"name": "x", "kind": "bus"}]})


class TestSystemRoundTrip:
    def test_round_trip_preserves_schedule(self, small_system):
        document = system_to_dict(
            small_system["graph"],
            small_system["architecture"],
            small_system["mapping"],
            name="small",
        )
        rebuilt = system_from_dict(document)
        assert rebuilt.name == "small"
        assert len(rebuilt.graph.ordinary_processes) == len(
            small_system["graph"].ordinary_processes
        )
        assert {str(c) for c in rebuilt.graph.conditions} == {"C"}

        original = ScheduleMerger(
            small_system["expanded"].graph,
            small_system["expanded"].mapping,
            small_system["architecture"],
        ).merge()
        expanded = rebuilt.expand()
        recovered = ScheduleMerger(
            expanded.graph, expanded.mapping, rebuilt.architecture
        ).merge()
        assert recovered.delta_max == pytest.approx(original.delta_max)

    def test_document_is_json_serialisable(self, small_system):
        document = system_to_dict(
            small_system["graph"],
            small_system["architecture"],
            small_system["mapping"],
        )
        text = json.dumps(document)
        assert "processes" in json.loads(text)

    def test_missing_sections_rejected(self):
        with pytest.raises(SerializationError):
            system_from_dict({"architecture": {"processors": []}})

    def test_incomplete_process_rejected(self, small_system):
        document = system_to_dict(
            small_system["graph"],
            small_system["architecture"],
            small_system["mapping"],
        )
        del document["processes"][0]["execution_time"]
        with pytest.raises(SerializationError):
            system_from_dict(document)

    def test_schema_violations_name_the_offending_entry(self, small_system):
        def document():
            return system_to_dict(
                small_system["graph"],
                small_system["architecture"],
                small_system["mapping"],
            )

        bad = document()
        bad["processes"][0]["mapped_to"] = "pe99"
        with pytest.raises(SerializationError, match="pe99"):
            system_from_dict(bad)

        bad = document()
        bad["processes"][0]["execution_time"] = "fast"
        with pytest.raises(SerializationError, match="must be a number"):
            system_from_dict(bad)

        bad = document()
        bad["edges"].append({"src": "P1", "dst": "P99"})
        with pytest.raises(SerializationError, match="undeclared process 'P99'"):
            system_from_dict(bad)

        bad = document()
        bad["edges"][0].pop("dst")
        with pytest.raises(SerializationError, match="missing 'dst'"):
            system_from_dict(bad)

        bad = document()
        bad["processes"] = {"P1": 1.0}
        with pytest.raises(SerializationError, match="must be a list"):
            system_from_dict(bad)

    def test_per_pe_execution_times_survive(self, two_processor_architecture):
        from repro.architecture import Mapping
        from repro.graph import CPGBuilder, ordinary_process

        builder = CPGBuilder("override")
        builder.add(ordinary_process("P1", 10.0, execution_times={"pe1": 4.0}))
        graph = builder.build()
        mapping = Mapping(
            two_processor_architecture, {"P1": two_processor_architecture["pe1"]}
        )
        document = system_to_dict(graph, two_processor_architecture, mapping)
        rebuilt = system_from_dict(document)
        assert rebuilt.graph["P1"].execution_times == {"pe1": 4.0}


class TestFiles:
    def test_save_and_load(self, tmp_path, small_system):
        path = tmp_path / "system.json"
        save_system(
            path,
            small_system["graph"],
            small_system["architecture"],
            small_system["mapping"],
            name="on-disk",
        )
        loaded = load_system(path)
        assert loaded.name == "on-disk"
        assert "P1" in loaded.mapping

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_system(path)

    def test_fig1_round_trip(self, tmp_path, fig1):
        path = tmp_path / "fig1.json"
        save_system(path, fig1.process_graph, fig1.architecture, fig1.mapping)
        loaded = load_system(path)
        expanded = loaded.expand()
        assert len(expanded.communications) == 14
