"""Unit and property-based tests for sum-of-products boolean expressions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conditions import BoolExpr, Condition, Conjunction

C = Condition("C")
D = Condition("D")
K = Condition("K")

ALL_CONDITIONS = [C, D, K]


def expr_of(*terms):
    return BoolExpr([Conjunction(term) for term in terms])


class TestBasics:
    def test_true_and_false(self):
        assert BoolExpr.true().is_true()
        assert BoolExpr.false().is_false()
        assert not BoolExpr.true().is_false()

    def test_from_literal(self):
        expr = BoolExpr.from_literal(C.true())
        assert expr.evaluate({C: True})
        assert not expr.evaluate({C: False})

    def test_str_forms(self):
        assert str(BoolExpr.true()) == "true"
        assert str(BoolExpr.false()) == "false"
        assert "C" in str(BoolExpr.from_literal(C.true()))

    def test_absorption(self):
        expr = expr_of([C.true()], [C.true(), D.true()])
        assert expr.is_equivalent_to(BoolExpr.from_literal(C.true()))

    def test_contradictory_product_dropped(self):
        expr = BoolExpr.from_literal(C.true()).and_(BoolExpr.from_literal(C.false()))
        assert expr.is_false()

    def test_conditions_property(self):
        expr = expr_of([C.true()], [D.false()])
        assert expr.conditions == frozenset({C, D})


class TestAlgebra:
    def test_or_of_complementary_literals_is_true(self):
        expr = BoolExpr.from_literal(C.true()) | BoolExpr.from_literal(C.false())
        assert expr.is_equivalent_to(BoolExpr.true())

    def test_and_distributes(self):
        left = expr_of([C.true()], [C.false()])
        right = BoolExpr.from_literal(D.true())
        combined = left & right
        assert combined.is_equivalent_to(BoolExpr.from_literal(D.true()))

    def test_and_with_false_is_false(self):
        assert (BoolExpr.from_literal(C.true()) & BoolExpr.false()).is_false()

    def test_or_with_true_is_true(self):
        assert (BoolExpr.from_literal(C.true()) | BoolExpr.true()).is_true()

    def test_implies_reflexive(self):
        expr = expr_of([C.true(), D.false()])
        assert expr.implies(expr)

    def test_implies_weakening(self):
        specific = expr_of([C.true(), D.true()])
        general = expr_of([C.true()])
        assert specific.implies(general)
        assert not general.implies(specific)

    def test_false_implies_everything(self):
        assert BoolExpr.false().implies(expr_of([K.true()]))

    def test_mutual_exclusion(self):
        assert expr_of([C.true()]).is_mutually_exclusive_with(expr_of([C.false()]))
        assert not expr_of([C.true()]).is_mutually_exclusive_with(expr_of([D.true()]))

    def test_covers_conjunction(self):
        guard = expr_of([D.true(), K.true()])
        assert guard.covers_conjunction(Conjunction.of(D.true(), K.true(), C.false()))
        assert not guard.covers_conjunction(Conjunction.of(D.true()))

    def test_equality_is_semantic(self):
        left = expr_of([C.true()], [C.false(), D.true()])
        right = expr_of([C.true()], [D.true()])
        assert left == right
        assert hash(left) == hash(right)

    def test_satisfying_assignments(self):
        expr = expr_of([C.true(), D.false()])
        matches = list(expr.satisfying_assignments([C, D]))
        assert {(a[C], a[D]) for a in matches} == {(True, False)}


# -- property-based tests -----------------------------------------------------------

literals = st.sampled_from(
    [C.true(), C.false(), D.true(), D.false(), K.true(), K.false()]
)


@st.composite
def conjunctions(draw):
    chosen = draw(st.lists(literals, max_size=3))
    consistent = {}
    for literal in chosen:
        consistent.setdefault(literal.condition, literal)
    return Conjunction(consistent.values())


@st.composite
def expressions(draw):
    terms = draw(st.lists(conjunctions(), max_size=4))
    return BoolExpr(terms)


def assignments():
    return st.tuples(st.booleans(), st.booleans(), st.booleans()).map(
        lambda bits: dict(zip(ALL_CONDITIONS, bits))
    )


@settings(max_examples=60, deadline=None)
@given(expressions(), expressions(), assignments())
def test_or_semantics(left, right, assignment):
    assert (left | right).evaluate(assignment) == (
        left.evaluate(assignment) or right.evaluate(assignment)
    )


@settings(max_examples=60, deadline=None)
@given(expressions(), expressions(), assignments())
def test_and_semantics(left, right, assignment):
    assert (left & right).evaluate(assignment) == (
        left.evaluate(assignment) and right.evaluate(assignment)
    )


@settings(max_examples=60, deadline=None)
@given(expressions(), expressions())
def test_implication_matches_evaluation(left, right):
    implied = left.implies(right)
    brute_force = all(
        (not left.evaluate(dict(zip(ALL_CONDITIONS, bits))))
        or right.evaluate(dict(zip(ALL_CONDITIONS, bits)))
        for bits in [(a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)]
    )
    assert implied == brute_force


@settings(max_examples=60, deadline=None)
@given(conjunctions(), conjunctions())
def test_conjunction_exclusion_matches_expression_exclusion(left, right):
    as_expr = BoolExpr.from_conjunction(left).is_mutually_exclusive_with(
        BoolExpr.from_conjunction(right)
    )
    assert left.is_mutually_exclusive_with(right) == as_expr


@settings(max_examples=60, deadline=None)
@given(expressions())
def test_expression_equivalent_to_itself_or_true_false(expr):
    assert expr.is_equivalent_to(expr)
    if expr.is_false():
        assert not expr.is_satisfiable()
    else:
        assert expr.is_satisfiable()


@pytest.mark.parametrize("value", [True, False])
def test_single_condition_round_trip(value):
    expr = BoolExpr.from_literal(C.literal(value))
    assert expr.evaluate({C: value})
    assert not expr.evaluate({C: not value})
