"""Tests for the random system generator (structure plans and full systems)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generator import (
    GeneratorConfig,
    RandomSystemGenerator,
    branch,
    distribute_sizes,
    generate_system,
    paper_experiment_configs,
    plan_for_paths,
    segment,
    series,
)
from repro.graph import PathEnumerator


class TestStructurePlan:
    def test_segment_has_one_path(self):
        assert segment().path_count == 1

    def test_series_multiplies(self):
        plan = series(branch(segment(), segment()), branch(segment(), segment()))
        assert plan.path_count == 4

    def test_branch_adds(self):
        plan = branch(branch(segment(), segment()), segment())
        assert plan.path_count == 3

    def test_condition_count(self):
        plan = series(branch(segment(), segment()), branch(segment(), segment()))
        assert plan.condition_count() == 2

    def test_segments_listing(self):
        plan = series(segment(), branch(segment(), segment()))
        assert len(plan.segments()) == 3

    def test_describe(self):
        assert "branch" in branch(segment(), segment()).describe()

    @pytest.mark.parametrize("target", [1, 2, 3, 5, 10, 12, 18, 24, 32])
    def test_plan_for_paths_hits_target_exactly(self, target):
        rng = random.Random(42)
        for _ in range(5):
            assert plan_for_paths(target, rng).path_count == target

    def test_plan_for_paths_rejects_zero(self):
        with pytest.raises(ValueError):
            plan_for_paths(0)

    def test_distribute_sizes_spreads_budget(self):
        rng = random.Random(7)
        plan = plan_for_paths(10, rng)
        distribute_sizes(plan, 60, rng)
        segments = plan.segments()
        assert all(seg.size >= 1 for seg in segments)
        total = sum(seg.size for seg in segments) + 2 * plan.condition_count()
        assert total >= 60 - len(segments)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=10**6))
    def test_plan_for_paths_property(self, target, seed):
        plan = plan_for_paths(target, random.Random(seed))
        assert plan.path_count == target


class TestGeneratorConfig:
    def test_defaults_are_valid(self):
        GeneratorConfig().validate()

    @pytest.mark.parametrize(
        "override",
        [
            {"nodes": 1},
            {"alternative_paths": 0},
            {"execution_time_distribution": "gaussian"},
            {"programmable_processors": 0},
            {"buses": 0},
        ],
    )
    def test_invalid_configs_rejected(self, override):
        config = GeneratorConfig(**override)
        with pytest.raises(ValueError):
            config.validate()


class TestGeneratedSystems:
    @pytest.mark.parametrize("paths", [1, 4, 10])
    def test_path_count_matches_request(self, paths):
        system = generate_system(24, paths, seed=paths)
        assert system.alternative_path_count == paths

    def test_node_count_close_to_request(self):
        system = generate_system(60, 10, seed=3)
        ordinary = len(system.process_graph.ordinary_processes)
        assert 55 <= ordinary <= 70

    def test_graph_is_valid_and_expanded(self):
        system = generate_system(30, 6, seed=11)
        system.process_graph.validate()
        system.graph.validate()
        from repro.graph import is_expanded

        assert is_expanded(system.graph, system.expanded_mapping)

    def test_every_ordinary_process_is_mapped(self):
        system = generate_system(30, 6, seed=12)
        for process in system.process_graph.ordinary_processes:
            assert process.name in system.mapping

    def test_determinism_per_seed(self):
        first = generate_system(30, 6, seed=5)
        second = generate_system(30, 6, seed=5)
        assert first.process_graph.process_names == second.process_graph.process_names
        assert [e.src for e in first.process_graph.edges] == [
            e.src for e in second.process_graph.edges
        ]
        third = generate_system(30, 6, seed=6)
        assert (
            first.process_graph.process_names != third.process_graph.process_names
            or [e.src for e in first.process_graph.edges]
            != [e.src for e in third.process_graph.edges]
        )

    def test_exponential_distribution_supported(self):
        system = generate_system(
            25, 4, seed=9, execution_time_distribution="exponential"
        )
        times = [p.execution_time for p in system.process_graph.ordinary_processes]
        assert all(t >= system.config.min_execution_time for t in times)

    def test_communication_times_at_least_broadcast_time(self):
        system = generate_system(25, 4, seed=10)
        tau0 = system.config.condition_broadcast_time
        for edge in system.process_graph.edges:
            if not system.process_graph[edge.src].is_dummy and not system.process_graph[
                edge.dst
            ].is_dummy:
                assert edge.communication_time >= tau0

    def test_architecture_shape_follows_config(self):
        config = GeneratorConfig(
            nodes=20,
            alternative_paths=2,
            programmable_processors=4,
            hardware_processors=2,
            buses=3,
            seed=1,
        )
        system = RandomSystemGenerator(config).generate()
        assert len(system.architecture.programmable_processors) == 4
        assert len(system.architecture.hardware_processors) == 2
        assert len(system.architecture.buses) == 3


class TestPaperExperimentConfigs:
    def test_counts_and_parameters(self):
        configs = paper_experiment_configs(60, graphs_per_setting=4, base_seed=1)
        assert len(configs) == 4 * 5
        assert {c.alternative_paths for c in configs} == {10, 12, 18, 24, 32}
        assert all(1 <= c.programmable_processors <= 11 for c in configs)
        assert all(1 <= c.buses <= 8 for c in configs)
        distributions = {c.execution_time_distribution for c in configs}
        assert distributions == {"uniform", "exponential"}

    def test_custom_paths_options(self):
        configs = paper_experiment_configs(60, 2, paths_options=[3, 4])
        assert {c.alternative_paths for c in configs} == {3, 4}

    def test_configs_generate_valid_systems(self):
        config = paper_experiment_configs(30, 1, paths_options=[4])[0]
        system = RandomSystemGenerator(config).generate()
        assert PathEnumerator(system.graph).count() == 4
