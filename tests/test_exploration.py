"""Tests of the design-space exploration subsystem.

Covers the candidate algebra, the content-hash evaluation cache, the parallel
evaluation pool (all modes must agree), engine determinism (same seed + config
=> identical best candidate and trajectory) and the validity property: every
mapping the search explores still validates against the architecture.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exploration import (
    CachedEvaluator,
    Candidate,
    CostWeights,
    EvaluationPool,
    ExplorationConfig,
    ExplorationProblem,
    Explorer,
    MaxCycles,
    NeighborhoodSampler,
    evaluate_candidate,
    load_imbalance_of,
)
from repro.generator import generate_system


@pytest.fixture(scope="module")
def problem():
    """A small seeded problem (16 nodes, 2 alternative paths, 4 processors)."""
    return ExplorationProblem.from_system(generate_system(16, 2, seed=3))


@pytest.fixture(scope="module")
def initial(problem):
    return problem.initial_candidate()


class TestCandidate:
    def test_initial_candidate_matches_seed_mapping(self, problem, initial):
        for name, pe_name in initial.assignment:
            assert problem.base_mapping[name].name == pe_name
        assert set(dict(initial.assignment)) == set(problem.movable_processes)

    def test_fingerprint_is_content_based(self, initial):
        twin = Candidate(
            assignment=initial.assignment,
            priority_function=initial.priority_function,
        )
        assert twin.fingerprint == initial.fingerprint
        assert twin == initial

    def test_reassigned_and_swapped(self, problem, initial):
        process = problem.movable_processes[0]
        target = next(
            pe for pe in problem.processor_names if pe != initial.pe_of(process)
        )
        moved = initial.reassigned(process, target)
        assert moved.pe_of(process) == target
        assert initial.pe_of(process) != target  # origin untouched
        assert moved.fingerprint != initial.fingerprint

        first, second = problem.movable_processes[:2]
        swapped = initial.swapped(first, second)
        assert swapped.pe_of(first) == initial.pe_of(second)
        assert swapped.pe_of(second) == initial.pe_of(first)

    def test_reassigning_unknown_process_raises(self, initial):
        with pytest.raises(KeyError):
            initial.reassigned("not-a-process", "pe1")

    def test_bias_cancellation_restores_fingerprint(self, problem, initial):
        process = problem.movable_processes[0]
        biased = initial.with_bias(process, 2.0)
        assert biased.fingerprint != initial.fingerprint
        restored = biased.with_bias(process, -2.0)
        assert restored.fingerprint == initial.fingerprint

    def test_mapping_roundtrip(self, problem, initial):
        mapping = problem.mapping_for(initial)
        again = Candidate.from_mapping(mapping, problem.movable_processes)
        assert again.fingerprint == initial.fingerprint


class TestEvaluation:
    def test_seed_evaluation_is_feasible(self, problem, initial):
        evaluation = evaluate_candidate(problem, initial)
        assert evaluation.feasible
        assert evaluation.delta_max >= evaluation.delta_m > 0
        assert evaluation.paths == 2
        assert evaluation.cost == pytest.approx(evaluation.delta_max)

    def test_weights_combine_components(self, problem, initial):
        weighted = evaluate_candidate(
            problem,
            initial,
            CostWeights(delta_max=1.0, mean_path_delay=2.0, load_imbalance=3.0),
        )
        assert weighted.cost == pytest.approx(
            weighted.delta_max
            + 2.0 * weighted.mean_path_delay
            + 3.0 * weighted.load_imbalance
        )

    def test_load_imbalance_bounds(self, problem, initial):
        imbalance = load_imbalance_of(problem, initial)
        assert imbalance >= 0.0

    def test_cache_counts_hits_and_misses(self, problem, initial):
        evaluator = CachedEvaluator(problem)
        first = evaluator.evaluate(initial)
        second = evaluator.evaluate(initial)
        assert first == second
        assert evaluator.stats.hits == 1
        assert evaluator.stats.misses == 1
        assert evaluator.stats.size == 1

    def test_batch_deduplicates_before_evaluating(self, problem, initial):
        moved = initial.reassigned(
            problem.movable_processes[0],
            next(
                pe
                for pe in problem.processor_names
                if pe != initial.pe_of(problem.movable_processes[0])
            ),
        )
        evaluator = CachedEvaluator(problem)
        results = evaluator.evaluate_many([initial, moved, initial, moved])
        assert results[0] == results[2] and results[1] == results[3]
        assert evaluator.stats.misses == 2
        assert evaluator.stats.hits == 2

    def test_disabled_cache_always_misses(self, problem, initial):
        evaluator = CachedEvaluator(problem, cache=False)
        evaluator.evaluate(initial)
        evaluator.evaluate(initial)
        assert evaluator.stats.misses == 2
        assert evaluator.stats.hits == 0


class TestEvaluationPool:
    @pytest.fixture(scope="class")
    def batch(self, problem, initial):
        rng = random.Random(7)
        sampled = NeighborhoodSampler(problem).sample(initial, rng, 6)
        return [candidate for _, candidate in sampled]

    @pytest.fixture(scope="class")
    def serial_results(self, problem, batch):
        return EvaluationPool(problem, mode="serial").evaluate(batch)

    def test_thread_mode_matches_serial(self, problem, batch, serial_results):
        with EvaluationPool(problem, workers=2, mode="thread") as pool:
            assert pool.evaluate(batch) == serial_results

    def test_process_mode_matches_serial(self, problem, batch, serial_results):
        with EvaluationPool(problem, workers=2, mode="process") as pool:
            assert pool.evaluate(batch) == serial_results

    def test_single_worker_auto_runs_serially(self, problem):
        pool = EvaluationPool(problem, workers=1)
        assert pool.mode == "serial"

    def test_unknown_mode_rejected(self, problem):
        with pytest.raises(ValueError, match="unknown pool mode"):
            EvaluationPool(problem, mode="quantum")

    def test_weights_mismatch_with_pool_rejected(self, problem):
        pool = EvaluationPool(problem, CostWeights(load_imbalance=50.0), workers=1)
        with pytest.raises(ValueError, match="pool weights"):
            CachedEvaluator(problem, CostWeights(), pool=pool)
        # Matching weights are accepted.
        CachedEvaluator(problem, CostWeights(load_imbalance=50.0), pool=pool)


class _RecordingEvaluator(CachedEvaluator):
    """Evaluator that records every candidate the search asks about."""

    def __init__(self, problem, weights=CostWeights()):
        super().__init__(problem, weights)
        self.seen = []

    def evaluate_many(self, candidates):
        self.seen.extend(candidates)
        return super().evaluate_many(candidates)


class TestEngines:
    @pytest.mark.parametrize("engine", ["tabu", "anneal"])
    def test_deterministic_per_seed(self, problem, engine):
        config = ExplorationConfig(seed=5, max_cycles=6, neighbors_per_cycle=4)
        first = Explorer(problem, config=config).explore(engine)
        second = Explorer(problem, config=config).explore(engine)
        assert first.best_candidate == second.best_candidate
        assert first.best == second.best
        assert first.trajectory == second.trajectory
        assert first.stop_reason == second.stop_reason

    @pytest.mark.parametrize("engine", ["tabu", "anneal"])
    def test_never_worse_than_seed_and_budget_respected(self, problem, engine):
        config = ExplorationConfig(seed=1, max_cycles=5, neighbors_per_cycle=4)
        result = Explorer(problem, config=config).explore(engine)
        assert result.best.cost <= result.initial.cost + 1e-9
        assert result.cycles <= config.max_cycles
        assert result.best.feasible

    @pytest.mark.parametrize("engine", ["tabu", "anneal"])
    def test_every_explored_mapping_validates(self, problem, engine):
        recorder = _RecordingEvaluator(problem)
        config = ExplorationConfig(seed=2, max_cycles=5, neighbors_per_cycle=4)
        Explorer(problem, config=config, evaluator=recorder).explore(engine)
        assert recorder.seen
        processors = set(problem.processor_names)
        for candidate in recorder.seen:
            mapping = problem.mapping_for(candidate)  # raises if invalid
            mapping.validate_for(problem.movable_processes)
            assert set(candidate.assignment_dict.values()) <= processors

    def test_engines_share_the_explorer_cache(self, problem):
        config = ExplorationConfig(seed=3, max_cycles=4, neighbors_per_cycle=4)
        explorer = Explorer(problem, config=config)
        explorer.explore("tabu")
        misses_after_tabu = explorer.evaluator.stats.misses
        second = explorer.explore("anneal")
        # The annealing run starts from the same seed candidate, which must
        # come from the cache (at minimum; usually many more hits).
        assert second.cache.hits > 0
        assert explorer.evaluator.stats.misses >= misses_after_tabu

    def test_unknown_engine_rejected(self, problem):
        with pytest.raises(ValueError, match="unknown engine"):
            Explorer(problem).explore("gradient-descent")

    def test_target_cost_stops_immediately(self, problem, initial):
        seed_cost = evaluate_candidate(problem, initial).cost
        config = ExplorationConfig(seed=0, max_cycles=50, target_cost=seed_cost + 1)
        result = Explorer(problem, config=config).explore("tabu")
        assert result.cycles == 0
        assert "target cost" in result.stop_reason

    def test_stall_criterion_stops_early(self, problem):
        config = ExplorationConfig(
            seed=4, max_cycles=50, neighbors_per_cycle=2, stall_cycles=2
        )
        result = Explorer(problem, config=config).explore("tabu")
        assert result.cycles < 50
        assert ("stalled" in result.stop_reason
                or "cycle budget" in result.stop_reason)

    def test_extra_stopping_criteria_are_honoured(self, problem):
        config = ExplorationConfig(seed=0, max_cycles=50)
        explorer = Explorer(problem, config=config, stopping=[MaxCycles(2)])
        result = explorer.explore("tabu")
        assert result.cycles == 2

    def test_improves_seed_on_forty_node_system(self):
        """The acceptance scenario: a seeded 40-node system must improve."""
        forty = ExplorationProblem.from_system(generate_system(40, 8, seed=0))
        config = ExplorationConfig(seed=0, max_cycles=8, neighbors_per_cycle=6)
        result = Explorer(forty, config=config).explore("tabu")
        assert result.improved
        assert result.best.delta_max < result.initial.delta_max


class TestInfeasibleSeed:
    @pytest.fixture()
    def infeasible_problem(self):
        """Two communicating processes split across processors with no shared bus.

        The seed mapping cannot be expanded (no bus connects pe1 and pe2), so
        its evaluation is infeasible; co-locating the processes is feasible.
        """
        from repro.architecture import Architecture, bus, programmable
        from repro.architecture.mapping import Mapping
        from repro.graph import CPGBuilder

        architecture = Architecture(
            [programmable("pe1"), programmable("pe2")],
            [bus("bus1")],
            connectivity={"bus1": ["pe1"]},
        )
        builder = CPGBuilder("split")
        builder.process("A", 2.0)
        builder.process("B", 3.0)
        builder.edge("A", "B", communication_time=1.0)
        graph = builder.build()
        mapping = Mapping(architecture, {"A": "pe1", "B": "pe2"})
        return ExplorationProblem(graph, mapping)

    def test_seed_scores_infeasible_without_raising(self, infeasible_problem):
        evaluation = evaluate_candidate(
            infeasible_problem, infeasible_problem.initial_candidate()
        )
        assert not evaluation.feasible
        assert evaluation.cost == float("inf")
        assert "bus" in evaluation.error

    def test_explorer_recovers_a_feasible_design_point(self, infeasible_problem):
        config = ExplorationConfig(seed=0, max_cycles=6, neighbors_per_cycle=6)
        result = Explorer(infeasible_problem, config=config).explore("tabu")
        assert not result.initial.feasible
        assert result.best.feasible
        assert result.improved

    def test_explore_json_stays_parseable(self, infeasible_problem, tmp_path, capsys):
        import json as json_module

        from repro.cli import main
        from repro.io import save_system

        path = tmp_path / "split.json"
        save_system(
            path,
            infeasible_problem.graph,
            infeasible_problem.architecture,
            infeasible_problem.base_mapping,
            name="split",
        )
        assert main(["explore", str(path), "--cycles", "4", "--neighbors", "6",
                     "--json"]) == 0
        output = capsys.readouterr().out
        assert "Infinity" not in output  # RFC 8259: Infinity is not JSON
        document = json_module.loads(output)
        assert document["results"][0]["initial"]["feasible"] is False
        assert document["results"][0]["initial"]["cost"] is None


class TestProblemPayload:
    def test_payload_roundtrip_preserves_evaluation(self, problem, initial):
        rebuilt = ExplorationProblem.from_payload(problem.to_payload())
        assert rebuilt.movable_processes == problem.movable_processes
        assert rebuilt.processor_names == problem.processor_names
        original = evaluate_candidate(problem, initial)
        again = evaluate_candidate(rebuilt, rebuilt.initial_candidate())
        assert again == original


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_random_move_sequences_keep_candidates_valid(data):
    """Property: any move sequence yields mappings that still validate."""
    problem = _MOVE_PROBLEM
    sampler = NeighborhoodSampler(problem)
    rng = random.Random(data.draw(st.integers(0, 2**16), label="seed"))
    candidate = problem.initial_candidate()
    for _ in range(data.draw(st.integers(1, 6), label="moves")):
        neighbors = sampler.sample(candidate, rng, 1)
        if not neighbors:
            break
        _, candidate = neighbors[0]
        mapping = problem.mapping_for(candidate)
        mapping.validate_for(problem.movable_processes)
    assert set(candidate.assignment_dict) == set(problem.movable_processes)


#: Module-level problem for the hypothesis test (built once; hypothesis
#: disallows function-scoped fixtures).
_MOVE_PROBLEM = ExplorationProblem.from_system(generate_system(12, 2, seed=9))
