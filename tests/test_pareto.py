"""Tests of the multi-objective primitives: dominance, sorting, fronts.

The non-domination invariant of :class:`repro.exploration.ParetoFront` is the
load-bearing property of every front the library reports — it is checked here
directly, by construction cases and by a hypothesis sweep over random offer
streams.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exploration import (
    CandidateEvaluation,
    ParetoFront,
    crowding_distances,
    dominates,
    non_dominated_sort,
)
from repro.exploration.candidate import Candidate


def _candidate(tag: str) -> Candidate:
    """A tiny distinct candidate per tag (fingerprint differs per mapping)."""
    return Candidate(assignment=(("P1", f"pe{tag}"),))


def _evaluation(tag: str, vector, feasible: bool = True) -> CandidateEvaluation:
    """Build an evaluation from a 4- or 5-component objective vector."""
    delta_max, mean_path_delay, load_imbalance, architecture_cost = vector[:4]
    bus_imbalance = vector[4] if len(vector) > 4 else 0.0
    return CandidateEvaluation(
        fingerprint=_candidate(tag).fingerprint,
        cost=delta_max,
        feasible=feasible,
        delta_max=delta_max,
        delta_m=delta_max,
        mean_path_delay=mean_path_delay,
        load_imbalance=load_imbalance,
        architecture_cost=architecture_cost,
        bus_imbalance=bus_imbalance,
    )


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates((1, 1, 1, 1), (2, 2, 2, 2))

    def test_better_in_one_objective_suffices(self):
        assert dominates((1, 2, 2, 2), (2, 2, 2, 2))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1, 2), (1, 2))

    def test_incomparable_vectors(self):
        assert not dominates((1, 3), (3, 1))
        assert not dominates((3, 1), (1, 3))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="differ in length"):
            dominates((1, 2), (1, 2, 3))


class TestNonDominatedSort:
    def test_layers_match_manual_ranking(self):
        vectors = [(1, 4), (4, 1), (2, 2), (3, 3), (5, 5)]
        fronts = non_dominated_sort(vectors)
        assert fronts[0] == [0, 1, 2]        # mutually incomparable
        assert fronts[1] == [3]              # dominated only by (2, 2)
        assert fronts[2] == [4]              # dominated by everything
        assert sum(len(front) for front in fronts) == len(vectors)

    def test_single_front_when_all_incomparable(self):
        vectors = [(1, 3), (2, 2), (3, 1)]
        assert non_dominated_sort(vectors) == [[0, 1, 2]]

    def test_empty_input(self):
        assert non_dominated_sort([]) == []


class TestCrowdingDistances:
    def test_boundaries_are_infinite(self):
        distances = crowding_distances([(1, 5), (2, 4), (3, 3), (4, 2), (5, 1)])
        assert distances[0] == math.inf and distances[-1] == math.inf
        assert all(0 < d < math.inf for d in distances[1:-1])

    def test_two_points_both_infinite(self):
        assert crowding_distances([(1, 2), (2, 1)]) == [math.inf, math.inf]

    def test_interior_spacing_is_reflected(self):
        # The interior point bordering the big gap is less crowded (larger
        # distance) than the one packed between close neighbours.
        distances = crowding_distances([(0, 10), (1, 9), (2, 8), (10, 0)])
        packed, gap_side = distances[1], distances[2]
        assert 0 < packed < gap_side < math.inf


class TestParetoFront:
    def test_accepts_and_evicts(self):
        front = ParetoFront()
        assert front.offer(_candidate("a"), _evaluation("a", (5, 5, 0, 2)))
        assert front.offer(_candidate("b"), _evaluation("b", (4, 6, 0, 2)))
        assert len(front) == 2  # incomparable: both stay
        # A dominating point evicts both.
        assert front.offer(_candidate("c"), _evaluation("c", (3, 4, 0, 2)))
        assert len(front) == 1
        assert front.vectors() == ((3, 4, 0, 2, 0.0),)

    def test_rejects_dominated_and_duplicate_vectors(self):
        front = ParetoFront()
        front.offer(_candidate("a"), _evaluation("a", (3, 3, 0, 1)))
        assert not front.offer(_candidate("b"), _evaluation("b", (4, 4, 0, 1)))
        assert not front.offer(_candidate("c"), _evaluation("c", (3, 3, 0, 1)))
        assert len(front) == 1
        assert front.offered == 3 and front.accepted == 1

    def test_infeasible_never_enters(self):
        front = ParetoFront()
        assert not front.offer(
            _candidate("x"), _evaluation("x", (0, 0, 0, 0), feasible=False)
        )
        assert len(front) == 0

    def test_points_sorted_by_objectives(self):
        front = ParetoFront()
        front.offer(_candidate("a"), _evaluation("a", (5, 1, 0, 2)))
        front.offer(_candidate("b"), _evaluation("b", (1, 5, 0, 2)))
        front.offer(_candidate("c"), _evaluation("c", (3, 3, 0, 2)))
        assert front.vectors() == (
            (1, 5, 0, 2, 0.0),
            (3, 3, 0, 2, 0.0),
            (5, 1, 0, 2, 0.0),
        )


@settings(max_examples=200, deadline=None)
@given(
    vectors=st.lists(
        st.tuples(
            st.integers(0, 6), st.integers(0, 6), st.integers(0, 6),
            st.integers(0, 6), st.integers(0, 6),
        ),
        min_size=0,
        max_size=25,
    )
)
def test_front_invariant_under_random_offer_streams(vectors):
    """Property: after any offer stream, no front point dominates another,
    and every rejected/evicted vector is dominated by (or equal to) a point."""
    front = ParetoFront()
    for index, vector in enumerate(vectors):
        front.offer(_candidate(str(index)), _evaluation(str(index), vector))
    kept = front.vectors()
    for i, a in enumerate(kept):
        for j, b in enumerate(kept):
            if i != j:
                assert not dominates(a, b), (a, b)
    # Completeness: every offered vector is represented — either on the front
    # or dominated by / equal to something on it.
    for vector in vectors:
        float_vector = tuple(float(x) for x in vector)
        assert any(
            point == float_vector or dominates(point, float_vector)
            for point in kept
        ), (vector, kept)
