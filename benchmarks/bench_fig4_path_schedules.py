"""Fig. 4 — optimal and adjusted schedules of two alternative paths of Fig. 1.

The paper illustrates the adjustment step with the optimal schedules of the
paths ``D & C & K`` and ``D & C & !K`` and the adjusted version of the latter
after the back-step on condition K.  This benchmark regenerates the same three
Gantt charts: the two optimal per-path schedules and the adjusted schedule in
which every activation time already fixed in the table (in columns that do not
depend on K) is locked.
"""

from __future__ import annotations

from repro.analysis import render_gantt
from repro.conditions import Condition
from repro.graph import PathEnumerator
from repro.scheduling import PathListScheduler

from conftest import write_result

C = Condition("C")
D = Condition("D")
K = Condition("K")


def test_fig4_optimal_and_adjusted_schedules(benchmark, fig1_example, fig1_result):
    example = fig1_example
    enumerator = PathEnumerator(example.graph)
    scheduler = PathListScheduler(
        example.graph, example.expanded_mapping, example.architecture
    )

    path_k_true = enumerator.path_for({C: True, D: True, K: True})
    path_k_false = enumerator.path_for({C: True, D: True, K: False})
    optimal_true = scheduler.schedule(path_k_true)
    optimal_false = scheduler.schedule(path_k_false)

    # Locks for the adjusted schedule: every activation time already placed in
    # a column that only depends on conditions decided before the K branch.
    known = {C: True, D: True}
    locked = {}
    for name in fig1_result.table.process_names:
        for entry in fig1_result.table.process_entries(name):
            if entry.column.conditions <= set(known) and entry.column.satisfied_by_partial(known):
                if path_k_false.includes(name):
                    locked[name] = entry.start
                break

    def adjust():
        return scheduler.schedule(
            path_k_false,
            locked_starts=locked,
            order_hint={n: t.start for n, t in optimal_false.tasks.items()},
        )

    adjusted = benchmark(adjust)

    lines = ["Fig. 4 (reproduction): optimal and adjusted path schedules", ""]
    lines.append(render_gantt(
        optimal_true, example.architecture, width=72,
        title=f"a) optimal schedule of path {path_k_true.label} (delay {optimal_true.delay:g})",
    ))
    lines.append("")
    lines.append(render_gantt(
        optimal_false, example.architecture, width=72,
        title=f"b) optimal schedule of path {path_k_false.label} (delay {optimal_false.delay:g})",
    ))
    lines.append("")
    lines.append(render_gantt(
        adjusted, example.architecture, width=72,
        title=(f"c) adjusted schedule of path {path_k_false.label} after the back-step on K "
               f"(delay {adjusted.delay:g}, {len(locked)} locked activation times)"),
    ))
    write_result("fig4_path_schedules", "\n".join(lines))

    adjusted.validate_resources()
    # Locked processes keep their previously fixed start times in the adjusted schedule.
    for name, start in locked.items():
        assert abs(adjusted.start_of(name) - start) < 1e-6
    # The adjustment may only delay the path with respect to its optimal schedule.
    assert adjusted.delay >= optimal_false.delay - 1e-9
