"""Table 1 — the schedule table of the Fig. 1 example.

Regenerates the global schedule table for the paper's worked example and
reports the rows shown in Table 1 (P1, P2, P10, P11, P14, P17, selected
communication processes and the three condition broadcasts) together with the
worst-case delay the table guarantees.  The benchmark times the complete
pipeline: path enumeration, per-path list scheduling and schedule merging.
"""

from __future__ import annotations

from repro.analysis import format_condition_rows, format_schedule_table, schedule_table_summary
from repro.data import PAPER_WORST_CASE_DELAY
from repro.scheduling import ScheduleMerger
from repro.simulation import validate_merge_result

from conftest import write_result

TABLE1_ROWS = ["P1", "P2", "P10", "P11", "P14", "P17"]


def test_table1_schedule_table(benchmark, fig1_example):
    example = fig1_example

    def generate():
        merger = ScheduleMerger(
            example.graph, example.expanded_mapping, example.architecture
        )
        return merger.merge()

    result = benchmark(generate)
    validate_merge_result(
        example.graph, example.expanded_mapping, result, example.architecture
    )

    summary = schedule_table_summary(result.table)
    comm_rows = [
        name
        for name in result.table.process_names
        if example.graph[name].is_communication
    ][:3]
    lines = [
        "Table 1 (reproduction): schedule table of the Fig. 1 example",
        f"rows: {summary['rows']:.0f}, columns: {summary['columns']:.0f}, "
        f"activation times: {summary['entries']:.0f}",
        "",
        format_schedule_table(result.table, process_order=TABLE1_ROWS + comm_rows),
        "",
        "condition broadcasts:",
        format_condition_rows(result.table),
        "",
        f"delta_M   = {result.delta_m:g}",
        f"delta_max = {result.delta_max:g}",
        f"paper's delta_max = {PAPER_WORST_CASE_DELAY:g} "
        "(absolute values differ because the intra-processor edges of Fig. 1 "
        "are not published; see EXPERIMENTS.md)",
    ]
    write_result("table1_schedule_table", "\n".join(lines))

    assert result.delta_max >= result.delta_m - 1e-9
    assert 25 <= result.delta_max <= 60
