"""Resilient runtime — fault-free overhead of the armed evaluation path.

Harness view of the ``resilience`` record in ``BENCH_core.json``: scores a
fault-free prefix of the seeded move-local candidate stream through the bare
staged loop and through an armed serial
:class:`repro.exploration.EvaluationPool` (retry policy + periodic checkpoint
writes), renders the comparison, and asserts the overhead stays under the
noise-tolerant gate ceiling alongside the bit-identity of the two arms.  A
second test exercises the other half of the resilience claim: a seeded
fault-injected evaluation returns bit-identical results to the fault-free
run.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis import format_table
from repro.exploration import EvaluationPool, FaultInjector, RetryPolicy

from conftest import write_result

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

from run_benchmarks import (  # noqa: E402
    RESILIENCE_GATE_OVERHEAD,
    RESILIENCE_WORKLOAD,
    _incremental_problem_and_stream,
    _measure_resilience,
)


def test_resilience_overhead():
    record = _measure_resilience()
    spec = RESILIENCE_WORKLOAD
    rows = [[
        f"{spec['stream_length']} fault-free candidates",
        record["bare_seconds"],
        record["armed_seconds"],
        f"{record['overhead_percent']:+g}%",
        record["checkpoint_saves"],
    ]]
    write_result(
        "resilience_overhead",
        format_table(
            "Resilient runtime: armed evaluation (retry policy + periodic "
            "checkpoints) vs the bare staged loop, fault-free",
            ["stream", "bare (s)", "armed (s)", "overhead",
             "checkpoint saves"],
            rows,
        ),
    )
    # _measure_resilience already asserted bit-identical evaluations per
    # repeat; keep the same noise-tolerant ceiling as the --check gate.
    assert record["overhead_percent"] <= RESILIENCE_GATE_OVERHEAD


def test_faulted_evaluation_is_bit_identical():
    problem, stream = _incremental_problem_and_stream()
    sample = stream[:20]
    clean = EvaluationPool(problem, mode="serial").evaluate(sample)
    faulted_pool = EvaluationPool(
        problem,
        mode="serial",
        retry=RetryPolicy(max_attempts=10, backoff_base=0.0),
        fault_injector=FaultInjector(
            seed=2, crash_rate=0.1, hang_rate=0.05, exit_rate=0.05,
            hang_seconds=0.01,
        ),
    )
    assert faulted_pool.evaluate(sample) == clean
    assert faulted_pool.resilience_stats.quarantined == 0
