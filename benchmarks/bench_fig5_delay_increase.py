"""Fig. 5 — increase of the worst-case delay over the ideal per-path delay.

The paper merges the schedules of 1080 randomly generated graphs (360 per size
in {60, 80, 120} nodes, with 10/12/18/24/32 alternative paths) and reports the
average percentage increase of ``delta_max`` over ``delta_M`` together with the
fraction of graphs whose increase is zero.  This benchmark regenerates that
experiment on the paper's full parameter grid with a reduced number of graphs
per setting (set ``REPRO_BENCH_GRAPHS=72`` to reach the paper's 1080 graphs)
and times the merging of one representative graph.
"""

from __future__ import annotations

from repro.analysis import aggregate, format_series
from repro.generator import RandomSystemGenerator, paper_experiment_configs
from repro.scheduling import ScheduleMerger

from conftest import bench_scale, write_result


def run_setting(nodes, paths_options, graphs_per_setting):
    configs = paper_experiment_configs(
        nodes, graphs_per_setting, paths_options=paths_options, base_seed=nodes
    )
    results_by_paths = {}
    for config in configs:
        system = RandomSystemGenerator(config).generate()
        result = ScheduleMerger(
            system.graph, system.expanded_mapping, system.architecture
        ).merge()
        results_by_paths.setdefault(config.alternative_paths, []).append(result)
    return results_by_paths


def test_fig5_delay_increase(benchmark):
    # The full paper grid (3 sizes x 5 path counts) is cheap enough to run by
    # default; REPRO_BENCH_GRAPHS controls how many graphs per setting are used.
    sizes = [60, 80, 120]
    paths_options = [10, 12, 18, 24, 32]
    graphs_per_setting = bench_scale()

    increase_series = {}
    zero_series = {}
    all_results = []
    for nodes in sizes:
        by_paths = run_setting(nodes, paths_options, graphs_per_setting)
        label = f"{nodes} nodes"
        increase_series[label] = {}
        zero_series[label] = {}
        for paths, results in sorted(by_paths.items()):
            stats = aggregate(results)
            increase_series[label][paths] = stats.average_increase_percent
            zero_series[label][paths] = 100.0 * stats.zero_increase_fraction
            all_results.extend(results)

    lines = [
        "Fig. 5 (reproduction): increase of delta_max over delta_M",
        f"graphs per (size, paths) setting: {graphs_per_setting} "
        f"(paper: 72 per setting, 1080 total)",
        "",
        format_series(
            "average increase of delta_max over delta_M (%)",
            "merged schedules",
            increase_series,
        ),
        "",
        format_series(
            "graphs with zero increase (%) "
            "(paper: 90/82/57/46/33% for 10/12/18/24/32 paths)",
            "merged schedules",
            zero_series,
        ),
        "",
        "note: our per-path list scheduler is a non-delay heuristic, so the "
        "merged table matches delta_M even more often than in the paper; the "
        "paper's qualitative claim (increase is small and grows with the number "
        "of merged schedules, independent of graph size) is preserved.",
    ]
    write_result("fig5_delay_increase", "\n".join(lines))

    # Every measured increase must be non-negative and small.
    overall = aggregate(all_results)
    assert overall.count == len(sizes) * len(paths_options) * graphs_per_setting
    assert all(value >= -1e-9 for value in overall.increases)
    assert overall.average_increase_percent <= 10.0

    # Benchmark one representative merge (60 nodes, most paths in the sweep).
    config = paper_experiment_configs(60, 1, paths_options=[paths_options[-1]])[0]
    system = RandomSystemGenerator(config).generate()

    def merge_once():
        return ScheduleMerger(
            system.graph, system.expanded_mapping, system.architecture
        ).merge()

    result = benchmark(merge_once)
    assert result.delta_max >= result.delta_m - 1e-9
