"""Exploration — engine comparison and evaluator speedup on a seeded system.

Beyond the paper (which takes the mapping as an upstream input), this
benchmark exercises the design-space exploration subsystem: tabu search vs
simulated annealing over the mapping/priority space of a seeded random
system, plus the evaluator-layer measurement (content-hash cache + parallel
pool vs naive sequential re-evaluation) whose committed trajectory lives in
``BENCH_core.json`` under the ``exploration`` key.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis import format_exploration_comparison, format_table
from repro.exploration import ExplorationConfig, ExplorationProblem, Explorer
from repro.generator import generate_system

from conftest import write_result

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

from run_benchmarks import EXPLORATION_WORKLOAD, _measure_exploration  # noqa: E402


def test_exploration_engines(benchmark):
    system = generate_system(40, 8, seed=0)
    problem = ExplorationProblem.from_system(system)
    config = ExplorationConfig(seed=0, max_cycles=15, neighbors_per_cycle=6)
    explorer = Explorer(problem, config=config)
    results = [explorer.explore(engine) for engine in ("tabu", "anneal")]

    lines = [
        format_exploration_comparison(
            "Exploration: tabu vs annealing on a 40-node, 8-path system "
            "(seed 0, shared cache)",
            results,
        )
    ]
    write_result("exploration_engines", "\n".join(lines))

    # Both engines must at least not regress the seed design point, and the
    # budget must be respected.
    for result in results:
        assert result.best.cost <= result.initial.cost + 1e-9
        assert result.cycles <= config.max_cycles

    # pytest-benchmark timing of one short tabu run (fresh cache each round).
    def explore_once():
        fresh = Explorer(
            problem,
            config=ExplorationConfig(seed=0, max_cycles=4, neighbors_per_cycle=4),
        )
        return fresh.explore("tabu")

    benchmark(explore_once)


def test_exploration_evaluator_speedup():
    record = _measure_exploration()
    rows = [[
        f"{EXPLORATION_WORKLOAD['nodes']} nodes",
        record["stream_length"],
        record["distinct_candidates"],
        record["workers"],
        record["naive_seconds"],
        record["optimised_seconds"],
        f"{record['speedup']}x",
    ]]
    write_result(
        "exploration_evaluator_speedup",
        format_table(
            "Exploration evaluator: cache + pool vs naive sequential "
            "re-evaluation",
            ["system", "requests", "distinct", "workers", "naive (s)",
             "cached (s)", "speedup"],
            rows,
        ),
    )
    # The cache alone removes the revisit passes; any parallel headroom is on
    # top.  Keep a conservative floor so busy hosts do not flake.
    assert record["speedup"] >= 1.5
