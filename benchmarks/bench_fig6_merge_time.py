"""Fig. 6 — execution time of the schedule-merging algorithm.

The paper plots the average run time of the merging step against the number of
merged schedules for graphs of 60, 80 and 120 nodes (0.05–0.25 s on a
SPARCstation 20).  This benchmark measures the same quantity on the host
machine: absolute numbers differ, but the time must grow with the number of
merged schedules and stay far below a second per graph.
"""

from __future__ import annotations

import time

from repro.analysis import format_series
from repro.generator import RandomSystemGenerator, paper_experiment_configs
from repro.scheduling import ScheduleMerger

from conftest import bench_scale, write_result


def measure_merge_time(nodes, paths, samples, base_seed):
    configs = paper_experiment_configs(
        nodes, samples, paths_options=[paths], base_seed=base_seed
    )
    timings = []
    for config in configs:
        system = RandomSystemGenerator(config).generate()
        merger = ScheduleMerger(
            system.graph, system.expanded_mapping, system.architecture
        )
        started = time.perf_counter()
        merger.merge()
        timings.append(time.perf_counter() - started)
    return sum(timings) / len(timings)


def test_fig6_merge_time(benchmark):
    # The full paper grid (3 sizes x 5 path counts) is cheap enough to run by
    # default; REPRO_BENCH_GRAPHS controls how many graphs per setting are used.
    sizes = [60, 80, 120]
    paths_options = [10, 12, 18, 24, 32]
    samples = bench_scale()

    series = {}
    for nodes in sizes:
        series[f"{nodes} nodes"] = {
            paths: measure_merge_time(nodes, paths, samples, base_seed=nodes + paths)
            for paths in paths_options
        }

    lines = [
        "Fig. 6 (reproduction): execution time of schedule merging",
        f"samples per point: {samples}; host machine, not a SPARCstation 20",
        "",
        format_series(
            "average merge time (s)", "merged schedules", series, value_format="{:.3f}"
        ),
        "",
        "paper: 0.05 s to 0.25 s, growing with the number of merged schedules.",
    ]
    write_result("fig6_merge_time", "\n".join(lines))

    # The qualitative claim: merging more schedules costs more time.
    for label, values in series.items():
        ordered = [values[p] for p in sorted(values)]
        assert ordered[-1] >= ordered[0] * 0.5, (
            f"merge time for {label} should not collapse as paths increase"
        )

    # pytest-benchmark timing of one representative setting (60 nodes, 12 paths).
    config = paper_experiment_configs(60, 1, paths_options=[12], base_seed=7)[0]
    system = RandomSystemGenerator(config).generate()

    def merge_once():
        return ScheduleMerger(
            system.graph, system.expanded_mapping, system.architecture
        ).merge()

    benchmark(merge_once)
