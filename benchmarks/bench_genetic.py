"""Genetic engine — Pareto fronts and architecture sizing on seeded systems.

Beyond the paper (which fixes the architecture and minimises the single
worst-case delay), this benchmark exercises the NSGA-style genetic engine:
a population search over the mapping/priority/platform space reporting the
non-dominated front over ``(delta_max, mean path delay, load imbalance,
architecture cost)``.  The committed trajectory lives in ``BENCH_core.json``
under the ``genetic`` key, whose frozen front vectors double as a per-seed
determinism anchor for ``scripts/run_benchmarks.py --check``.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis import format_pareto_front, format_table
from repro.exploration import (
    ArchitectureBounds,
    ExplorationConfig,
    ExplorationProblem,
    Explorer,
    dominates,
)
from repro.generator import generate_system

from conftest import write_result

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

from run_benchmarks import GENETIC_WORKLOAD, _measure_genetic  # noqa: E402


def _sized_problem() -> ExplorationProblem:
    spec = GENETIC_WORKLOAD
    system = generate_system(
        spec["nodes"], spec["alternative_paths"], seed=spec["seed"]
    )
    return ExplorationProblem.from_system(system, bounds=ArchitectureBounds())


def test_genetic_front(benchmark):
    problem = _sized_problem()
    config = ExplorationConfig(
        seed=GENETIC_WORKLOAD["seed"],
        max_cycles=GENETIC_WORKLOAD["generations"],
        population_size=GENETIC_WORKLOAD["population"],
        track_front=True,
    )
    result = Explorer(problem, config=config).explore("genetic")

    write_result(
        "genetic_front",
        format_pareto_front(
            f"Genetic engine: non-dominated front over "
            f"{result.evaluations} evaluations "
            f"({GENETIC_WORKLOAD['nodes']} nodes, architecture sizing on)",
            result.front,
        ),
    )

    # The front must be non-empty, mutually non-dominated, and no worse than
    # the seed design point on the scalar cost.
    vectors = result.front.vectors()
    assert vectors
    for i, a in enumerate(vectors):
        for j, b in enumerate(vectors):
            if i != j:
                assert not dominates(a, b), (a, b)
    assert result.best.cost <= result.initial.cost + 1e-9

    # Determinism: a second explorer reproduces the exact front.
    again = Explorer(problem, config=config).explore("genetic")
    assert again.front.vectors() == vectors

    # pytest-benchmark timing of one short genetic run (fresh cache each
    # round so population evaluation cost is actually measured).
    def genetic_once():
        fresh = Explorer(
            problem,
            config=ExplorationConfig(
                seed=0, max_cycles=2, population_size=6, track_front=True
            ),
        )
        return fresh.explore("genetic")

    benchmark(genetic_once)


def test_genetic_workload_record():
    record = _measure_genetic()
    write_result(
        "genetic_workload",
        format_table(
            "Genetic workload (the BENCH_core.json 'genetic' record)",
            ["nodes", "generations", "population", "evaluations",
             "front", "seconds"],
            [[
                record["nodes"],
                record["generations"],
                record["population"],
                record["evaluations"],
                record["front_size"],
                record["engine_seconds"],
            ]],
        ),
    )
    assert record["front_size"] >= 2
    assert record["evaluations"] > 0
