"""Table 2 — worst-case delays of the ATM OAM block on alternative architectures.

Regenerates the paper's case study: the three OAM operating modes are scheduled
on ten architecture variants (one or two 486DX2-80/Pentium-120 processors, one
or two memory modules) and the resulting worst-case delays are tabulated next
to the paper's published numbers.  Absolute nanoseconds differ (the VHDL
process graphs are synthetic reconstructions — see DESIGN.md), but the
architecture-selection conclusions must match.  The benchmark times the
evaluation of one mode on one architecture.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.atm import (
    PAPER_TABLE2,
    OAMArchitectureConfig,
    build_all_modes,
    evaluate_mode,
    evaluate_table2,
    table2_architecture_configs,
    table2_delays,
)

from conftest import write_result


@pytest.fixture(scope="module")
def measured_table2():
    return table2_delays(evaluate_table2())


def test_table2_atm_oam(benchmark, measured_table2):
    delays = measured_table2
    configs = table2_architecture_configs()

    headers = ["architecture"]
    for mode in (1, 2, 3):
        headers += [f"mode{mode} (ours)", f"mode{mode} (paper)"]
    rows = []
    for config in configs:
        row = [config.label]
        for mode in (1, 2, 3):
            row.append(round(delays[mode][config.label], 1))
            row.append(PAPER_TABLE2[mode][config.label])
        rows.append(row)

    conclusions = [
        "",
        "qualitative checks (the conclusions of Section 6):",
        f"  faster CPU helps every mode: mode1 {delays[1]['1P/1M 486']:.0f} -> "
        f"{delays[1]['1P/1M Pentium']:.0f}, mode2 {delays[2]['1P/1M 486']:.0f} -> "
        f"{delays[2]['1P/1M Pentium']:.0f}, mode3 {delays[3]['1P/1M 486']:.0f} -> "
        f"{delays[3]['1P/1M Pentium']:.0f}",
        f"  second CPU: helps mode1 ({delays[1]['1P/1M 486']:.0f} -> "
        f"{delays[1]['2P/1M 2x486']:.0f}), never helps mode2, helps mode3 only on 486 "
        f"({delays[3]['1P/1M 486']:.0f} -> {delays[3]['2P/1M 2x486']:.0f}; Pentium "
        f"{delays[3]['1P/1M Pentium']:.0f} unchanged)",
        f"  second memory module: irrelevant for modes 2/3 and for single-CPU mode1; "
        f"pays off for mode1 on two Pentiums ({delays[1]['2P/1M 2xPentium']:.0f} -> "
        f"{delays[1]['2P/2M 2xPentium']:.0f})",
    ]
    text = format_table(
        "Table 2 (reproduction): worst-case delay of the OAM block (ns)", headers, rows
    )
    write_result("table2_atm_oam", text + "\n" + "\n".join(conclusions))

    # Key qualitative relations asserted (details are covered in tests/test_atm.py).
    assert delays[2]["2P/1M 2x486"] == pytest.approx(delays[2]["1P/1M 486"])
    assert delays[1]["2P/1M 2x486"] < delays[1]["1P/1M 486"]
    assert delays[3]["2P/1M 2x486"] < delays[3]["1P/1M 486"]
    assert delays[3]["2P/1M 2xPentium"] == pytest.approx(delays[3]["1P/1M Pentium"])
    assert delays[1]["2P/2M 2xPentium"] < delays[1]["2P/1M 2xPentium"]

    # Benchmark one evaluation (mode 2 on the single-Pentium architecture).
    mode2 = build_all_modes()[1]
    config = OAMArchitectureConfig(("Pentium",), 1)
    benchmark(lambda: evaluate_mode(mode2, config))
