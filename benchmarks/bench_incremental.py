"""Incremental evaluation — staged stage-cache speedup on a move-local stream.

Harness view of the ``incremental`` record in ``BENCH_core.json``: scores the
same seeded move-local candidate stream (one process remapped or one message
repinned per step) through the full expand-schedule-merge pipeline and through
the sub-fingerprint stage caches (:class:`repro.exploration.StageCache`),
renders the comparison plus the per-stage hit rates, and asserts a
conservative speedup floor alongside the bit-identity of the two arms.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis import format_table
from repro.exploration import StageCache, evaluate_candidate

from conftest import write_result

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

from run_benchmarks import (  # noqa: E402
    INCREMENTAL_MIN_SPEEDUP,
    INCREMENTAL_WORKLOAD,
    _incremental_problem_and_stream,
    _measure_incremental,
)


def test_incremental_evaluation_speedup():
    record = _measure_incremental()
    spec = INCREMENTAL_WORKLOAD
    rows = [[
        f"{spec['nodes']} nodes / {spec['programmable_processors']} PEs",
        record["distinct_candidates"],
        record["full_seconds"],
        record["incremental_seconds"],
        f"{record['speedup']}x",
        f"{record['structure_hits']}/{record['structure_hits'] + record['structure_misses']}",
        f"{record['schedule_hits']}/{record['schedule_hits'] + record['schedule_misses']}",
    ]]
    write_result(
        "incremental_evaluation_speedup",
        format_table(
            "Incremental evaluation: staged stage caches vs full pipeline "
            "on a move-local candidate stream",
            ["system", "candidates", "full (s)", "staged (s)", "speedup",
             "structure hits", "schedule hits"],
            rows,
        ),
    )
    # _measure_incremental already asserted bit-identical evaluations per
    # repeat; keep the same noise-tolerant floor as the --check gate.
    assert record["speedup"] >= INCREMENTAL_MIN_SPEEDUP


def test_incremental_evaluation_is_bit_identical():
    problem, stream = _incremental_problem_and_stream()
    sample = stream[:20]
    cache = StageCache()
    staged = [
        evaluate_candidate(problem, candidate, stage_cache=cache)
        for candidate in sample
    ]
    full = [evaluate_candidate(problem, candidate) for candidate in sample]
    assert staged == full
    stats = cache.stats
    assert stats.schedule_hits > 0, "a move-local stream must reuse schedules"
