"""Ablation — what the conditional behaviour of the schedule table buys.

Not a table of the paper, but the comparison its introduction motivates: the
schedule table exploits condition values as they become known, while a
condition-blind scheduler (the dataflow-only related work of Section 1) must
execute both branches of every disjunction.  For the Fig. 1 example and a few
generated graphs this benchmark reports

* the contention-free critical-path lower bound,
* ``delta_M`` (largest per-path list-schedule delay — the ideal),
* ``delta_max`` of the merged schedule table (this paper), and
* the condition-blind static schedule length (upper baseline),

so the margin between the table and both baselines is visible.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.baselines import critical_path_lower_bound, schedule_unconditionally
from repro.generator import generate_system
from repro.scheduling import ScheduleMerger

from conftest import write_result


def evaluate(name, graph, mapping, architecture):
    result = ScheduleMerger(graph, mapping, architecture).merge()
    blind = schedule_unconditionally(graph, mapping, architecture)
    bound = critical_path_lower_bound(graph, mapping)
    return {
        "name": name,
        "lower_bound": bound,
        "delta_m": result.delta_m,
        "delta_max": result.delta_max,
        "condition_blind": blind.delay,
    }


def test_ablation_against_baselines(benchmark, fig1_example):
    rows = []
    fig1_row = evaluate(
        "fig1",
        fig1_example.graph,
        fig1_example.expanded_mapping,
        fig1_example.architecture,
    )
    rows.append(fig1_row)
    for seed, paths in ((11, 4), (12, 6), (13, 8)):
        system = generate_system(30, paths, seed=seed)
        rows.append(
            evaluate(
                f"random-{paths}paths",
                system.graph,
                system.expanded_mapping,
                system.architecture,
            )
        )

    table_rows = [
        [
            row["name"],
            round(row["lower_bound"], 1),
            round(row["delta_m"], 1),
            round(row["delta_max"], 1),
            round(row["condition_blind"], 1),
            f"{row['condition_blind'] / row['delta_max']:.2f}x",
        ]
        for row in rows
    ]
    text = format_table(
        "Ablation: schedule table vs. condition-blind scheduling",
        ["system", "critical path", "delta_M", "delta_max", "condition-blind", "blind/table"],
        table_rows,
    )
    write_result("ablation_baselines", text)

    for row in rows:
        assert row["lower_bound"] <= row["delta_max"] + 1e-9
        assert row["delta_m"] <= row["delta_max"] + 1e-9
        # The condition-blind schedule executes every process but is free of the
        # condition-knowledge waiting the table must respect, so it is not a
        # strict upper bound in theory; in practice it should never be far
        # below the table's guaranteed worst case.
        assert row["condition_blind"] >= 0.9 * row["delta_max"]

    benchmark(
        lambda: schedule_unconditionally(
            fig1_example.graph, fig1_example.expanded_mapping, fig1_example.architecture
        )
    )
