"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation section.  Besides timing the relevant computation with
pytest-benchmark, each module renders the reproduced rows/series as text and
stores them under ``benchmarks/results/`` so they can be inspected after a run
and quoted in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def write_result(name: str, text: str) -> None:
    """Persist a reproduced table/figure and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}] written to {path}\n{text}\n")


def bench_scale() -> int:
    """Number of graphs per setting for the randomised benchmarks.

    Defaults to a small value so the harness finishes quickly; set
    ``REPRO_BENCH_GRAPHS`` (e.g. to 72) to approach the paper's 360 graphs per
    size, at a proportional cost in run time.
    """
    return max(1, int(os.environ.get("REPRO_BENCH_GRAPHS", "2")))


def full_sweep() -> bool:
    """Whether extra-expensive sweeps were requested explicitly (REPRO_BENCH_FULL=1).

    The Fig. 5 / Fig. 6 benchmarks always run the paper's full parameter grid;
    this switch is kept so future benchmarks can guard genuinely expensive
    extras behind it.
    """
    return bool(os.environ.get("REPRO_BENCH_FULL"))


@pytest.fixture(scope="session")
def fig1_example():
    from repro.data import load_fig1_example

    return load_fig1_example()


@pytest.fixture(scope="session")
def fig1_result(fig1_example):
    from repro.scheduling import ScheduleMerger

    return ScheduleMerger(
        fig1_example.graph, fig1_example.expanded_mapping, fig1_example.architecture
    ).merge()
