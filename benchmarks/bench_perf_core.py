"""Perf core — merge wall-time vs. process count on the scaling presets.

Beyond the paper's Fig. 6 grid (which stops at 120-node graphs), this
benchmark drives ``ScheduleMerger.merge`` across the ``LARGE_SCALE_PRESETS``
random systems up to 480 generated nodes (~840 expanded processes) and
compares each point against the frozen seed-implementation baseline recorded
in ``scripts/run_benchmarks.py``.  The committed perf trajectory lives in
``BENCH_core.json`` at the repository root; this module renders the same
measurements through the benchmark harness so they land next to the other
reproduced figures under ``benchmarks/results/``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.generator import LARGE_SCALE_PRESETS, large_scale_system
from repro.scheduling import ScheduleMerger

from conftest import write_result

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

from run_benchmarks import SEED_MERGE_SECONDS  # noqa: E402


def measure_preset(preset: str, repeats: int = 3):
    system = large_scale_system(preset)
    best = float("inf")
    for _ in range(repeats):
        merger = ScheduleMerger(
            system.graph, system.expanded_mapping, system.architecture
        )
        started = time.perf_counter()
        merger.merge()
        best = min(best, time.perf_counter() - started)
    return len(system.graph), best


def test_perf_core_merge_scaling(benchmark):
    lines = [
        "Perf core: ScheduleMerger.merge wall-time vs. process count",
        "presets: LARGE_SCALE_PRESETS (60..480 generated nodes); best of 3",
        "",
        f"{'preset':>8} {'processes':>10} {'merge (s)':>10} {'seed (s)':>9} {'speedup':>8}",
    ]
    timings = {}
    for preset in LARGE_SCALE_PRESETS:
        processes, seconds = measure_preset(preset)
        timings[preset] = seconds
        seed_time = SEED_MERGE_SECONDS.get(preset)
        seed_text = f"{seed_time:9.3f}" if seed_time else " " * 9
        speedup = f"{seed_time / seconds:7.1f}x" if seed_time else " " * 8
        lines.append(
            f"{preset:>8} {processes:>10} {seconds:>10.4f} {seed_text} {speedup}"
        )
    lines += [
        "",
        "the committed trajectory (with the frozen seed baseline) is "
        "BENCH_core.json; refresh it with scripts/run_benchmarks.py.",
    ]
    write_result("perf_core_merge_scaling", "\n".join(lines))

    # Wall-time must keep growing sub-quadratically in the process count:
    # doubling the generated nodes may not blow the merge up by more than
    # the seed's observed ~3x-per-doubling growth.
    assert timings["xlarge"] <= timings["large"] * 6 + 0.05
    assert timings["large"] <= timings["medium"] * 8 + 0.05

    # pytest-benchmark timing of the reference ("medium") workload.
    system = large_scale_system("medium")

    def merge_once():
        return ScheduleMerger(
            system.graph, system.expanded_mapping, system.architecture
        ).merge()

    benchmark(merge_once)
