"""Fig. 2 — the decision tree explored while merging the Fig. 1 schedules.

Regenerates the per-path optimal schedule lengths listed next to Fig. 2 and
the decision tree the merging algorithm walks (which path is followed at every
node, where the back-steps happen).  The benchmark times the per-path list
scheduling of all six alternative paths, which is the input of the tree walk.
"""

from __future__ import annotations

from repro.data import PAPER_PATH_DELAYS
from repro.graph import PathEnumerator
from repro.scheduling import PathListScheduler

from conftest import write_result


def test_fig2_decision_tree(benchmark, fig1_example, fig1_result):
    example = fig1_example
    enumerator = PathEnumerator(example.graph)
    paths = enumerator.paths()
    scheduler = PathListScheduler(
        example.graph, example.expanded_mapping, example.architecture
    )

    def schedule_all_paths():
        return {path.label: scheduler.schedule(path) for path in paths}

    schedules = benchmark(schedule_all_paths)

    lines = ["Fig. 2 (reproduction): per-path schedule lengths and decision tree", ""]
    lines.append(f"{'path':<14} {'this reproduction':>18} {'paper':>8}")
    for label, schedule in sorted(schedules.items(), key=lambda kv: -kv[1].delay):
        paper = PAPER_PATH_DELAYS.get(str(label), float("nan"))
        lines.append(f"{str(label):<14} {schedule.delay:>18g} {paper:>8g}")
    lines.append("")
    lines.append("decision tree explored during merging "
                 f"({fig1_result.trace.back_steps} back-steps, "
                 f"{len(fig1_result.trace.leaves())} leaves):")
    lines.append(fig1_result.trace.render())
    write_result("fig2_decision_tree", "\n".join(lines))

    assert len(schedules) == 6
    assert len(fig1_result.trace.leaves()) == 6
    # The number of decision nodes of the binary tree over {C, D, K} where K is
    # only decided when D holds: 1 (C) + 2 (D) + 2 (K) internal nodes.
    internal = [n for n in fig1_result.trace.nodes() if not n.is_leaf]
    assert len(internal) == 5
