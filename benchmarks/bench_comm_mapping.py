"""Communication-to-bus mapping — mapped vs derived on the two-bus Fig. 1.

The paper maps every inter-processor connection to a bus and schedules it
like any other process; this benchmark measures what *exploring* that mapping
buys.  The workload (``COMM_MAPPING_WORKLOAD`` in ``scripts/run_benchmarks.py``,
committed as the ``comm_mapping`` record of ``BENCH_core.json``) explores the
paper's Fig. 1 graph on a two-bus variant of its platform twice under an
identical engine/seed/cycle budget: once accepting the derived least-index
bus pick (the second bus stays idle) and once with communication mapping as
an explored dimension.  The frozen best costs double as a determinism and
quality anchor for ``scripts/run_benchmarks.py --check`` — the mapped run
must keep strictly beating the derived one.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis import format_table
from repro.exploration import ExplorationConfig, Explorer

from conftest import write_result

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

from run_benchmarks import (  # noqa: E402
    COMM_MAPPING_WORKLOAD,
    _comm_mapping_problem,
    _measure_comm_mapping,
)


def test_comm_mapping_beats_derived(benchmark):
    record = _measure_comm_mapping()
    write_result(
        "comm_mapping",
        format_table(
            "Communication mapping on the two-bus Fig. 1 system "
            f"({record['engine']}, seed {record['seed']}, "
            f"{record['cycles']} cycles)",
            ["variant", "best cost", "pins", "bus distribution"],
            [
                ["derived (least_index)", record["derived_best_cost"], 0, "-"],
                [
                    "mapped (explored)",
                    record["mapped_best_cost"],
                    record["mapped_pins"],
                    ", ".join(
                        f"{bus}: {count}"
                        for bus, count in record["mapped_bus_distribution"].items()
                    ),
                ],
            ],
        ),
    )

    # The acceptance fact: exploring the bus assignment strictly beats the
    # derived default under the identical engine/seed/cycle budget, and the
    # winning design point genuinely uses more than one bus.
    assert record["mapped_best_cost"] < record["derived_best_cost"]
    assert record["mapped_pins"] > 0
    assert len(record["mapped_bus_distribution"]) > 1

    # pytest-benchmark timing of one short mapped search (fresh explorer per
    # round so candidate evaluation cost is actually measured).
    def mapped_once():
        problem = _comm_mapping_problem(True)
        config = ExplorationConfig(
            seed=COMM_MAPPING_WORKLOAD["seed"],
            max_cycles=4,
            neighbors_per_cycle=4,
        )
        return Explorer(problem, config=config).explore(
            COMM_MAPPING_WORKLOAD["engine"]
        )

    benchmark(mapped_once)


def test_least_loaded_policy_reduces_contention():
    """The derivation policy alone already spreads load: least_loaded yields
    a lower bus imbalance than least_index on the two-bus platform."""
    from repro.data import load_fig1_example
    from repro.exploration import ExplorationProblem, evaluate_candidate

    example = load_fig1_example(num_buses=2)
    evaluations = {}
    for policy in ("least_index", "least_loaded"):
        problem = ExplorationProblem(
            example.process_graph,
            example.mapping,
            example.architecture,
            bus_policy=policy,
        )
        evaluations[policy] = evaluate_candidate(
            problem, problem.initial_candidate()
        )
    assert (
        evaluations["least_loaded"].bus_imbalance
        < evaluations["least_index"].bus_imbalance
    )
    write_result(
        "comm_policy",
        format_table(
            "Derivation policies on the two-bus Fig. 1 system (seed mapping)",
            ["policy", "delta_max", "bus imbalance"],
            [
                [policy, evaluation.delta_max, round(evaluation.bus_imbalance, 3)]
                for policy, evaluation in evaluations.items()
            ],
        ),
    )
