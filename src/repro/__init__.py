"""repro — reproduction of "Scheduling of Conditional Process Graphs for the
Synthesis of Embedded Systems" (Eles, Kuchcinski, Peng, Doboli, Pop — DATE 1998).

The library models embedded systems as conditional process graphs mapped onto
heterogeneous architectures (programmable processors, ASICs, shared buses),
schedules every alternative path with a list scheduler, and merges the
per-path schedules into a single deterministic schedule table whose worst-case
delay is minimised — the paper's core contribution.

Typical usage::

    from repro import load_fig1_example, ScheduleMerger
    example = load_fig1_example()
    result = ScheduleMerger(example.graph, example.expanded_mapping).merge()
    print(result.delta_m, result.delta_max)
"""

from .architecture import (
    Architecture,
    ArchitectureError,
    Mapping,
    MappingError,
    PEKind,
    ProcessingElement,
    bus,
    hardware,
    programmable,
    simple_architecture,
)
from .conditions import BoolExpr, Condition, Conjunction, Literal
from .data import Fig1Example, load_fig1_example
from .exploration import (
    ArchitectureBounds,
    CachedEvaluator,
    Candidate,
    CandidateEvaluation,
    CostWeights,
    EvaluationPool,
    ExplorationConfig,
    ExplorationProblem,
    ExplorationResult,
    Explorer,
    GeneticEngine,
    ParetoFront,
    ParetoPoint,
)
from .graph import (
    AlternativePath,
    CPGBuilder,
    ConditionalProcessGraph,
    Edge,
    ExpandedGraph,
    GraphStructureError,
    PathEnumerator,
    Process,
    ProcessKind,
    count_paths,
    enumerate_paths,
    expand_communications,
)
from .scheduling import (
    MergeResult,
    MergeTrace,
    PathListScheduler,
    PathSchedule,
    ScheduleMerger,
    ScheduleTable,
    ScheduledTask,
    merge_schedules,
)
from .simulation import (
    RuntimeSimulator,
    SimulationError,
    ValidationReport,
    validate_merge_result,
    validate_schedule_table,
)

__version__ = "1.0.0"

__all__ = [
    "AlternativePath",
    "Architecture",
    "ArchitectureBounds",
    "ArchitectureError",
    "BoolExpr",
    "CPGBuilder",
    "CachedEvaluator",
    "Candidate",
    "CandidateEvaluation",
    "Condition",
    "ConditionalProcessGraph",
    "Conjunction",
    "CostWeights",
    "Edge",
    "EvaluationPool",
    "ExpandedGraph",
    "ExplorationConfig",
    "ExplorationProblem",
    "ExplorationResult",
    "Explorer",
    "Fig1Example",
    "GeneticEngine",
    "GraphStructureError",
    "Literal",
    "Mapping",
    "MappingError",
    "MergeResult",
    "MergeTrace",
    "PEKind",
    "ParetoFront",
    "ParetoPoint",
    "PathEnumerator",
    "PathListScheduler",
    "PathSchedule",
    "Process",
    "ProcessKind",
    "ProcessingElement",
    "RuntimeSimulator",
    "ScheduleMerger",
    "ScheduleTable",
    "ScheduledTask",
    "SimulationError",
    "ValidationReport",
    "bus",
    "count_paths",
    "enumerate_paths",
    "expand_communications",
    "hardware",
    "load_fig1_example",
    "merge_schedules",
    "programmable",
    "simple_architecture",
    "validate_merge_result",
    "validate_schedule_table",
    "__version__",
]
