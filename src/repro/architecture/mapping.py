"""The mapping function M: V -> PE.

A :class:`Mapping` assigns each process of a conditional process graph to the
processing element that executes it, and each communication process to a bus.
The paper assumes hardware/software partitioning and mapping have already been
performed (e.g. by the simulated-annealing/tabu-search approach of Eles et
al., 1997); this module only represents and validates the result.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping as TMapping, Optional, Tuple

from .architecture import Architecture
from .processing_element import ProcessingElement


class MappingError(ValueError):
    """Raised when a mapping is inconsistent with the graph or the architecture."""


class Mapping:
    """An assignment of process names to processing elements.

    The mapping is keyed by process *name* (a string) so that it can be
    constructed before or after communication processes are inserted into the
    graph.  Values are :class:`ProcessingElement` instances belonging to one
    :class:`Architecture`.
    """

    def __init__(
        self,
        architecture: Architecture,
        assignments: Optional[TMapping[str, ProcessingElement]] = None,
    ) -> None:
        self._architecture = architecture
        self._assignments: Dict[str, ProcessingElement] = {}
        if assignments:
            for process_name, pe in assignments.items():
                self.assign(process_name, pe)

    @property
    def architecture(self) -> Architecture:
        return self._architecture

    # -- mutation -----------------------------------------------------------

    def assign(self, process_name: str, pe: ProcessingElement) -> None:
        """Assign a process to a processing element of the architecture."""
        if isinstance(pe, str):
            pe = self._architecture[pe]
        if pe not in self._architecture:
            raise MappingError(
                f"{pe.name} is not a processing element of the architecture"
            )
        self._assignments[process_name] = pe

    def assign_many(self, pe: ProcessingElement, process_names: Iterable[str]) -> None:
        """Assign several processes to the same processing element."""
        for name in process_names:
            self.assign(name, pe)

    # -- lookup ---------------------------------------------------------------

    def __getitem__(self, process_name: str) -> ProcessingElement:
        try:
            return self._assignments[process_name]
        except KeyError:
            raise MappingError(f"process {process_name!r} is not mapped") from None

    def get(self, process_name: str) -> Optional[ProcessingElement]:
        return self._assignments.get(process_name)

    def __contains__(self, process_name: str) -> bool:
        return process_name in self._assignments

    def __iter__(self) -> Iterator[str]:
        return iter(self._assignments)

    def __len__(self) -> int:
        return len(self._assignments)

    def items(self) -> Iterator[Tuple[str, ProcessingElement]]:
        return iter(self._assignments.items())

    def processes_on(self, pe: ProcessingElement) -> Tuple[str, ...]:
        """Return the names of all processes mapped to the given element."""
        return tuple(
            sorted(name for name, mapped in self._assignments.items() if mapped == pe)
        )

    def copy(self) -> "Mapping":
        return Mapping(self._architecture, dict(self._assignments))

    # -- validation -----------------------------------------------------------

    def validate_for(self, process_names: Iterable[str]) -> None:
        """Check that every given process is mapped to a non-bus element."""
        for name in process_names:
            pe = self.get(name)
            if pe is None:
                raise MappingError(f"process {name!r} is not mapped")
            if pe.is_bus:
                raise MappingError(
                    f"ordinary process {name!r} is mapped to bus {pe.name!r}; "
                    "only communication processes may be mapped to buses"
                )

    def describe(self) -> str:
        """Return a human-readable summary grouped by processing element."""
        lines = []
        for pe in self._architecture.processing_elements:
            names = self.processes_on(pe)
            if names:
                lines.append(f"{pe.name}: {', '.join(names)}")
        return "\n".join(lines)
