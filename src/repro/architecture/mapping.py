"""The mapping function M: V -> PE.

A :class:`Mapping` assigns each process of a conditional process graph to the
processing element that executes it, and each communication process to a bus.
The paper assumes hardware/software partitioning and mapping have already been
performed (e.g. by the simulated-annealing/tabu-search approach of Eles et
al., 1997); this module only represents and validates the result.
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    Iterator,
    Mapping as TMapping,
    Optional,
    Set,
    Tuple,
    Union,
)

from .architecture import Architecture
from .processing_element import ProcessingElement

#: Processing elements may be given by object or by name everywhere a mapping
#: is built or queried; names are resolved against the architecture.
PELike = Union[ProcessingElement, str]


class MappingError(ValueError):
    """Raised when a mapping is inconsistent with the graph or the architecture."""


class Mapping:
    """An assignment of process names to processing elements.

    The mapping is keyed by process *name* (a string) so that it can be
    constructed before or after communication processes are inserted into the
    graph.  Values are :class:`ProcessingElement` instances belonging to one
    :class:`Architecture`.
    """

    def __init__(
        self,
        architecture: Architecture,
        assignments: Optional[TMapping[str, PELike]] = None,
    ) -> None:
        self._architecture = architecture
        self._assignments: Dict[str, ProcessingElement] = {}
        # Per-PE reverse index (PE name -> process names), maintained by
        # ``assign`` so that ``processes_on`` is a dict probe instead of a
        # scan over every assignment.
        self._by_pe: Dict[str, Set[str]] = {}
        if assignments:
            for process_name, pe in assignments.items():
                self.assign(process_name, pe)

    @property
    def architecture(self) -> Architecture:
        return self._architecture

    # -- mutation -----------------------------------------------------------

    def assign(self, process_name: str, pe: PELike) -> None:
        """Assign a process to a processing element (given by object or name)."""
        if isinstance(pe, str):
            try:
                pe = self._architecture[pe]
            except KeyError:
                raise MappingError(
                    f"{pe!r} is not a processing element of the architecture"
                ) from None
        if pe not in self._architecture:
            raise MappingError(
                f"{pe.name} is not a processing element of the architecture"
            )
        previous = self._assignments.get(process_name)
        if previous is not None and previous != pe:
            self._by_pe[previous.name].discard(process_name)
        self._assignments[process_name] = pe
        self._by_pe.setdefault(pe.name, set()).add(process_name)

    def assign_many(self, pe: PELike, process_names: Iterable[str]) -> None:
        """Assign several processes to the same processing element."""
        for name in process_names:
            self.assign(name, pe)

    # -- lookup ---------------------------------------------------------------

    def __getitem__(self, process_name: str) -> ProcessingElement:
        try:
            return self._assignments[process_name]
        except KeyError:
            raise MappingError(f"process {process_name!r} is not mapped") from None

    def get(self, process_name: str) -> Optional[ProcessingElement]:
        return self._assignments.get(process_name)

    def __contains__(self, process_name: str) -> bool:
        return process_name in self._assignments

    def __iter__(self) -> Iterator[str]:
        return iter(self._assignments)

    def __len__(self) -> int:
        return len(self._assignments)

    def items(self) -> Iterator[Tuple[str, ProcessingElement]]:
        return iter(self._assignments.items())

    def processes_on(self, pe: PELike) -> Tuple[str, ...]:
        """Return the names of all processes mapped to the given element.

        Served from the per-PE index maintained by :meth:`assign`, so the
        query costs one dict probe plus a sort of the (usually short) result
        instead of a scan over every assignment.  The result is always a
        freshly built, name-sorted tuple — an immutable snapshot, never a
        live view of the index — so callers (the flat scheduling kernel's
        context caches in particular) may retain it without copying.
        """
        pe_name = pe if isinstance(pe, str) else pe.name
        return tuple(sorted(self._by_pe.get(pe_name, ())))

    def copy(self) -> "Mapping":
        """A fast structural copy (contents were validated when first assigned)."""
        clone = Mapping(self._architecture)
        clone._assignments = dict(self._assignments)
        clone._by_pe = {name: set(names) for name, names in self._by_pe.items()}
        return clone

    def reassigned(self, changes: TMapping[str, PELike]) -> "Mapping":
        """Return a new mapping with the given processes moved, leaving self intact.

        This is the functional-update entry point of the design-space
        explorer: neighbourhood moves produce fresh mappings without mutating
        the candidate they were derived from.
        """
        updated = self.copy()
        for process_name, pe in changes.items():
            updated.assign(process_name, pe)
        return updated

    # -- validation -----------------------------------------------------------

    def validate_for(self, process_names: Iterable[str]) -> None:
        """Check that every given process is mapped to a non-bus element."""
        for name in process_names:
            pe = self.get(name)
            if pe is None:
                raise MappingError(f"process {name!r} is not mapped")
            if pe.is_bus:
                raise MappingError(
                    f"ordinary process {name!r} is mapped to bus {pe.name!r}; "
                    "only communication processes may be mapped to buses"
                )

    def describe(self) -> str:
        """Return a human-readable summary grouped by processing element."""
        lines = []
        for pe in self._architecture.processing_elements:
            names = self.processes_on(pe)
            if names:
                lines.append(f"{pe.name}: {', '.join(names)}")
        return "\n".join(lines)
