"""Target architecture model: processors, ASICs, shared buses and the mapping.

The paper targets a generic heterogeneous architecture of programmable
processors and hardware processors (ASICs) connected by shared buses.  This
package models those processing elements, the system architecture (including
bus connectivity and the condition-broadcast time ``tau0``) and the mapping
function ``M: V -> PE`` that assigns every process to the element executing it.
"""

from .architecture import Architecture, ArchitectureError, simple_architecture
from .mapping import Mapping, MappingError
from .processing_element import (
    PEKind,
    ProcessingElement,
    bus,
    hardware,
    make_processor,
    programmable,
)

__all__ = [
    "Architecture",
    "ArchitectureError",
    "Mapping",
    "MappingError",
    "PEKind",
    "ProcessingElement",
    "bus",
    "hardware",
    "make_processor",
    "programmable",
    "simple_architecture",
]
