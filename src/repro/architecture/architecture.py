"""The target architecture: a collection of processors, ASICs and buses.

An :class:`Architecture` groups the processing elements a design is mapped
onto and records which processors each bus connects.  The paper assumes that
at least one bus is connected to all processors so that condition values can
be broadcast system-wide; :meth:`Architecture.broadcast_buses` exposes exactly
those buses.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .processing_element import PEKind, ProcessingElement, bus, hardware, programmable


class ArchitectureError(ValueError):
    """Raised when an architecture is malformed (duplicate names, bad topology)."""


class Architecture:
    """A heterogeneous target architecture.

    Parameters
    ----------
    processors:
        Programmable and hardware processing elements.
    buses:
        Shared buses.  Each bus may optionally be restricted to a subset of
        the processors via ``connectivity``; by default every bus connects all
        processors.
    condition_broadcast_time:
        The time ``tau0`` needed to broadcast one condition value on a bus.
        The paper notes this is at most as large as any other communication
        time because only a single boolean is transferred.
    connectivity:
        Optional mapping ``bus name -> iterable of processor names`` limiting
        which processors a bus connects.
    """

    def __init__(
        self,
        processors: Iterable[ProcessingElement],
        buses: Iterable[ProcessingElement],
        condition_broadcast_time: float = 1.0,
        connectivity: Optional[Dict[str, Iterable[str]]] = None,
    ) -> None:
        self._processors: Dict[str, ProcessingElement] = {}
        self._buses: Dict[str, ProcessingElement] = {}
        for pe in processors:
            if pe.is_bus:
                raise ArchitectureError(f"{pe.name} is a bus, not a processor")
            if pe.name in self._processors:
                raise ArchitectureError(f"duplicate processor name {pe.name!r}")
            self._processors[pe.name] = pe
        for pe in buses:
            if not pe.is_bus:
                raise ArchitectureError(f"{pe.name} is not a bus")
            if pe.name in self._buses or pe.name in self._processors:
                raise ArchitectureError(f"duplicate processing element name {pe.name!r}")
            self._buses[pe.name] = pe
        if not self._processors:
            raise ArchitectureError("an architecture needs at least one processor")
        if condition_broadcast_time < 0:
            raise ArchitectureError("condition broadcast time must be non-negative")
        self._tau0 = float(condition_broadcast_time)

        self._connectivity: Dict[str, frozenset] = {}
        all_processor_names = frozenset(self._processors)
        for bus_name in self._buses:
            self._connectivity[bus_name] = all_processor_names
        if connectivity:
            for bus_name, processor_names in connectivity.items():
                if bus_name not in self._buses:
                    raise ArchitectureError(f"unknown bus {bus_name!r} in connectivity")
                names = frozenset(processor_names)
                unknown = names - all_processor_names
                if unknown:
                    raise ArchitectureError(
                        f"bus {bus_name!r} connects unknown processors {sorted(unknown)}"
                    )
                self._connectivity[bus_name] = names

    # -- access -------------------------------------------------------------

    @property
    def processors(self) -> Tuple[ProcessingElement, ...]:
        return tuple(self._processors.values())

    @property
    def programmable_processors(self) -> Tuple[ProcessingElement, ...]:
        return tuple(pe for pe in self._processors.values() if pe.is_programmable)

    @property
    def hardware_processors(self) -> Tuple[ProcessingElement, ...]:
        return tuple(pe for pe in self._processors.values() if pe.is_hardware)

    @property
    def buses(self) -> Tuple[ProcessingElement, ...]:
        return tuple(self._buses.values())

    @property
    def processing_elements(self) -> Tuple[ProcessingElement, ...]:
        return self.processors + self.buses

    @property
    def condition_broadcast_time(self) -> float:
        """The time ``tau0`` to broadcast one condition value (paper, Section 3)."""
        return self._tau0

    def __iter__(self) -> Iterator[ProcessingElement]:
        return iter(self.processing_elements)

    def __contains__(self, pe: object) -> bool:
        if isinstance(pe, ProcessingElement):
            return pe.name in self._processors or pe.name in self._buses
        if isinstance(pe, str):
            return pe in self._processors or pe in self._buses
        return False

    def __getitem__(self, name: str) -> ProcessingElement:
        if name in self._processors:
            return self._processors[name]
        if name in self._buses:
            return self._buses[name]
        raise KeyError(f"no processing element named {name!r}")

    def get(self, name: str, default: Optional[ProcessingElement] = None) -> Optional[ProcessingElement]:
        try:
            return self[name]
        except KeyError:
            return default

    # -- topology -----------------------------------------------------------

    def processors_on_bus(self, bus_name: str) -> Tuple[ProcessingElement, ...]:
        """Return the processors connected to the given bus."""
        if bus_name not in self._buses:
            raise KeyError(f"no bus named {bus_name!r}")
        return tuple(
            self._processors[name] for name in sorted(self._connectivity[bus_name])
        )

    def broadcast_buses(self) -> Tuple[ProcessingElement, ...]:
        """Return the buses connected to *all* processors.

        The paper assumes at least one such bus exists: condition values are
        broadcast on the first of these that becomes available after the
        disjunction process terminates.
        """
        all_names = frozenset(self._processors)
        return tuple(
            self._buses[name]
            for name in sorted(self._buses)
            if self._connectivity[name] == all_names
        )

    def buses_between(
        self, source: ProcessingElement, target: ProcessingElement
    ) -> Tuple[ProcessingElement, ...]:
        """Return the buses that connect both given processors."""
        return tuple(
            self._buses[name]
            for name in sorted(self._buses)
            if source.name in self._connectivity[name]
            and target.name in self._connectivity[name]
        )

    def validate(self) -> None:
        """Check the topology assumptions the scheduler relies on."""
        if self._buses and not self.broadcast_buses():
            raise ArchitectureError(
                "no bus connects all processors; the condition-broadcast strategy "
                "of the paper requires at least one such bus"
            )

    def describe(self) -> str:
        """Return a short human-readable summary of the architecture."""
        lines: List[str] = []
        for pe in self.programmable_processors:
            lines.append(f"processor {pe.name} (speed {pe.speed:g})")
        for pe in self.hardware_processors:
            lines.append(f"hardware  {pe.name} (speed {pe.speed:g})")
        for pe in self.buses:
            connected = ", ".join(sorted(self._connectivity[pe.name]))
            lines.append(f"bus       {pe.name} (connects {connected})")
        lines.append(f"condition broadcast time tau0 = {self._tau0:g}")
        return "\n".join(lines)


def simple_architecture(
    num_programmable: int,
    num_hardware: int = 0,
    num_buses: int = 1,
    condition_broadcast_time: float = 1.0,
    processor_speed: float = 1.0,
) -> Architecture:
    """Build a fully-connected architecture with uniformly named elements.

    Processors are named ``pe1``, ``pe2``, ... (programmable first, then
    hardware); buses are named ``bus1``, ``bus2``, ...
    """
    if num_programmable < 1:
        raise ArchitectureError("need at least one programmable processor")
    if num_hardware < 0 or num_buses < 0:
        raise ArchitectureError("element counts must be non-negative")
    processors: List[ProcessingElement] = []
    index = 1
    for _ in range(num_programmable):
        processors.append(programmable(f"pe{index}", speed=processor_speed))
        index += 1
    for _ in range(num_hardware):
        processors.append(hardware(f"pe{index}"))
        index += 1
    buses: Sequence[ProcessingElement] = [bus(f"bus{i + 1}") for i in range(num_buses)]
    return Architecture(
        processors, buses, condition_broadcast_time=condition_broadcast_time
    )
