"""Processing elements of the target architecture.

The paper's generic architecture consists of programmable processors,
application-specific hardware processors (ASICs) and shared buses.  The
execution model differs per kind:

* a **programmable processor** executes one process at a time
  (non-preemptive);
* a **hardware processor** (ASIC) can execute processes in parallel;
* a **bus** performs one data transfer at a time; communication processes and
  condition broadcasts are mapped onto buses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class PEKind(Enum):
    """The three kinds of processing elements of the target architecture."""

    PROGRAMMABLE = "programmable"
    HARDWARE = "hardware"
    BUS = "bus"


@dataclass(frozen=True)
class ProcessingElement:
    """A processing element (processor, ASIC or bus) of the architecture.

    Parameters
    ----------
    name:
        Unique identifier within the architecture, e.g. ``"pe1"`` or ``"bus1"``.
    kind:
        Whether the element is a programmable processor, a hardware processor
        or a bus.
    speed:
        Relative speed factor.  A process with nominal execution time ``t``
        runs in ``t / speed`` on this element.  The paper's ATM case study
        compares a 486DX2-80 against a Pentium-120; modelling the Pentium with
        ``speed > 1`` captures that comparison.
    description:
        Optional free-text note (used in reports).
    """

    name: str
    kind: PEKind
    speed: float = 1.0
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("processing element name must be non-empty")
        if self.speed <= 0:
            raise ValueError("processing element speed must be positive")

    def __str__(self) -> str:
        return self.name

    @property
    def is_programmable(self) -> bool:
        return self.kind is PEKind.PROGRAMMABLE

    @property
    def is_hardware(self) -> bool:
        return self.kind is PEKind.HARDWARE

    @property
    def is_bus(self) -> bool:
        return self.kind is PEKind.BUS

    @property
    def executes_sequentially(self) -> bool:
        """True when only one process may run on this element at any moment."""
        return self.kind in (PEKind.PROGRAMMABLE, PEKind.BUS)

    def scaled_time(self, nominal_time: float) -> float:
        """Execution time of a process with the given nominal time on this element."""
        if nominal_time < 0:
            raise ValueError("nominal execution time must be non-negative")
        return nominal_time / self.speed


def programmable(name: str, speed: float = 1.0, description: str = "") -> ProcessingElement:
    """Create a programmable processor."""
    return ProcessingElement(name, PEKind.PROGRAMMABLE, speed, description)


def hardware(name: str, speed: float = 1.0, description: str = "") -> ProcessingElement:
    """Create a hardware processor (ASIC)."""
    return ProcessingElement(name, PEKind.HARDWARE, speed, description)


def bus(name: str, speed: float = 1.0, description: str = "") -> ProcessingElement:
    """Create a shared bus."""
    return ProcessingElement(name, PEKind.BUS, speed, description)


def make_processor(
    name: str, *, is_hardware: bool = False, speed: float = 1.0, description: str = ""
) -> ProcessingElement:
    """Create either a programmable or a hardware processor."""
    kind = PEKind.HARDWARE if is_hardware else PEKind.PROGRAMMABLE
    return ProcessingElement(name, kind, speed, description)
