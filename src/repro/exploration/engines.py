"""Search engines: cycle-bounded tabu search and simulated annealing.

(The NSGA-style genetic engine lives in :mod:`repro.exploration.genetic` and
registers itself into the :data:`ENGINES` table at the bottom of this module.)

All engines sit behind the same :class:`Explorer` facade and share every
layer below them — the :class:`~repro.exploration.NeighborhoodSampler`, the
:class:`~repro.exploration.CachedEvaluator` (one per explorer, so consecutive
``explore`` calls share cache hits) and the optional parallel
:class:`~repro.exploration.EvaluationPool`.  A seed fully determines a run:
the engines draw all randomness from one ``random.Random`` and the evaluation
layer is pure, so the best candidate *and* the cycle-by-cycle trajectory are
reproducible.

Engine sketches
---------------
Tabu search (cf. the post-optimiser layering of the TimeTableGenerator
exemplar): each cycle scores one neighbourhood batch, moves to the best
admissible neighbour — not on the tabu list, unless it beats the global best
(aspiration) — and marks the chosen design point tabu for ``tabu_tenure``
cycles.

Simulated annealing: each cycle scores a batch of proposals around the
current point (batched so the pool parallelises them), then walks the batch
in order, accepting improvements always and uphill moves with probability
``exp(-delta / T)``; the temperature cools geometrically per proposal.

Stopping is pluggable: criteria are callables inspecting the running
:class:`SearchState`; the first non-None reason ends the search.  The cycle
budget itself is a criterion (:class:`MaxCycles`), as are stagnation
(:class:`Stalled`) and cost targets (:class:`TargetCost`).
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from collections import deque

from .candidate import Candidate
from .cost import CandidateEvaluation, CostWeights, StageStats
from .evaluator import CachedEvaluator, CacheStats
from .moves import DEFAULT_PRIORITY_CHOICES, NeighborhoodSampler
from .pareto import ParetoFront
from .pool import EvaluationPool
from .problem import ExplorationProblem
from .resilience import (
    Checkpointer,
    ResilienceStats,
    load_checkpoint,
    rng_state_from_json,
    scored_from_json,
    scored_to_json,
    search_state_from_json,
    snapshot_document,
    trajectory_from_json,
    validate_checkpoint,
)


@dataclass(frozen=True)
class ExplorationConfig:
    """Shared knobs of all engines (engine-specific ones are prefixed)."""

    seed: int = 0
    max_cycles: int = 40
    neighbors_per_cycle: int = 8
    stall_cycles: int = 0  # 0 disables the stagnation criterion
    target_cost: Optional[float] = None
    priority_choices: Tuple[str, ...] = DEFAULT_PRIORITY_CHOICES
    weights: CostWeights = field(default_factory=CostWeights)
    #: Track a Pareto front over every fresh evaluation of the explorer (the
    #: genetic engine tracks one regardless; this turns it on for tabu/SA).
    track_front: bool = False
    #: Cycle period of checkpoint writes when ``Explorer.explore`` is given a
    #: checkpoint path (1 = every cycle; larger periods trade at-most-N lost
    #: cycles for less write overhead).
    checkpoint_every: int = 1
    # tabu search
    tabu_tenure: int = 12
    # simulated annealing
    initial_temperature: Optional[float] = None  # None: 5% of the initial cost
    cooling: float = 0.97
    # genetic engine (one cycle = one generation)
    population_size: int = 16
    tournament_size: int = 3
    crossover_rate: float = 0.9
    mutation_moves: int = 2


@dataclass(frozen=True)
class TrajectoryPoint:
    """One cycle of a search, as reported in best-candidate trajectories."""

    cycle: int
    move: str
    cost: float
    best_cost: float
    accepted: int


@dataclass
class SearchState:
    """What stopping criteria may inspect while a search runs."""

    cycle: int = 0
    evaluations: int = 0
    cycles_since_improvement: int = 0
    best_cost: float = math.inf


#: A stopping criterion returns the reason to stop, or None to continue.
StoppingCriterion = Callable[[SearchState], Optional[str]]


class MaxCycles:
    """Stop after a fixed number of cycles (the bounded cycle budget)."""

    def __init__(self, limit: int) -> None:
        self.limit = limit

    def __call__(self, state: SearchState) -> Optional[str]:
        if state.cycle >= self.limit:
            return f"cycle budget exhausted ({self.limit})"
        return None


class Stalled:
    """Stop after ``limit`` consecutive cycles without improving the best."""

    def __init__(self, limit: int) -> None:
        self.limit = limit

    def __call__(self, state: SearchState) -> Optional[str]:
        if state.cycles_since_improvement >= self.limit:
            return f"stalled for {self.limit} cycles"
        return None


class TargetCost:
    """Stop as soon as the best cost reaches a target."""

    def __init__(self, target: float) -> None:
        self.target = target

    def __call__(self, state: SearchState) -> Optional[str]:
        if state.best_cost <= self.target:
            return f"target cost {self.target:g} reached"
        return None


@dataclass
class ExplorationResult:
    """Everything one ``Explorer.explore`` call produced."""

    engine: str
    initial_candidate: Candidate
    initial: CandidateEvaluation
    best_candidate: Candidate
    best: CandidateEvaluation
    trajectory: List[TrajectoryPoint]
    cycles: int
    evaluations: int
    stop_reason: str
    cache: CacheStats
    #: A snapshot of the non-dominated front at the end of the run.  Always
    #: set by the genetic engine; set by tabu/SA only when the explorer
    #: tracks a front (``ExplorationConfig.track_front``), otherwise None.
    #: When several engines share one explorer (and thus one evaluation
    #: cache + live front), the snapshot also covers the design points the
    #: *earlier* runs evaluated — but never the later ones.
    front: Optional[ParetoFront] = None
    #: Stage-level (expansion / per-path schedule) cache counters of the
    #: incremental evaluator, cumulative like ``cache`` when engines share an
    #: explorer.  None when staged evaluation is disabled, or when a
    #: process-mode pool scores the misses (per-worker caches are not
    #: aggregated).
    stages: Optional[StageStats] = None
    #: Fault/retry counters of the evaluation pool (see
    #: :class:`~repro.exploration.ResilienceStats`); None without a pool.
    resilience: Optional[ResilienceStats] = None
    #: The cycle this run was restored at when it resumed from a checkpoint
    #: (None for a run started from scratch).
    resumed_from: Optional[int] = None
    #: Wall-clock seconds per pipeline stage (``expansion``,
    #: ``path_schedule``, ``merge``, ``merge_readjust``), from the metrics
    #: registry — cumulative like ``cache`` when several engines share one
    #: explorer.  None unless the evaluator carries a
    #: :class:`~repro.observability.MetricsRegistry` (``--metrics``); empty
    #: when a process-mode pool scored every evaluation (workers are not
    #: instrumented).
    stage_seconds: Optional[Dict[str, float]] = None
    #: Wall-clock duration of this ``run()`` call in seconds; None unless
    #: metrics are enabled (keeps the default result byte-deterministic).
    wall_seconds: Optional[float] = None
    #: Batched-evaluation counters (batches, candidates, mean batch size,
    #: payload bytes shipped to pool workers), from
    #: :class:`~repro.exploration.BatchStats`.  None unless metrics are
    #: enabled — same null-stability contract as ``stage_seconds``.
    batch: Optional[Dict[str, Any]] = None

    @property
    def improved(self) -> bool:
        return self.best.cost < self.initial.cost - 1e-9

    @property
    def improvement_percent(self) -> float:
        """How far the best candidate undercuts the seed design point."""
        if self.initial.cost <= 0 or not math.isfinite(self.initial.cost):
            return 0.0
        return 100.0 * (self.initial.cost - self.best.cost) / self.initial.cost


class _EngineBase:
    name = "base"

    def __init__(
        self,
        config: ExplorationConfig,
        evaluator: CachedEvaluator,
        sampler: NeighborhoodSampler,
        stopping: Sequence[StoppingCriterion],
    ) -> None:
        self._config = config
        self._evaluator = evaluator
        self._sampler = sampler
        self._stopping = list(stopping)
        # Observability hooks ride along on the shared evaluator; both are
        # None by default, keeping every engine loop on the plain code path.
        self._tracer = evaluator.tracer
        self._metrics = evaluator.metrics

    # -- common plumbing -----------------------------------------------------

    def _begin_run(self):
        """Open the per-run ``engine`` span and wall clock (no-ops when off)."""
        span = (
            self._tracer.span("engine", engine=self.name)
            if self._tracer is not None
            else None
        )
        started = time.perf_counter() if self._metrics is not None else 0.0
        return span, started

    def _finish_run(self, span, started: float, cycles: int) -> Dict[str, Any]:
        """Close the engine span; return ExplorationResult timing fields.

        Closing the engine span also closes any cycle span a ``break`` left
        open (span close pops open descendants), so engine loops may exit
        mid-cycle without leaking records.
        """
        if span is not None:
            span.close(cycles=cycles)
        if self._metrics is None:
            return {"stage_seconds": None, "wall_seconds": None, "batch": None}
        return {
            "stage_seconds": self._metrics.snapshot().stage_seconds(),
            "wall_seconds": time.perf_counter() - started,
            "batch": self._evaluator.batch_stats.snapshot(),
        }

    def _begin_cycle(self):
        """Open one ``cycle`` span + its clock (no-ops when off)."""
        span = self._tracer.span("cycle") if self._tracer is not None else None
        started = time.perf_counter() if self._metrics is not None else 0.0
        return span, started

    def _end_cycle(self, span, started: float, cycle: int) -> None:
        """Close a completed cycle's span and record its wall time."""
        if span is not None:
            span.close(cycle=cycle)
        if self._metrics is not None:
            self._metrics.observe(
                f"engine.{self.name}.cycle.seconds",
                time.perf_counter() - started,
            )

    def _stop_reason(self, state: SearchState) -> Optional[str]:
        for criterion in self._stopping:
            reason = criterion(state)
            if reason is not None:
                return reason
        return None

    # -- checkpoint plumbing -------------------------------------------------

    def _problem_key(self) -> str:
        return self._evaluator.problem.content_key

    def _restore_front(self, documents: Optional[Sequence[Dict[str, Any]]]) -> None:
        """Re-offer checkpointed front points into the evaluator's live front."""
        front = self._evaluator.front
        if front is None or not documents:
            return
        for entry in documents:
            front.offer(*scored_from_json(entry))

    @staticmethod
    def _maybe_checkpoint(checkpointer: Optional[Checkpointer], cycle, snapshot) -> None:
        if checkpointer is not None and checkpointer.due(cycle):
            checkpointer.save(snapshot())

    def run(
        self,
        initial: Candidate,
        resume: Optional[Dict[str, Any]] = None,
        checkpointer: Optional[Checkpointer] = None,
    ) -> ExplorationResult:
        raise NotImplementedError


class TabuSearchEngine(_EngineBase):
    """Best-admissible-neighbour descent with a fingerprint tabu list."""

    name = "tabu"

    def run(
        self,
        initial: Candidate,
        resume: Optional[Dict[str, Any]] = None,
        checkpointer: Optional[Checkpointer] = None,
    ) -> ExplorationResult:
        config = self._config
        engine_span, run_started = self._begin_run()
        resumed_from: Optional[int] = None
        if resume is not None:
            rng = random.Random()
            rng.setstate(rng_state_from_json(resume["rng"]))
            initial, initial_eval = scored_from_json(resume["initial"])
            best, best_eval = scored_from_json(resume["best"])
            current, current_eval = scored_from_json(
                resume["engine_state"]["current"]
            )
            tabu: deque = deque(
                resume["engine_state"]["tabu"], maxlen=max(1, config.tabu_tenure)
            )
            trajectory = trajectory_from_json(resume["trajectory"])
            state = search_state_from_json(resume["state"])
            self._restore_front(resume.get("front"))
            resumed_from = state.cycle
        else:
            rng = random.Random(config.seed)
            current, current_eval = initial, self._evaluator.evaluate(initial)
            initial_eval = current_eval
            best, best_eval = current, current_eval
            tabu = deque(maxlen=max(1, config.tabu_tenure))
            tabu.append(current.fingerprint)
            trajectory = []
            state = SearchState(evaluations=1, best_cost=best_eval.cost)

        def snapshot(completed: bool = False, reason: Optional[str] = None):
            return snapshot_document(
                engine=self.name,
                seed=config.seed,
                problem_key=self._problem_key(),
                state=state,
                rng_state=rng.getstate(),
                initial=(initial, initial_eval),
                best=(best, best_eval),
                trajectory=trajectory,
                engine_state={
                    "current": scored_to_json(current, current_eval),
                    "tabu": list(tabu),
                },
                front=self._evaluator.front,
                completed=completed,
                stop_reason=reason,
            )

        reason = self._stop_reason(state)
        while reason is None:
            cycle_span, cycle_started = self._begin_cycle()
            neighbors = self._sampler.sample(
                current, rng, config.neighbors_per_cycle
            )
            if not neighbors:
                reason = "no distinct neighbors"
                break
            evaluations = self._evaluator.evaluate_many(
                [candidate for _, candidate in neighbors]
            )
            state.evaluations += len(neighbors)

            chosen: Optional[Tuple] = None  # (cost, fingerprint, move, cand, eval)
            fallback: Optional[Tuple] = None
            for (move, candidate), evaluation in zip(neighbors, evaluations):
                if not evaluation.feasible:
                    continue
                key = (evaluation.cost, candidate.fingerprint)
                admissible = (
                    candidate.fingerprint not in tabu
                    or evaluation.cost < best_eval.cost  # aspiration
                )
                entry = key + (move, candidate, evaluation)
                if admissible and (chosen is None or key < chosen[:2]):
                    chosen = entry
                if fallback is None or key < fallback[:2]:
                    fallback = entry
            if chosen is None:
                chosen = fallback  # every neighbour tabu: take the best anyway
            if chosen is None:
                reason = "no feasible neighbors"
                break

            _, _, move, current, current_eval = chosen
            tabu.append(current.fingerprint)
            state.cycle += 1
            if current_eval.cost < best_eval.cost - 1e-9:
                best, best_eval = current, current_eval
                state.cycles_since_improvement = 0
                state.best_cost = best_eval.cost
            else:
                state.cycles_since_improvement += 1
            trajectory.append(
                TrajectoryPoint(
                    cycle=state.cycle,
                    move=move.describe(),
                    cost=current_eval.cost,
                    best_cost=best_eval.cost,
                    accepted=1,
                )
            )
            self._end_cycle(cycle_span, cycle_started, state.cycle)
            self._maybe_checkpoint(checkpointer, state.cycle, snapshot)
            reason = self._stop_reason(state)

        if checkpointer is not None:
            checkpointer.save(snapshot(completed=True, reason=reason or "stopped"))
        return ExplorationResult(
            engine=self.name,
            initial_candidate=initial,
            initial=initial_eval,
            best_candidate=best,
            best=best_eval,
            trajectory=trajectory,
            cycles=state.cycle,
            evaluations=state.evaluations,
            stop_reason=reason or "stopped",
            cache=self._evaluator.stats,
            stages=self._evaluator.stage_stats,
            resilience=self._evaluator.resilience_stats,
            resumed_from=resumed_from,
            front=(
                self._evaluator.front.snapshot()
                if self._evaluator.front is not None
                else None
            ),
            **self._finish_run(engine_span, run_started, state.cycle),
        )


class SimulatedAnnealingEngine(_EngineBase):
    """Metropolis acceptance over batched neighbour proposals."""

    name = "anneal"

    def run(
        self,
        initial: Candidate,
        resume: Optional[Dict[str, Any]] = None,
        checkpointer: Optional[Checkpointer] = None,
    ) -> ExplorationResult:
        config = self._config
        engine_span, run_started = self._begin_run()
        resumed_from: Optional[int] = None
        if resume is not None:
            rng = random.Random()
            rng.setstate(rng_state_from_json(resume["rng"]))
            initial, initial_eval = scored_from_json(resume["initial"])
            best, best_eval = scored_from_json(resume["best"])
            current, current_eval = scored_from_json(
                resume["engine_state"]["current"]
            )
            temperature = float(resume["engine_state"]["temperature"])
            trajectory = trajectory_from_json(resume["trajectory"])
            state = search_state_from_json(resume["state"])
            self._restore_front(resume.get("front"))
            resumed_from = state.cycle
        else:
            rng = random.Random(config.seed)
            current, current_eval = initial, self._evaluator.evaluate(initial)
            best, best_eval = current, current_eval
            initial_eval = current_eval
            temperature = config.initial_temperature
            if temperature is None:
                scale = (
                    initial_eval.cost if math.isfinite(initial_eval.cost) else 1.0
                )
                temperature = max(1e-9, 0.05 * scale)
            trajectory = []
            state = SearchState(evaluations=1, best_cost=best_eval.cost)

        def snapshot(completed: bool = False, reason: Optional[str] = None):
            return snapshot_document(
                engine=self.name,
                seed=config.seed,
                problem_key=self._problem_key(),
                state=state,
                rng_state=rng.getstate(),
                initial=(initial, initial_eval),
                best=(best, best_eval),
                trajectory=trajectory,
                engine_state={
                    "current": scored_to_json(current, current_eval),
                    "temperature": temperature,
                },
                front=self._evaluator.front,
                completed=completed,
                stop_reason=reason,
            )

        reason = self._stop_reason(state)
        while reason is None:
            cycle_span, cycle_started = self._begin_cycle()
            proposals = self._sampler.sample(
                current, rng, config.neighbors_per_cycle
            )
            if not proposals:
                reason = "no distinct neighbors"
                break
            evaluations = self._evaluator.evaluate_many(
                [candidate for _, candidate in proposals]
            )
            state.evaluations += len(proposals)

            accepted = 0
            last_move = "-"
            for (move, candidate), evaluation in zip(proposals, evaluations):
                # Proposals were drawn around the cycle's entry point; the
                # acceptance walk is still sequential, so a batch behaves
                # like neighbors_per_cycle restarts of the same origin.
                delta = evaluation.cost - current_eval.cost
                accept = evaluation.feasible and (
                    delta <= 0
                    or (
                        temperature > 0
                        and rng.random() < math.exp(-delta / temperature)
                    )
                )
                temperature *= config.cooling
                if not accept:
                    continue
                accepted += 1
                last_move = move.describe()
                current, current_eval = candidate, evaluation
                if current_eval.cost < best_eval.cost - 1e-9:
                    best, best_eval = current, current_eval
                    state.best_cost = best_eval.cost
                    state.cycles_since_improvement = -1  # reset below
            state.cycle += 1
            if state.cycles_since_improvement < 0:
                state.cycles_since_improvement = 0
            else:
                state.cycles_since_improvement += 1
            trajectory.append(
                TrajectoryPoint(
                    cycle=state.cycle,
                    move=last_move,
                    cost=current_eval.cost,
                    best_cost=best_eval.cost,
                    accepted=accepted,
                )
            )
            self._end_cycle(cycle_span, cycle_started, state.cycle)
            self._maybe_checkpoint(checkpointer, state.cycle, snapshot)
            reason = self._stop_reason(state)

        if checkpointer is not None:
            checkpointer.save(snapshot(completed=True, reason=reason or "stopped"))
        return ExplorationResult(
            engine=self.name,
            initial_candidate=initial,
            initial=initial_eval,
            best_candidate=best,
            best=best_eval,
            trajectory=trajectory,
            cycles=state.cycle,
            evaluations=state.evaluations,
            stop_reason=reason or "stopped",
            cache=self._evaluator.stats,
            stages=self._evaluator.stage_stats,
            resilience=self._evaluator.resilience_stats,
            resumed_from=resumed_from,
            front=(
                self._evaluator.front.snapshot()
                if self._evaluator.front is not None
                else None
            ),
            **self._finish_run(engine_span, run_started, state.cycle),
        )


ENGINES: Dict[str, type] = {
    TabuSearchEngine.name: TabuSearchEngine,
    SimulatedAnnealingEngine.name: SimulatedAnnealingEngine,
}


class Explorer:
    """One facade over both engines, sharing evaluator, cache and pool.

    Typical use::

        problem = ExplorationProblem.from_system(generate_system(40, 8, seed=1))
        explorer = Explorer(problem, config=ExplorationConfig(seed=1))
        result = explorer.explore("tabu")

    Consecutive ``explore`` calls reuse the evaluator, so comparing engines on
    the same problem pays for each distinct design point once.
    """

    def __init__(
        self,
        problem: ExplorationProblem,
        config: Optional[ExplorationConfig] = None,
        evaluator: Optional[CachedEvaluator] = None,
        pool: Optional[EvaluationPool] = None,
        stopping: Optional[Sequence[StoppingCriterion]] = None,
        tracer=None,
        metrics=None,
    ) -> None:
        self._problem = problem
        self._config = config or ExplorationConfig()
        # tracer/metrics (repro.observability) apply to the evaluator the
        # explorer constructs; an explicitly-passed evaluator keeps its own.
        self._evaluator = evaluator or CachedEvaluator(
            problem,
            self._config.weights,
            pool=pool,
            front=ParetoFront() if self._config.track_front else None,
            tracer=tracer,
            metrics=metrics,
        )
        self._sampler = NeighborhoodSampler(
            problem, priority_choices=self._config.priority_choices
        )
        self._extra_stopping = list(stopping or ())

    @property
    def evaluator(self) -> CachedEvaluator:
        return self._evaluator

    @property
    def config(self) -> ExplorationConfig:
        return self._config

    @property
    def front(self) -> Optional[ParetoFront]:
        """The tracked Pareto front, or None when tracking is off."""
        return self._evaluator.front

    def _stopping_criteria(self) -> List[StoppingCriterion]:
        criteria: List[StoppingCriterion] = [MaxCycles(self._config.max_cycles)]
        if self._config.stall_cycles > 0:
            criteria.append(Stalled(self._config.stall_cycles))
        if self._config.target_cost is not None:
            criteria.append(TargetCost(self._config.target_cost))
        criteria.extend(self._extra_stopping)
        return criteria

    def explore(
        self,
        engine: str = "tabu",
        initial: Optional[Candidate] = None,
        *,
        checkpoint: Optional[Union[str, Path]] = None,
        resume: bool = False,
    ) -> ExplorationResult:
        """Run one engine from the seed mapping (or a given candidate).

        ``checkpoint`` names a JSON file the run snapshots its full state to
        every ``ExplorationConfig.checkpoint_every`` cycles (written
        atomically; see :mod:`repro.exploration.resilience`).  With
        ``resume=True`` an existing checkpoint is loaded first — after
        validating that it belongs to this engine, seed and problem — and
        the search continues bit-identically to the uninterrupted run; a
        missing checkpoint file simply starts from scratch, so resuming is
        idempotent job-runner behaviour, not an error.
        """
        try:
            engine_cls = ENGINES[engine]
        except KeyError:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {sorted(ENGINES)}"
            ) from None
        checkpointer: Optional[Checkpointer] = None
        resume_state: Optional[Dict[str, Any]] = None
        if checkpoint is not None:
            checkpointer = Checkpointer(
                checkpoint, every=self._config.checkpoint_every
            )
            if resume and Path(checkpoint).exists():
                resume_state = load_checkpoint(checkpoint)
                validate_checkpoint(
                    resume_state,
                    engine=engine,
                    seed=self._config.seed,
                    problem_key=self._problem.content_key,
                )
        elif resume:
            raise ValueError("resume=True requires a checkpoint path")
        if initial is None:
            initial = self._problem.initial_candidate()
        runner = engine_cls(
            self._config, self._evaluator, self._sampler, self._stopping_criteria()
        )
        return runner.run(initial, resume=resume_state, checkpointer=checkpointer)


# Registered last: genetic.py imports the engine plumbing defined above, so
# the import has to happen after every name it needs exists.
from .genetic import GeneticEngine  # noqa: E402

ENGINES[GeneticEngine.name] = GeneticEngine
