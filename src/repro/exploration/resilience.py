"""Fault injection, retry policies and checkpointing for the explorer.

The evaluation layer is pure, which makes it *restartable*: a candidate that
was lost to a crashed worker, an injected hang or a poisoned chunk can simply
be evaluated again and must produce the identical
:class:`~repro.exploration.CandidateEvaluation`.  This module supplies the
three pieces the resilient runtime is built from:

:class:`FaultInjector`
    Deterministic, seeded fault decisions.  Faults are *not* drawn from the
    engine RNG: each decision hashes ``(seed, fingerprint, attempt)``, so
    whether an evaluation faults depends only on the candidate and how often
    it was tried — never on worker scheduling, chunking or pool size.  A
    retried evaluation moves to the next attempt and therefore to a fresh
    draw, so injected faults delay results but cannot change them: a run with
    faults injected reports the bit-identical best cost and trajectory as the
    fault-free run with the same engine seed.

:class:`RetryPolicy`
    Bounded retries with exponential backoff and deterministic jitter, a
    per-evaluation timeout for pooled execution, and the pool-restart budget
    after which the :class:`~repro.exploration.EvaluationPool` degrades to
    trusted in-process evaluation.

Checkpoint documents
    Versioned JSON snapshots of a running engine — RNG state, current/best
    candidate, tabu list / temperature / population, trajectory and Pareto
    front — written atomically by :class:`Checkpointer` and validated by
    :func:`load_checkpoint` / :func:`validate_checkpoint`.  Resuming from a
    checkpoint continues the search bit-identically to the uninterrupted run
    (cache *counters* restart from zero; every value the search reads is in
    the snapshot).
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .candidate import Candidate
from .cost import CandidateEvaluation

CHECKPOINT_VERSION = 1

_INFEASIBLE_COST = float("inf")


class InjectedFault(RuntimeError):
    """The exception a 'crash' fault raises inside an evaluation."""


class WorkerInitializationError(RuntimeError):
    """Worker start-up failed: the problem payload or the workers are broken."""


class CheckpointError(ValueError):
    """A checkpoint file is missing, malformed or belongs to a different run."""


# -- fault injection ---------------------------------------------------------------


@dataclass(frozen=True)
class FaultInjector:
    """Seeded, deterministic fault decisions for evaluation workers.

    Rates are independent probabilities checked in order crash -> hang ->
    exit; at most one fault fires per (candidate, attempt).  ``hang_seconds``
    bounds an injected hang (a sleep, so a per-evaluation timeout can catch
    it without leaving an unkillable worker behind).  ``fail_worker_init``
    makes the *worker initialiser* raise instead — the deterministic handle
    on start-up failures.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    exit_rate: float = 0.0
    hang_seconds: float = 30.0
    fail_worker_init: bool = False

    def __post_init__(self) -> None:
        for name in ("crash_rate", "hang_rate", "exit_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {rate!r}")
        if self.hang_seconds < 0:
            raise ValueError("hang_seconds must be non-negative")

    @property
    def armed(self) -> bool:
        """Whether any fault can ever fire."""
        return (
            self.crash_rate > 0
            or self.hang_rate > 0
            or self.exit_rate > 0
            or self.fail_worker_init
        )

    def _draw(self, fingerprint: str, attempt: int, salt: str) -> float:
        digest = hashlib.sha256(
            f"{self.seed}|{fingerprint}|{attempt}|{salt}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def fault_for(self, fingerprint: str, attempt: int) -> Optional[str]:
        """The fault (``'crash'``/``'hang'``/``'exit'``) for one attempt, or None.

        Pure and scheduling-independent: the same (fingerprint, attempt) pair
        always yields the same decision, whatever worker evaluates it.
        """
        if self._draw(fingerprint, attempt, "crash") < self.crash_rate:
            return "crash"
        if self._draw(fingerprint, attempt, "hang") < self.hang_rate:
            return "hang"
        if self._draw(fingerprint, attempt, "exit") < self.exit_rate:
            return "exit"
        return None

    def inject(self, fingerprint: str, attempt: int, in_worker: bool) -> None:
        """Fire the configured fault for this attempt, if any.

        ``in_worker`` distinguishes a pool worker process (where ``'exit'``
        may genuinely kill the process) from in-process evaluation, where
        'exit' and 'hang' both degrade to a crash-style exception — killing
        or sleeping the coordinator would take the whole run down, which is
        exactly what the resilience layer exists to prevent.
        """
        fault = self.fault_for(fingerprint, attempt)
        if fault is None:
            return
        if fault == "crash":
            raise InjectedFault(
                f"injected crash for candidate {fingerprint} (attempt {attempt})"
            )
        if fault == "hang":
            if in_worker:
                time.sleep(self.hang_seconds)
                return
            raise InjectedFault(
                f"injected hang for candidate {fingerprint} (attempt {attempt})"
            )
        # 'exit': abrupt worker death, the BrokenProcessPool case.
        if in_worker:
            os._exit(1)
        raise InjectedFault(
            f"injected exit for candidate {fingerprint} (attempt {attempt})"
        )


# -- retry policy ------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries, deterministic backoff and the pool-restart budget.

    ``max_attempts`` counts *attributable* failures per candidate before it
    is quarantined (scored with the infeasible sentinel instead of killing
    the run).  ``timeout`` bounds one pooled evaluation unit (None disables
    timeouts; injected hangs then merely delay the batch by
    ``FaultInjector.hang_seconds``).  ``max_pool_restarts`` bounds executor
    respawns *without progress* before the pool degrades to in-process
    evaluation.  Backoff for attempt ``k`` is
    ``min(backoff_max, backoff_base * backoff_factor**(k-1))`` plus a
    deterministic jitter hashed from the retried key, so reruns sleep
    identically.
    """

    max_attempts: int = 3
    timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.25
    max_pool_restarts: int = 5
    startup_timeout: float = 60.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff bounds must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        if self.max_pool_restarts < 0:
            raise ValueError("max_pool_restarts must be non-negative")

    def delay_for(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt`` (1-based), in seconds."""
        if attempt < 1 or self.backoff_base <= 0:
            return 0.0
        delay = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
        if self.jitter > 0:
            digest = hashlib.sha256(f"backoff|{key}|{attempt}".encode()).digest()
            fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
            delay *= 1.0 - self.jitter * fraction
        return delay


@dataclass(frozen=True)
class ResilienceStats:
    """Fault/retry counters of one pool (reported in ExplorationResult)."""

    retries: int = 0
    timeouts: int = 0
    worker_restarts: int = 0
    quarantined: int = 0
    injected: int = 0
    integrity_evictions: int = 0
    degraded: bool = False

    @property
    def eventful(self) -> bool:
        """Whether anything at all went wrong (or was injected)."""
        return any(
            getattr(self, f.name) for f in fields(self) if f.name != "degraded"
        ) or self.degraded


def quarantined_evaluation(
    fingerprint: str, failures: int, error: str
) -> CandidateEvaluation:
    """The sentinel scored for a candidate that failed ``failures`` times.

    Infeasible with infinite cost, so every engine treats the design point as
    a dead end instead of dying with it; the error message preserves the last
    failure for diagnosis.
    """
    return CandidateEvaluation(
        fingerprint=fingerprint,
        cost=_INFEASIBLE_COST,
        feasible=False,
        error=f"quarantined after {failures} failed evaluations: {error}",
    )


# -- checkpoint serialisation helpers ----------------------------------------------
#
# Checkpoints are strict JSON (RFC 8259 has no Infinity/NaN), so the one
# non-finite value the search produces — the infeasible cost, float('inf') —
# round-trips as None.


def _cost_to_json(value: float) -> Optional[float]:
    return value if math.isfinite(value) else None


def _cost_from_json(value: Optional[float]) -> float:
    return float(value) if value is not None else _INFEASIBLE_COST


def candidate_to_json(candidate: Candidate) -> Dict[str, Any]:
    return {
        "assignment": [list(pair) for pair in candidate.assignment],
        "priority_function": candidate.priority_function,
        "priority_bias": [list(pair) for pair in candidate.priority_bias],
        "platform": [list(pair) for pair in candidate.platform],
        "communication_assignment": [
            list(pair) for pair in candidate.communication_assignment
        ],
    }


def candidate_from_json(document: Dict[str, Any]) -> Candidate:
    return Candidate(
        assignment=tuple(
            (name, pe) for name, pe in document["assignment"]
        ),
        priority_function=document["priority_function"],
        priority_bias=tuple(
            (name, float(bias)) for name, bias in document["priority_bias"]
        ),
        platform=tuple((name, kind) for name, kind in document["platform"]),
        communication_assignment=tuple(
            (message, bus) for message, bus in document["communication_assignment"]
        ),
    )


def evaluation_to_json(evaluation: CandidateEvaluation) -> Dict[str, Any]:
    return {
        "fingerprint": evaluation.fingerprint,
        "cost": _cost_to_json(evaluation.cost),
        "feasible": evaluation.feasible,
        "delta_max": _cost_to_json(evaluation.delta_max),
        "delta_m": _cost_to_json(evaluation.delta_m),
        "mean_path_delay": _cost_to_json(evaluation.mean_path_delay),
        "load_imbalance": evaluation.load_imbalance,
        "architecture_cost": evaluation.architecture_cost,
        "bus_imbalance": evaluation.bus_imbalance,
        "paths": evaluation.paths,
        "error": evaluation.error,
    }


def evaluation_from_json(document: Dict[str, Any]) -> CandidateEvaluation:
    return CandidateEvaluation(
        fingerprint=document["fingerprint"],
        cost=_cost_from_json(document["cost"]),
        feasible=bool(document["feasible"]),
        delta_max=_cost_from_json(document["delta_max"]),
        delta_m=_cost_from_json(document["delta_m"]),
        mean_path_delay=_cost_from_json(document["mean_path_delay"]),
        load_imbalance=float(document["load_imbalance"]),
        architecture_cost=float(document["architecture_cost"]),
        bus_imbalance=float(document["bus_imbalance"]),
        paths=int(document["paths"]),
        error=document.get("error") or "",
    )


def scored_to_json(
    candidate: Candidate, evaluation: CandidateEvaluation
) -> Dict[str, Any]:
    return {
        "candidate": candidate_to_json(candidate),
        "evaluation": evaluation_to_json(evaluation),
    }


def scored_from_json(
    document: Dict[str, Any]
) -> Tuple[Candidate, CandidateEvaluation]:
    return (
        candidate_from_json(document["candidate"]),
        evaluation_from_json(document["evaluation"]),
    )


def rng_state_to_json(state: Tuple[Any, ...]) -> List[Any]:
    """``random.Random.getstate()`` output as a JSON-safe list."""
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def rng_state_from_json(document: Sequence[Any]) -> Tuple[Any, ...]:
    version, internal, gauss_next = document
    return (version, tuple(internal), gauss_next)


def trajectory_to_json(trajectory: Sequence[Any]) -> List[Dict[str, Any]]:
    return [
        {
            "cycle": point.cycle,
            "move": point.move,
            "cost": _cost_to_json(point.cost),
            "best_cost": _cost_to_json(point.best_cost),
            "accepted": point.accepted,
        }
        for point in trajectory
    ]


def trajectory_from_json(documents: Sequence[Dict[str, Any]]) -> List[Any]:
    from .engines import TrajectoryPoint  # circular at import time

    return [
        TrajectoryPoint(
            cycle=int(entry["cycle"]),
            move=entry["move"],
            cost=_cost_from_json(entry["cost"]),
            best_cost=_cost_from_json(entry["best_cost"]),
            accepted=int(entry["accepted"]),
        )
        for entry in documents
    ]


def search_state_to_json(state: Any) -> Dict[str, Any]:
    return {
        "cycle": state.cycle,
        "evaluations": state.evaluations,
        "cycles_since_improvement": state.cycles_since_improvement,
        "best_cost": _cost_to_json(state.best_cost),
    }


def search_state_from_json(document: Dict[str, Any]) -> Any:
    from .engines import SearchState  # circular at import time

    return SearchState(
        cycle=int(document["cycle"]),
        evaluations=int(document["evaluations"]),
        cycles_since_improvement=int(document["cycles_since_improvement"]),
        best_cost=_cost_from_json(document["best_cost"]),
    )


def front_to_json(front: Optional[Any]) -> Optional[List[Dict[str, Any]]]:
    """A ParetoFront's points, in offer order (first-offered wins ties)."""
    if front is None:
        return None
    return [
        scored_to_json(point.candidate, point.evaluation)
        for point in front.points
    ]


def snapshot_document(
    *,
    engine: str,
    seed: int,
    problem_key: str,
    state: Any,
    rng_state: Tuple[Any, ...],
    initial: Tuple[Candidate, CandidateEvaluation],
    best: Tuple[Candidate, CandidateEvaluation],
    trajectory: Sequence[Any],
    engine_state: Dict[str, Any],
    front: Optional[Any] = None,
    completed: bool = False,
    stop_reason: Optional[str] = None,
) -> Dict[str, Any]:
    """Assemble one versioned checkpoint document (plain JSON types only)."""
    return {
        "version": CHECKPOINT_VERSION,
        "engine": engine,
        "seed": seed,
        "problem": problem_key,
        "completed": completed,
        "stop_reason": stop_reason,
        "state": search_state_to_json(state),
        "rng": rng_state_to_json(rng_state),
        "initial": scored_to_json(*initial),
        "best": scored_to_json(*best),
        "trajectory": trajectory_to_json(trajectory),
        "engine_state": engine_state,
        "front": front_to_json(front),
    }


# -- checkpoint files --------------------------------------------------------------


class Checkpointer:
    """Atomic, periodic checkpoint writer.

    ``every`` is the cycle period; engines call :meth:`due` once per cycle
    and :meth:`save` with the full snapshot document.  Writes go to a
    temporary sibling first and are moved into place with ``os.replace``, so
    a crash mid-write never corrupts the previous checkpoint.
    """

    def __init__(self, path: Union[str, Path], every: int = 1) -> None:
        self.path = Path(path)
        self.every = max(1, int(every))
        self.saves = 0

    def due(self, cycle: int) -> bool:
        return cycle % self.every == 0

    def save(self, document: Dict[str, Any]) -> None:
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(document, sort_keys=True) + "\n")
        os.replace(tmp, self.path)
        self.saves += 1


def load_checkpoint(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and structurally validate a checkpoint document."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint {path} does not exist")
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise CheckpointError(f"checkpoint {path} is not valid JSON: {error}") from error
    if not isinstance(document, dict):
        raise CheckpointError(f"checkpoint {path} is not a JSON object")
    version = document.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {version!r}; "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    for key in ("engine", "seed", "problem", "state", "rng", "initial", "best",
                "trajectory", "engine_state"):
        if key not in document:
            raise CheckpointError(f"checkpoint {path} is missing {key!r}")
    return document


def validate_checkpoint(
    document: Dict[str, Any],
    *,
    engine: str,
    seed: int,
    problem_key: str,
) -> None:
    """Reject resuming a checkpoint into a different run.

    The engine, seed and problem content must match — resuming a tabu
    checkpoint into an annealing run (or onto a different system) could not
    possibly reproduce the uninterrupted trajectory.  A larger cycle budget
    is fine (that is the continuation use case) and not checked here.
    """
    if document["engine"] != engine:
        raise CheckpointError(
            f"checkpoint was written by engine {document['engine']!r}, "
            f"cannot resume with {engine!r}"
        )
    if document["seed"] != seed:
        raise CheckpointError(
            f"checkpoint was written with seed {document['seed']}, "
            f"cannot resume with seed {seed}"
        )
    if document["problem"] != problem_key:
        raise CheckpointError(
            "checkpoint belongs to a different problem "
            f"(content key {document['problem']!r} != {problem_key!r})"
        )
