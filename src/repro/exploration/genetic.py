"""NSGA-style genetic engine over the mapping/priority/platform design space.

Where tabu search and simulated annealing walk one design point, the genetic
engine evolves a *population* and reports a whole Pareto front: the
non-dominated trade-offs between the paper's worst-case delay, the mean
path delay, processor load balance and — with architecture sizing enabled —
the platform cost (see :mod:`repro.exploration.pareto`).

The engine plugs into the exact same machinery as the single-point engines:

* it draws all randomness from one ``random.Random(seed)``, so a seed fully
  determines the final population, the reported front and the trajectory;
* every evaluation goes through the shared :class:`CachedEvaluator` — whole
  generations are scored as one batch, which the optional
  :class:`~repro.exploration.EvaluationPool` parallelises across workers;
* stopping is the same pluggable criterion list (one *cycle* is one
  generation).

Generation sketch (NSGA-II selection, the repository's moves as mutation):

1. score the current population (batch evaluation, cache-deduplicated);
2. rank it by non-dominated front and crowding distance;
3. breed ``population_size`` children: binary tournaments pick parents,
   uniform mapping crossover mixes their assignments (the platform and its
   validity come from one *donor* parent), and one to ``mutation_moves``
   neighbourhood moves mutate the child;
4. score the children, pool parents + children, and keep the best
   ``population_size`` by (front rank, crowding distance) — elitism falls out
   of pooling, diversity out of the crowding tie-break.

Infeasible candidates rank behind every feasible front, so an infeasible seed
population repairs itself the same way the single-point engines do.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .candidate import Candidate
from .cost import CandidateEvaluation
from .engines import (
    ExplorationResult,
    SearchState,
    TrajectoryPoint,
    _EngineBase,
)
from .pareto import ParetoFront, crowding_distances, non_dominated_sort
from .resilience import (
    Checkpointer,
    candidate_from_json,
    candidate_to_json,
    evaluation_from_json,
    evaluation_to_json,
    rng_state_from_json,
    scored_from_json,
    search_state_from_json,
    snapshot_document,
    trajectory_from_json,
)


class GeneticEngine(_EngineBase):
    """Population search with NSGA-II selection and Pareto-front reporting."""

    name = "genetic"

    # -- population helpers --------------------------------------------------

    def _mutate(self, candidate: Candidate, rng: random.Random) -> Candidate:
        """Apply 1..``mutation_moves`` sampled neighbourhood moves."""
        moves = rng.randint(1, max(1, self._config.mutation_moves))
        for _ in range(moves):
            neighbors = self._sampler.sample(candidate, rng, 1)
            if not neighbors:
                break
            _, candidate = neighbors[0]
        return candidate

    def _initial_population(
        self, initial: Candidate, rng: random.Random
    ) -> List[Candidate]:
        """The seed candidate plus distinct mutants of it."""
        population = [initial]
        seen = {initial.fingerprint}
        budget = self._config.population_size * 8
        while len(population) < self._config.population_size and budget > 0:
            budget -= 1
            mutant = self._mutate(initial, rng)
            if mutant.fingerprint in seen:
                continue
            seen.add(mutant.fingerprint)
            population.append(mutant)
        return population

    def _crossover(
        self, first: Candidate, second: Candidate, rng: random.Random
    ) -> Candidate:
        """Uniform mapping crossover; platform and validity come from a donor.

        Each process takes its processor from either parent, falling back to
        the donor's choice when the other parent's processor is not active on
        the donor's platform (only possible with architecture sizing).
        Communication pins cross over the same way, message by message —
        "unpinned" (derived) is a legitimate allele, inherited like any pin.
        Only a pin naming a bus the donor's platform does not instantiate
        falls back to the donor's pin for that message, or is dropped (stale
        pins are additionally filtered at evaluation time).
        """
        donor, other = (first, second) if rng.random() < 0.5 else (second, first)
        problem = self._evaluator.problem
        allowed = set(problem.processors_for(donor))
        other_assignment = other.assignment_dict
        pairs: List[Tuple[str, str]] = []
        for name, pe_name in donor.assignment:
            choice = pe_name if rng.random() < 0.5 else other_assignment[name]
            if choice not in allowed:
                choice = pe_name
            pairs.append((name, choice))
        priority = (
            donor.priority_function
            if rng.random() < 0.5
            else other.priority_function
        )
        bias = donor.priority_bias if rng.random() < 0.5 else other.priority_bias
        donor_pins = donor.communication_dict
        other_pins = other.communication_dict
        allowed_buses = (
            set(donor.platform_buses) if donor.platform else None
        )
        pins: List[Tuple[str, str]] = []
        for message in sorted(set(donor_pins) | set(other_pins)):
            side = donor_pins if rng.random() < 0.5 else other_pins
            bus_name = side.get(message)
            if bus_name is None:
                continue  # the chosen parent leaves this message derived
            if allowed_buses is not None and bus_name not in allowed_buses:
                bus_name = donor_pins.get(message)
                if bus_name is None or bus_name not in allowed_buses:
                    continue
            pins.append((message, bus_name))
        return Candidate(
            assignment=tuple(sorted(pairs)),
            priority_function=priority,
            priority_bias=bias,
            platform=donor.platform,
            communication_assignment=tuple(pins),
        )

    # -- NSGA ranking ---------------------------------------------------------

    @staticmethod
    def _rank(
        evaluations: Sequence[CandidateEvaluation],
    ) -> Tuple[List[int], List[float]]:
        """Front rank and crowding distance per individual.

        Feasible individuals are ranked by non-dominated sorting of their
        objective vectors; infeasible ones all share the worst rank with zero
        crowding, so they only survive when there is nothing better.
        """
        feasible = [i for i, ev in enumerate(evaluations) if ev.feasible]
        ranks = [len(evaluations) + 1] * len(evaluations)
        crowding = [0.0] * len(evaluations)
        if feasible:
            vectors = [evaluations[i].objectives for i in feasible]
            fronts = non_dominated_sort(vectors)
            for rank, front in enumerate(fronts):
                front_vectors = [vectors[j] for j in front]
                distances = crowding_distances(front_vectors)
                for j, distance in zip(front, distances):
                    ranks[feasible[j]] = rank
                    crowding[feasible[j]] = distance
        return ranks, crowding

    def _tournament(
        self,
        population: Sequence[Candidate],
        evaluations: Sequence[CandidateEvaluation],
        ranks: Sequence[int],
        crowding: Sequence[float],
        rng: random.Random,
    ) -> int:
        """Binary/k-way tournament on (rank, crowding, scalar cost)."""
        size = min(max(2, self._config.tournament_size), len(population))
        contenders = rng.sample(range(len(population)), size)
        return min(
            contenders,
            key=lambda i: (
                ranks[i],
                -crowding[i],
                evaluations[i].cost,
                population[i].fingerprint,
            ),
        )

    def _select_survivors(
        self,
        population: List[Candidate],
        evaluations: List[CandidateEvaluation],
    ) -> Tuple[List[Candidate], List[CandidateEvaluation]]:
        """Keep the best ``population_size`` of a pooled parent+child set."""
        # Deduplicate by fingerprint first (children may recreate parents).
        unique: Dict[str, int] = {}
        for index, candidate in enumerate(population):
            unique.setdefault(candidate.fingerprint, index)
        indices = sorted(unique.values())
        pooled = [population[i] for i in indices]
        pooled_evals = [evaluations[i] for i in indices]
        ranks, crowding = self._rank(pooled_evals)
        order = sorted(
            range(len(pooled)),
            key=lambda i: (
                ranks[i],
                -crowding[i],
                pooled_evals[i].cost,
                pooled[i].fingerprint,
            ),
        )
        keep = order[: self._config.population_size]
        return [pooled[i] for i in keep], [pooled_evals[i] for i in keep]

    # -- the generation loop ---------------------------------------------------

    def run(
        self,
        initial: Candidate,
        resume: Optional[Dict[str, Any]] = None,
        checkpointer: Optional[Checkpointer] = None,
    ) -> ExplorationResult:
        """Evolve a population from the seed candidate; report best + front."""
        config = self._config
        engine_span, run_started = self._begin_run()
        front = self._evaluator.front
        offers_frontwards = front is None  # otherwise the evaluator offers
        resumed_from: Optional[int] = None
        if resume is not None:
            rng = random.Random()
            rng.setstate(rng_state_from_json(resume["rng"]))
            engine_state = resume["engine_state"]
            population = [
                candidate_from_json(entry) for entry in engine_state["population"]
            ]
            evaluations = [
                evaluation_from_json(entry)
                for entry in engine_state["evaluations"]
            ]
            initial, initial_eval = scored_from_json(resume["initial"])
            best, best_eval = scored_from_json(resume["best"])
            trajectory = trajectory_from_json(resume["trajectory"])
            state = search_state_from_json(resume["state"])
            if front is None:
                front = ParetoFront()
                for entry in resume.get("front") or []:
                    front.offer(*scored_from_json(entry))
            else:
                self._restore_front(resume.get("front"))
            resumed_from = state.cycle
        else:
            rng = random.Random(config.seed)
            if front is None:
                front = ParetoFront()

            population = self._initial_population(initial, rng)
            evaluations = self._evaluator.evaluate_many(population)
            if offers_frontwards:
                front.offer_many(population, evaluations)
            initial_eval = evaluations[0]

            def better(index: int) -> Tuple[float, str]:
                return (evaluations[index].cost, population[index].fingerprint)

            best_index = min(range(len(population)), key=better)
            best, best_eval = population[best_index], evaluations[best_index]
            if not best_eval.feasible:
                best, best_eval = initial, initial_eval

            state = SearchState(
                evaluations=len(population),
                best_cost=best_eval.cost if best_eval.feasible else math.inf,
            )
            trajectory = []

        def snapshot(completed: bool = False, reason: Optional[str] = None):
            return snapshot_document(
                engine=self.name,
                seed=config.seed,
                problem_key=self._problem_key(),
                state=state,
                rng_state=rng.getstate(),
                initial=(initial, initial_eval),
                best=(best, best_eval),
                trajectory=trajectory,
                engine_state={
                    "population": [
                        candidate_to_json(candidate) for candidate in population
                    ],
                    "evaluations": [
                        evaluation_to_json(evaluation)
                        for evaluation in evaluations
                    ],
                },
                front=front,
                completed=completed,
                stop_reason=reason,
            )

        reason = self._stop_reason(state)
        while reason is None:
            cycle_span, cycle_started = self._begin_cycle()
            ranks, crowding = self._rank(evaluations)
            children: List[Candidate] = []
            for _ in range(config.population_size):
                first = self._tournament(
                    population, evaluations, ranks, crowding, rng
                )
                second = self._tournament(
                    population, evaluations, ranks, crowding, rng
                )
                if rng.random() < config.crossover_rate:
                    child = self._crossover(
                        population[first], population[second], rng
                    )
                else:
                    winner = min(
                        (first, second),
                        key=lambda i: (ranks[i], -crowding[i], evaluations[i].cost),
                    )
                    child = population[winner]
                children.append(self._mutate(child, rng))

            child_evaluations = self._evaluator.evaluate_many(children)
            if offers_frontwards:
                front.offer_many(children, child_evaluations)
            state.evaluations += len(children)

            # Track the best against every *evaluated* child, before survivor
            # selection: crowding truncation may drop the scalar-best child
            # from the next population, but it was still found by this run.
            improved = False
            for candidate, evaluation in zip(children, child_evaluations):
                if evaluation.feasible and (
                    evaluation.cost < best_eval.cost - 1e-9
                    or not best_eval.feasible
                ):
                    best, best_eval = candidate, evaluation
                    improved = True

            survivor_fingerprints = {c.fingerprint for c in population}
            population, evaluations = self._select_survivors(
                population + children, evaluations + child_evaluations
            )
            fresh_survivors = sum(
                1
                for candidate in population
                if candidate.fingerprint not in survivor_fingerprints
            )
            state.cycle += 1
            if improved:
                state.cycles_since_improvement = 0
                state.best_cost = best_eval.cost
            else:
                state.cycles_since_improvement += 1

            generation_best = min(
                (ev.cost for ev in evaluations if ev.feasible),
                default=math.inf,
            )
            trajectory.append(
                TrajectoryPoint(
                    cycle=state.cycle,
                    move=f"generation ({len(front)} front points)",
                    cost=generation_best,
                    best_cost=best_eval.cost,
                    accepted=fresh_survivors,
                )
            )
            self._end_cycle(cycle_span, cycle_started, state.cycle)
            self._maybe_checkpoint(checkpointer, state.cycle, snapshot)
            reason = self._stop_reason(state)

        if checkpointer is not None:
            checkpointer.save(snapshot(completed=True, reason=reason or "stopped"))
        return ExplorationResult(
            engine=self.name,
            initial_candidate=initial,
            initial=initial_eval,
            best_candidate=best,
            best=best_eval,
            trajectory=trajectory,
            cycles=state.cycle,
            evaluations=state.evaluations,
            stop_reason=reason or "stopped",
            cache=self._evaluator.stats,
            stages=self._evaluator.stage_stats,
            resilience=self._evaluator.resilience_stats,
            resumed_from=resumed_from,
            front=front.snapshot(),
            **self._finish_run(engine_span, run_started, state.cycle),
        )
