"""The design-space exploration problem: what is searched and how it is scored.

An :class:`ExplorationProblem` bundles the *process-level* conditional process
graph (communications not yet expanded — they depend on the mapping being
explored), the target architecture and the seed mapping the search starts
from.  It knows how to materialise any :class:`~repro.exploration.Candidate`
into the full evaluation pipeline of the repository:

    candidate -> Mapping -> expand_communications -> PathListScheduler
              -> ScheduleMerger.merge -> cost components

Problems serialise to the repository's JSON system-description format
(:func:`repro.io.system_to_dict`), which is how the parallel evaluation pool
ships them to worker processes: each worker rebuilds the problem once from the
payload and then evaluates small candidate tuples, so no scheduler state (and
no condition-universe bitmask) ever crosses a process boundary.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

from ..architecture.architecture import Architecture
from ..architecture.mapping import Mapping
from ..graph.cpg import ConditionalProcessGraph
from ..io.serialization import system_from_dict, system_to_dict
from .candidate import DEFAULT_PRIORITY_FUNCTION, Candidate


class ExplorationProblem:
    """A mapping/priority design space over one system.

    Parameters
    ----------
    graph:
        The process-level conditional process graph (no communication
        processes; edges carry their communication times).
    mapping:
        The seed mapping of every ordinary process (e.g. produced upstream by
        partitioning, or by the random generator).
    architecture:
        Defaults to ``mapping.architecture``.
    """

    def __init__(
        self,
        graph: ConditionalProcessGraph,
        mapping: Mapping,
        architecture: Optional[Architecture] = None,
        name: Optional[str] = None,
    ) -> None:
        self._graph = graph
        self._architecture = architecture or mapping.architecture
        self._base_mapping = mapping
        self.name = name or graph.name
        self._movable: Tuple[str, ...] = tuple(
            process.name for process in graph.ordinary_processes
        )
        self._processors: Tuple[str, ...] = tuple(
            pe.name for pe in self._architecture.processors
        )

    # -- construction shortcuts ---------------------------------------------

    @classmethod
    def from_system(cls, system: Any, name: Optional[str] = None) -> "ExplorationProblem":
        """Build a problem from a generated or deserialised system.

        Accepts a :class:`repro.generator.GeneratedSystem` (uses its
        process-level graph) or a :class:`repro.io.SystemDescription`.
        """
        if hasattr(system, "process_graph"):  # GeneratedSystem
            return cls(
                system.process_graph,
                system.mapping,
                system.architecture,
                name=name,
            )
        return cls(system.graph, system.mapping, system.architecture, name=name)

    # -- accessors -----------------------------------------------------------

    @property
    def graph(self) -> ConditionalProcessGraph:
        return self._graph

    @property
    def architecture(self) -> Architecture:
        return self._architecture

    @property
    def base_mapping(self) -> Mapping:
        return self._base_mapping

    @property
    def movable_processes(self) -> Tuple[str, ...]:
        """Names of the processes whose mapping the explorer may change."""
        return self._movable

    @property
    def processor_names(self) -> Tuple[str, ...]:
        """Names of the non-bus processing elements candidates may use."""
        return self._processors

    def initial_candidate(
        self, priority_function: str = DEFAULT_PRIORITY_FUNCTION
    ) -> Candidate:
        """The search's starting point: the seed mapping, unperturbed priorities."""
        return Candidate.from_mapping(
            self._base_mapping, self._movable, priority_function
        )

    def mapping_for(self, candidate: Candidate) -> Mapping:
        """Materialise a candidate's assignment as a validated Mapping."""
        mapping = candidate.to_mapping(self._architecture)
        mapping.validate_for(self._movable)
        return mapping

    # -- worker transport ----------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """Serialise to the JSON system-description document (picklable)."""
        return system_to_dict(
            self._graph, self._architecture, self._base_mapping, name=self.name
        )

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ExplorationProblem":
        """Rebuild a problem from :meth:`to_payload` output (in a worker)."""
        system = system_from_dict(payload)
        return cls(system.graph, system.mapping, system.architecture, name=system.name)

    def __repr__(self) -> str:
        return (
            f"ExplorationProblem(name={self.name!r}, "
            f"processes={len(self._movable)}, processors={len(self._processors)})"
        )
