"""The design-space exploration problem: what is searched and how it is scored.

An :class:`ExplorationProblem` bundles the *process-level* conditional process
graph (communications not yet expanded — they depend on the mapping being
explored), the target architecture and the seed mapping the search starts
from.  It knows how to materialise any :class:`~repro.exploration.Candidate`
into the full evaluation pipeline of the repository:

    candidate -> Mapping -> expand_communications -> PathListScheduler
              -> ScheduleMerger.merge -> cost components

With :class:`ArchitectureBounds` the problem also spans *architecture sizing*:
candidates carry an explicit platform (which programmable processors and buses
exist) and :meth:`ExplorationProblem.architecture_for` materialises the sized
architecture a candidate describes, so the search can resize the platform, not
just remap onto it.

Problems serialise to the repository's JSON system-description format
(:func:`repro.io.system_to_dict`), which is how the parallel evaluation pool
ships them to worker processes: each worker rebuilds the problem once from the
payload and then evaluates small candidate tuples, so no scheduler state (and
no condition-universe bitmask) ever crosses a process boundary.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..architecture.architecture import Architecture
from ..architecture.mapping import Mapping
from ..architecture.processing_element import bus as make_bus
from ..architecture.processing_element import programmable
from ..graph.cpg import ConditionalProcessGraph
from ..io.serialization import system_from_dict, system_to_dict
from .candidate import DEFAULT_PRIORITY_FUNCTION, Candidate


@dataclass(frozen=True)
class ArchitectureBounds:
    """Declared limits of the architecture-sizing design space.

    Passing bounds to an :class:`ExplorationProblem` turns architecture sizing
    on: candidates then carry an explicit *platform* (which programmable
    processors and buses exist) and the sampler may add or remove elements
    within these limits.  Hardware processors (ASICs) are never sizable.

    Parameters
    ----------
    max_processors / min_processors:
        Inclusive bounds on the number of programmable processors.
        ``max_processors=None`` resolves to "two more than the seed
        architecture provides".
    max_buses / min_buses:
        Inclusive bounds on the number of buses.  ``max_buses=None`` resolves
        to "one more than the seed architecture provides".  Keep
        ``min_buses >= 1`` whenever processes communicate across processors —
        removing the last bus makes every such design point infeasible.
    processor_speed / bus_speed:
        Relative speed of the elements the search *adds* (seed elements keep
        their own speeds).
    """

    max_processors: Optional[int] = None
    min_processors: int = 1
    max_buses: Optional[int] = None
    min_buses: int = 1
    processor_speed: float = 1.0
    bus_speed: float = 1.0

    def resolved_for(self, architecture: Architecture) -> "ArchitectureBounds":
        """Fill the ``None`` maxima from the seed architecture's element counts."""
        max_processors = self.max_processors
        if max_processors is None:
            max_processors = len(architecture.programmable_processors) + 2
        max_buses = self.max_buses
        if max_buses is None:
            max_buses = len(architecture.buses) + 1
        bounds = replace(self, max_processors=max_processors, max_buses=max_buses)
        bounds.validate()
        return bounds

    def validate(self) -> None:
        """Reject bounds no platform could satisfy."""
        if self.min_processors < 1:
            raise ValueError("min_processors must be at least 1")
        if self.min_buses < 0:
            raise ValueError("min_buses must be non-negative")
        if self.max_processors is not None and self.max_processors < self.min_processors:
            raise ValueError("max_processors must be >= min_processors")
        if self.max_buses is not None and self.max_buses < self.min_buses:
            raise ValueError("max_buses must be >= min_buses")
        if self.processor_speed <= 0 or self.bus_speed <= 0:
            raise ValueError("element speeds must be positive")


def _spare_names(prefix: str, taken: set, count: int) -> Tuple[str, ...]:
    """Deterministic pool of fresh element names avoiding ``taken``."""
    names: List[str] = []
    index = 1
    while len(names) < count:
        name = f"{prefix}{index}"
        index += 1
        if name in taken:
            continue
        names.append(name)
    return tuple(names)


class ExplorationProblem:
    """A mapping/priority design space over one system.

    Parameters
    ----------
    graph:
        The process-level conditional process graph (no communication
        processes; edges carry their communication times).
    mapping:
        The seed mapping of every ordinary process (e.g. produced upstream by
        partitioning, or by the random generator).
    architecture:
        Defaults to ``mapping.architecture``.
    bounds:
        Optional :class:`ArchitectureBounds`.  When given, architecture sizing
        is enabled: candidates carry an explicit platform and the search may
        add or remove programmable processors and buses within the bounds.
    """

    def __init__(
        self,
        graph: ConditionalProcessGraph,
        mapping: Mapping,
        architecture: Optional[Architecture] = None,
        name: Optional[str] = None,
        bounds: Optional[ArchitectureBounds] = None,
    ) -> None:
        self._graph = graph
        self._architecture = architecture or mapping.architecture
        self._base_mapping = mapping
        self.name = name or graph.name
        self._movable: Tuple[str, ...] = tuple(
            process.name for process in graph.ordinary_processes
        )
        self._processors: Tuple[str, ...] = tuple(
            pe.name for pe in self._architecture.processors
        )
        self._bounds: Optional[ArchitectureBounds] = None
        self._spare_processors: Tuple[str, ...] = ()
        self._spare_buses: Tuple[str, ...] = ()
        self._architecture_cache: Dict[Tuple[Tuple[str, str], ...], Architecture] = {}
        if bounds is not None:
            self._bounds = bounds.resolved_for(self._architecture)
            taken = {pe.name for pe in self._architecture.processing_elements}
            headroom = self._bounds.max_processors - len(
                self._architecture.programmable_processors
            )
            self._spare_processors = _spare_names("xpe", taken, max(0, headroom))
            taken |= set(self._spare_processors)
            headroom = self._bounds.max_buses - len(self._architecture.buses)
            self._spare_buses = _spare_names("xbus", taken, max(0, headroom))

    # -- construction shortcuts ---------------------------------------------

    @classmethod
    def from_system(
        cls,
        system: Any,
        name: Optional[str] = None,
        bounds: Optional[ArchitectureBounds] = None,
    ) -> "ExplorationProblem":
        """Build a problem from a generated or deserialised system.

        Accepts a :class:`repro.generator.GeneratedSystem` (uses its
        process-level graph) or a :class:`repro.io.SystemDescription`.
        """
        if hasattr(system, "process_graph"):  # GeneratedSystem
            return cls(
                system.process_graph,
                system.mapping,
                system.architecture,
                name=name,
                bounds=bounds,
            )
        return cls(
            system.graph, system.mapping, system.architecture, name=name, bounds=bounds
        )

    # -- accessors -----------------------------------------------------------

    @property
    def graph(self) -> ConditionalProcessGraph:
        return self._graph

    @property
    def architecture(self) -> Architecture:
        return self._architecture

    @property
    def base_mapping(self) -> Mapping:
        return self._base_mapping

    @property
    def movable_processes(self) -> Tuple[str, ...]:
        """Names of the processes whose mapping the explorer may change."""
        return self._movable

    @property
    def processor_names(self) -> Tuple[str, ...]:
        """Names of the non-bus processing elements of the *base* architecture."""
        return self._processors

    @property
    def bounds(self) -> Optional[ArchitectureBounds]:
        """The resolved sizing bounds, or None when sizing is disabled."""
        return self._bounds

    @property
    def spare_processor_names(self) -> Tuple[str, ...]:
        """Deterministic name pool for processors the search may add."""
        return self._spare_processors

    @property
    def spare_bus_names(self) -> Tuple[str, ...]:
        """Deterministic name pool for buses the search may add."""
        return self._spare_buses

    def initial_candidate(
        self, priority_function: str = DEFAULT_PRIORITY_FUNCTION
    ) -> Candidate:
        """The search's starting point: the seed mapping, unperturbed priorities.

        With sizing enabled the candidate's platform lists the seed
        architecture's programmable processors and buses explicitly.
        """
        platform: Tuple[Tuple[str, str], ...] = ()
        if self._bounds is not None:
            platform = tuple(sorted(
                [(pe.name, "programmable")
                 for pe in self._architecture.programmable_processors]
                + [(pe.name, "bus") for pe in self._architecture.buses]
            ))
        return Candidate.from_mapping(
            self._base_mapping, self._movable, priority_function, platform=platform
        )

    def architecture_for(self, candidate: Candidate) -> Architecture:
        """The architecture a candidate's platform describes (base when empty).

        Sized architectures are cached by platform tuple: many candidates
        share the same platform, and :class:`~repro.architecture.Architecture`
        construction validates topology each time.
        """
        if not candidate.platform:
            return self._architecture
        cached = self._architecture_cache.get(candidate.platform)
        if cached is not None:
            return cached
        base = self._architecture
        speeds = self._bounds or ArchitectureBounds().resolved_for(base)
        processors = list(base.hardware_processors)
        for name in candidate.platform_processors:
            existing = base.get(name)
            processors.append(
                existing
                if existing is not None
                else programmable(name, speed=speeds.processor_speed)
            )
        active_names = {pe.name for pe in processors}
        all_base = {pe.name for pe in base.processors}
        buses = []
        connectivity: Dict[str, Iterable[str]] = {}
        for name in candidate.platform_buses:
            existing = base.get(name)
            if existing is None:
                buses.append(make_bus(name, speed=speeds.bus_speed))
                continue
            buses.append(existing)
            connected = {pe.name for pe in base.processors_on_bus(name)}
            if connected != all_base:
                # A restricted bus stays restricted (intersected with the
                # active set); fully-connected buses keep connecting
                # everything, including processors the search added.
                connectivity[name] = sorted(connected & active_names)
        architecture = Architecture(
            processors,
            buses,
            condition_broadcast_time=base.condition_broadcast_time,
            connectivity=connectivity or None,
        )
        self._architecture_cache[candidate.platform] = architecture
        return architecture

    def processors_for(self, candidate: Candidate) -> Tuple[str, ...]:
        """Names of the processors a candidate's processes may be mapped to."""
        if not candidate.platform:
            return self._processors
        active = set(candidate.platform_processors)
        ordered = [
            pe.name
            for pe in self._architecture.processors
            if pe.is_hardware or pe.name in active
        ]
        ordered.extend(
            name for name in self._spare_processors if name in active
        )
        return tuple(ordered)

    def mapping_for(self, candidate: Candidate) -> Mapping:
        """Materialise a candidate's assignment as a validated Mapping."""
        mapping = candidate.to_mapping(self.architecture_for(candidate))
        mapping.validate_for(self._movable)
        return mapping

    # -- worker transport ----------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """Serialise to the JSON system-description document (picklable)."""
        payload = system_to_dict(
            self._graph, self._architecture, self._base_mapping, name=self.name
        )
        if self._bounds is not None:
            payload["sizing_bounds"] = asdict(self._bounds)
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ExplorationProblem":
        """Rebuild a problem from :meth:`to_payload` output (in a worker)."""
        system = system_from_dict(payload)
        bounds = None
        if "sizing_bounds" in payload:
            bounds = ArchitectureBounds(**payload["sizing_bounds"])
        return cls(
            system.graph,
            system.mapping,
            system.architecture,
            name=system.name,
            bounds=bounds,
        )

    def __repr__(self) -> str:
        return (
            f"ExplorationProblem(name={self.name!r}, "
            f"processes={len(self._movable)}, processors={len(self._processors)})"
        )
