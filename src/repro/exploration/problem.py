"""The design-space exploration problem: what is searched and how it is scored.

An :class:`ExplorationProblem` bundles the *process-level* conditional process
graph (communications not yet expanded — they depend on the mapping being
explored), the target architecture and the seed mapping the search starts
from.  It knows how to materialise any :class:`~repro.exploration.Candidate`
into the full evaluation pipeline of the repository:

    candidate -> Mapping -> expand_communications -> PathListScheduler
              -> ScheduleMerger.merge -> cost components

With :class:`ArchitectureBounds` the problem also spans *architecture sizing*:
candidates carry an explicit platform (which programmable processors and buses
exist) and :meth:`ExplorationProblem.architecture_for` materialises the sized
architecture a candidate describes, so the search can resize the platform, not
just remap onto it.

Problems serialise to the repository's JSON system-description format
(:func:`repro.io.system_to_dict`), which is how the parallel evaluation pool
ships them to worker processes: each worker rebuilds the problem once from the
payload and then evaluates small candidate tuples, so no scheduler state (and
no condition-universe bitmask) ever crosses a process boundary.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..architecture.architecture import Architecture
from ..architecture.mapping import Mapping
from ..architecture.processing_element import bus as make_bus
from ..architecture.processing_element import programmable
from ..graph.communication import (
    BUS_POLICIES,
    expand_communications,
    message_id,
)
from ..graph.communication import ExpandedGraph
from ..graph.cpg import ConditionalProcessGraph
from ..graph.paths import AlternativePath
from ..io.serialization import system_from_dict, system_to_dict
from ..scheduling.priorities import PATH_LOCAL_PRIORITY_FUNCTIONS
from .candidate import DEFAULT_PRIORITY_FUNCTION, Candidate


@dataclass(frozen=True)
class ArchitectureBounds:
    """Declared limits of the architecture-sizing design space.

    Passing bounds to an :class:`ExplorationProblem` turns architecture sizing
    on: candidates then carry an explicit *platform* (which programmable
    processors and buses exist) and the sampler may add or remove elements
    within these limits.  Hardware processors (ASICs) are never sizable.

    Parameters
    ----------
    max_processors / min_processors:
        Inclusive bounds on the number of programmable processors.
        ``max_processors=None`` resolves to "two more than the seed
        architecture provides".
    max_buses / min_buses:
        Inclusive bounds on the number of buses.  ``max_buses=None`` resolves
        to "one more than the seed architecture provides".  Keep
        ``min_buses >= 1`` whenever processes communicate across processors —
        removing the last bus makes every such design point infeasible.
    processor_speed / bus_speed:
        Relative speed of the elements the search *adds* (seed elements keep
        their own speeds).
    """

    max_processors: Optional[int] = None
    min_processors: int = 1
    max_buses: Optional[int] = None
    min_buses: int = 1
    processor_speed: float = 1.0
    bus_speed: float = 1.0

    def resolved_for(self, architecture: Architecture) -> "ArchitectureBounds":
        """Fill the ``None`` maxima from the seed architecture's element counts."""
        max_processors = self.max_processors
        if max_processors is None:
            max_processors = len(architecture.programmable_processors) + 2
        max_buses = self.max_buses
        if max_buses is None:
            max_buses = len(architecture.buses) + 1
        bounds = replace(self, max_processors=max_processors, max_buses=max_buses)
        bounds.validate()
        return bounds

    def validate(self) -> None:
        """Reject bounds no platform could satisfy."""
        if self.min_processors < 1:
            raise ValueError("min_processors must be at least 1")
        if self.min_buses < 0:
            raise ValueError("min_buses must be non-negative")
        if self.max_processors is not None and self.max_processors < self.min_processors:
            raise ValueError("max_processors must be >= min_processors")
        if self.max_buses is not None and self.max_buses < self.min_buses:
            raise ValueError("max_buses must be >= min_buses")
        if self.processor_speed <= 0 or self.bus_speed <= 0:
            raise ValueError("element speeds must be positive")


def _spare_names(prefix: str, taken: set, count: int) -> Tuple[str, ...]:
    """Deterministic pool of fresh element names avoiding ``taken``."""
    names: List[str] = []
    index = 1
    while len(names) < count:
        name = f"{prefix}{index}"
        index += 1
        if name in taken:
            continue
        names.append(name)
    return tuple(names)


class ExplorationProblem:
    """A mapping/priority design space over one system.

    Parameters
    ----------
    graph:
        The process-level conditional process graph (no communication
        processes; edges carry their communication times).
    mapping:
        The seed mapping of every ordinary process (e.g. produced upstream by
        partitioning, or by the random generator).
    architecture:
        Defaults to ``mapping.architecture``.
    bounds:
        Optional :class:`ArchitectureBounds`.  When given, architecture sizing
        is enabled: candidates carry an explicit platform and the search may
        add or remove programmable processors and buses within the bounds.
    map_communications:
        When True, communication-to-bus mapping becomes an explored dimension:
        the neighbourhood gains ``remap_comm`` / ``swap_bus`` moves and
        candidates may pin individual messages to buses.  Off by default so
        fixed problems keep their exact pre-mapping neighbourhood (and
        per-seed trajectories).
    bus_policy:
        Derivation policy for messages without an explicit pin (see
        :func:`repro.graph.expand_communications`): ``"least_index"``
        (default) or ``"least_loaded"``.
    """

    def __init__(
        self,
        graph: ConditionalProcessGraph,
        mapping: Mapping,
        architecture: Optional[Architecture] = None,
        name: Optional[str] = None,
        bounds: Optional[ArchitectureBounds] = None,
        map_communications: bool = False,
        bus_policy: str = "least_index",
    ) -> None:
        if bus_policy not in BUS_POLICIES:
            raise ValueError(
                f"unknown bus policy {bus_policy!r}; choose from {BUS_POLICIES}"
            )
        self._graph = graph
        self._architecture = architecture or mapping.architecture
        self._base_mapping = mapping
        self.name = name or graph.name
        self._map_communications = bool(map_communications)
        self._bus_policy = bus_policy
        self._movable: Tuple[str, ...] = tuple(
            process.name for process in graph.ordinary_processes
        )
        movable_set = set(self._movable)
        # The message universe: every process-level edge both of whose
        # endpoints the explorer maps.  Whether a message is *active* (its
        # endpoints sit on different processors, so a communication process
        # exists) depends on the candidate, but the id set is stable.
        self._messages: Tuple[Tuple[str, str, str], ...] = tuple(
            (message_id(edge.src, edge.dst), edge.src, edge.dst)
            for edge in graph.edges
            if edge.src in movable_set and edge.dst in movable_set
        )
        self._message_endpoints: Dict[str, Tuple[str, str]] = {
            message: (src, dst) for message, src, dst in self._messages
        }
        self._processors: Tuple[str, ...] = tuple(
            pe.name for pe in self._architecture.processors
        )
        self._bounds: Optional[ArchitectureBounds] = None
        self._spare_processors: Tuple[str, ...] = ()
        self._spare_buses: Tuple[str, ...] = ()
        self._architecture_cache: Dict[Tuple[Tuple[str, str], ...], Architecture] = {}
        self._content_key: Optional[str] = None
        self._stage_scope_key: Optional[str] = None
        if bounds is not None:
            self._bounds = bounds.resolved_for(self._architecture)
            taken = {pe.name for pe in self._architecture.processing_elements}
            headroom = self._bounds.max_processors - len(
                self._architecture.programmable_processors
            )
            self._spare_processors = _spare_names("xpe", taken, max(0, headroom))
            taken |= set(self._spare_processors)
            headroom = self._bounds.max_buses - len(self._architecture.buses)
            self._spare_buses = _spare_names("xbus", taken, max(0, headroom))

    # -- construction shortcuts ---------------------------------------------

    @classmethod
    def from_system(
        cls,
        system: Any,
        name: Optional[str] = None,
        bounds: Optional[ArchitectureBounds] = None,
        map_communications: bool = False,
        bus_policy: str = "least_index",
    ) -> "ExplorationProblem":
        """Build a problem from a generated or deserialised system.

        Accepts a :class:`repro.generator.GeneratedSystem` (uses its
        process-level graph) or a :class:`repro.io.SystemDescription`.
        """
        graph = (
            system.process_graph
            if hasattr(system, "process_graph")  # GeneratedSystem
            else system.graph
        )
        return cls(
            graph,
            system.mapping,
            system.architecture,
            name=name,
            bounds=bounds,
            map_communications=map_communications,
            bus_policy=bus_policy,
        )

    # -- accessors -----------------------------------------------------------

    @property
    def graph(self) -> ConditionalProcessGraph:
        return self._graph

    @property
    def architecture(self) -> Architecture:
        return self._architecture

    @property
    def base_mapping(self) -> Mapping:
        return self._base_mapping

    @property
    def movable_processes(self) -> Tuple[str, ...]:
        """Names of the processes whose mapping the explorer may change."""
        return self._movable

    @property
    def processor_names(self) -> Tuple[str, ...]:
        """Names of the non-bus processing elements of the *base* architecture."""
        return self._processors

    @property
    def bounds(self) -> Optional[ArchitectureBounds]:
        """The resolved sizing bounds, or None when sizing is disabled."""
        return self._bounds

    @property
    def map_communications(self) -> bool:
        """Whether communication-to-bus mapping is an explored dimension."""
        return self._map_communications

    @property
    def bus_policy(self) -> str:
        """Derivation policy for messages without an explicit bus pin."""
        return self._bus_policy

    @property
    def messages(self) -> Tuple[Tuple[str, str, str], ...]:
        """The message universe: ``(message id, src, dst)`` per mapped edge."""
        return self._messages

    @property
    def spare_processor_names(self) -> Tuple[str, ...]:
        """Deterministic name pool for processors the search may add."""
        return self._spare_processors

    @property
    def spare_bus_names(self) -> Tuple[str, ...]:
        """Deterministic name pool for buses the search may add."""
        return self._spare_buses

    def initial_candidate(
        self, priority_function: str = DEFAULT_PRIORITY_FUNCTION
    ) -> Candidate:
        """The search's starting point: the seed mapping, unperturbed priorities.

        With sizing enabled the candidate's platform lists the seed
        architecture's programmable processors and buses explicitly.
        """
        platform: Tuple[Tuple[str, str], ...] = ()
        if self._bounds is not None:
            platform = tuple(sorted(
                [(pe.name, "programmable")
                 for pe in self._architecture.programmable_processors]
                + [(pe.name, "bus") for pe in self._architecture.buses]
            ))
        return Candidate.from_mapping(
            self._base_mapping, self._movable, priority_function, platform=platform
        )

    def architecture_for(self, candidate: Candidate) -> Architecture:
        """The architecture a candidate's platform describes (base when empty).

        Sized architectures are cached by platform tuple: many candidates
        share the same platform, and :class:`~repro.architecture.Architecture`
        construction validates topology each time.
        """
        if not candidate.platform:
            return self._architecture
        cached = self._architecture_cache.get(candidate.platform)
        if cached is not None:
            return cached
        base = self._architecture
        speeds = self._bounds or ArchitectureBounds().resolved_for(base)
        processors = list(base.hardware_processors)
        for name in candidate.platform_processors:
            existing = base.get(name)
            processors.append(
                existing
                if existing is not None
                else programmable(name, speed=speeds.processor_speed)
            )
        active_names = {pe.name for pe in processors}
        all_base = {pe.name for pe in base.processors}
        buses = []
        connectivity: Dict[str, Iterable[str]] = {}
        for name in candidate.platform_buses:
            existing = base.get(name)
            if existing is None:
                buses.append(make_bus(name, speed=speeds.bus_speed))
                continue
            buses.append(existing)
            connected = {pe.name for pe in base.processors_on_bus(name)}
            if connected != all_base:
                # A restricted bus stays restricted (intersected with the
                # active set); fully-connected buses keep connecting
                # everything, including processors the search added.
                connectivity[name] = sorted(connected & active_names)
        architecture = Architecture(
            processors,
            buses,
            condition_broadcast_time=base.condition_broadcast_time,
            connectivity=connectivity or None,
        )
        self._architecture_cache[candidate.platform] = architecture
        return architecture

    def processors_for(self, candidate: Candidate) -> Tuple[str, ...]:
        """Names of the processors a candidate's processes may be mapped to."""
        if not candidate.platform:
            return self._processors
        active = set(candidate.platform_processors)
        ordered = [
            pe.name
            for pe in self._architecture.processors
            if pe.is_hardware or pe.name in active
        ]
        ordered.extend(
            name for name in self._spare_processors if name in active
        )
        return tuple(ordered)

    def mapping_for(self, candidate: Candidate) -> Mapping:
        """Materialise a candidate's assignment as a validated Mapping."""
        mapping = candidate.to_mapping(self.architecture_for(candidate))
        mapping.validate_for(self._movable)
        return mapping

    # -- communication mapping ------------------------------------------------

    def active_messages(
        self, candidate: Candidate
    ) -> Tuple[Tuple[str, str, str], ...]:
        """The messages that cross processors under a candidate's assignment."""
        assignment = candidate.assignment_dict
        return tuple(
            (message, src, dst)
            for message, src, dst in self._messages
            if assignment.get(src) is not None
            and assignment.get(dst) is not None
            and assignment[src] != assignment[dst]
        )

    def connecting_buses(
        self, candidate: Candidate, src: str, dst: str
    ) -> Tuple[str, ...]:
        """Names of the buses connecting two processes' processors (sorted)."""
        architecture = self.architecture_for(candidate)
        assignment = candidate.assignment_dict
        return tuple(
            pe.name
            for pe in architecture.buses_between(
                architecture[assignment[src]], architecture[assignment[dst]]
            )
        )

    def bus_assignment_for(
        self, candidate: Candidate
    ) -> Optional[Dict[str, str]]:
        """A candidate's explicit bus pins, filtered to the currently valid ones.

        Pins for dormant messages (endpoints co-located), for unknown message
        ids, or whose bus does not exist on — or does not connect the
        endpoints in — the candidate's (possibly sized) architecture are
        dropped: those messages fall back to the derivation policy instead of
        making the whole candidate infeasible.  The graph layer still
        validates strictly; this filter is what lets remapping moves and bus
        removal coexist with accumulated pins.
        """
        if not candidate.communication_assignment:
            return None
        architecture = self.architecture_for(candidate)
        assignment = candidate.assignment_dict
        valid: Dict[str, str] = {}
        for message, bus_name in candidate.communication_assignment:
            endpoints = self._message_endpoints.get(message)
            if endpoints is None:
                continue
            src, dst = endpoints
            src_pe = assignment.get(src)
            dst_pe = assignment.get(dst)
            if src_pe is None or dst_pe is None or src_pe == dst_pe:
                continue
            if architecture.get(bus_name) is None:
                continue
            connecting = {
                pe.name
                for pe in architecture.buses_between(
                    architecture[src_pe], architecture[dst_pe]
                )
            }
            if bus_name in connecting:
                valid[message] = bus_name
        return valid or None

    def communications_for(self, candidate: Candidate) -> Dict[str, str]:
        """The realised communication mapping of a candidate: message -> bus.

        Runs communication expansion exactly the way the evaluator does
        (explicit pins first, derivation policy for the rest), so the result
        is what the schedule was actually generated against.  Raises
        :class:`~repro.architecture.MappingError` for infeasible candidates.
        """
        expanded = expand_communications(
            self._graph,
            self.mapping_for(candidate),
            self.architecture_for(candidate),
            bus_assignment=self.bus_assignment_for(candidate),
            bus_policy=self._bus_policy,
        )
        return expanded.bus_assignment

    # -- sub-fingerprints (incremental evaluation) ---------------------------

    def expansion_key(
        self,
        candidate: Candidate,
        pins: Optional[Dict[str, str]] = None,
    ) -> Tuple:
        """Everything communication expansion can observe, as a hashable key.

        Expansion (and the path enumeration over its result) is a pure
        function of the process-to-PE assignment (which edges cross
        processors), the platform (which buses exist and how they connect)
        and the *effective* bus pins; the graph, the derivation policy and
        the base architecture are fixed per problem.  Pins are filtered
        through :meth:`bus_assignment_for` first, so dormant or stale pins —
        which expansion would ignore anyway — do not fragment the cache.
        Callers that already hold the filtered pins may pass them to skip
        the (per-candidate) refiltering; the empty dict means "no pins".
        """
        if pins is None:
            pins = self.bus_assignment_for(candidate) or {}
        return (
            candidate.assignment,
            candidate.platform,
            tuple(sorted(pins.items())) if pins else (),
        )

    def path_slices(
        self, path: AlternativePath, expanded: ExpandedGraph
    ) -> Tuple[frozenset, Tuple]:
        """The candidate-independent half of one path's sub-fingerprint.

        ``(active process set, realised communication buses)`` depends only on
        the path and the expansion, not on the candidate, so batch evaluation
        (:func:`~repro.exploration.cost.evaluate_neighbourhood`) computes it
        once per (expansion, path) pair and reuses it for every candidate in
        the batch instead of re-slicing per candidate.
        """
        mapping = expanded.mapping
        communications = expanded.communications
        buses = tuple(sorted(
            (name, mapping[name].name)
            for name in path.active_processes
            if name in communications
        ))
        return frozenset(path.active_processes), buses

    def path_schedule_key(
        self,
        candidate: Candidate,
        path: AlternativePath,
        expanded: ExpandedGraph,
        expansion_key: Optional[Tuple] = None,
        slices: Optional[Tuple[frozenset, Tuple]] = None,
    ) -> Tuple:
        """The sub-fingerprint of one alternative path's optimal schedule.

        Covers **everything** that can change the path's (lock-free) list
        schedule, and nothing more, so a move that leaves this slice of the
        design point untouched hits the cache however much it changed
        elsewhere:

        * the path identity (its label selects structure and guards);
        * the placement of the path's ordinary processes
          (:meth:`Candidate.assignment_slice` — durations and co-location,
          hence which of the path's edges carry communication processes);
        * the *realised* bus of each communication process on the path (from
          the expanded mapping, so derivation-policy picks are covered, not
          only explicit pins);
        * the priority function and the path-restricted bias slice;
        * the platform (broadcast buses, processor count and element speeds).

        Priority functions outside
        :data:`~repro.scheduling.PATH_LOCAL_PRIORITY_FUNCTIONS` (e.g.
        ``static_order``, which ranks by whole-graph topological position)
        additionally key on the full expansion, conservatively; callers
        computing keys for several paths of one candidate may pass the
        candidate's ``expansion_key`` once instead of having every path
        recompute it, and ``slices`` (from :meth:`path_slices`) once per
        (expansion, path) pair instead of re-slicing per candidate.
        """
        if slices is None:
            slices = self.path_slices(path, expanded)
        active, buses = slices
        key: Tuple = (
            path.label,
            candidate.assignment_slice(active),
            buses,
            candidate.priority_function,
            candidate.bias_slice(active),
            candidate.platform,
        )
        if candidate.priority_function not in PATH_LOCAL_PRIORITY_FUNCTIONS:
            if expansion_key is None:
                expansion_key = self.expansion_key(candidate)
            key = key + (expansion_key,)
        return key

    # -- worker transport ----------------------------------------------------

    @property
    def content_key(self) -> str:
        """Stable content hash of the whole problem (payload-derived).

        Two problems share a key exactly when their payloads — graph,
        architecture, seed mapping, sizing bounds, communication-mapping
        settings — are identical.  Checkpoints record it so a resume into a
        different problem is rejected instead of silently diverging.
        """
        if self._content_key is None:
            document = json.dumps(self.to_payload(), sort_keys=True)
            self._content_key = hashlib.sha256(document.encode()).hexdigest()[:16]
        return self._content_key

    @property
    def stage_scope_key(self) -> str:
        """Content hash of everything the stage sub-fingerprints assume fixed.

        Two problems with equal keys may safely share one
        :class:`~repro.exploration.cost.StageCache`: the stage keys
        (:meth:`expansion_key`, :meth:`path_schedule_key`) cover the
        candidate-dependent state — assignment, platform, pins, priorities —
        but deliberately exclude the problem identity, so the *problem-level*
        state they rely on (graph content, architecture, bus policy, sizing
        bounds) must match between sharers.  The key hashes the payload with
        the two stage-irrelevant fields stripped: the system ``name`` and the
        per-process seed mapping (``mapped_to``) — near-duplicate tenants
        differing only in label or starting point land in the same scope,
        which is the multi-tenant cache win ``repro-cpg serve`` exploits.
        """
        if self._stage_scope_key is None:
            payload = self.to_payload()
            payload.pop("name", None)
            for entry in payload.get("processes", ()):
                entry.pop("mapped_to", None)
            document = json.dumps(payload, sort_keys=True)
            self._stage_scope_key = hashlib.sha256(
                document.encode()
            ).hexdigest()[:16]
        return self._stage_scope_key

    def to_payload(self) -> Dict[str, Any]:
        """Serialise to the JSON system-description document (picklable)."""
        payload = system_to_dict(
            self._graph, self._architecture, self._base_mapping, name=self.name
        )
        if self._bounds is not None:
            payload["sizing_bounds"] = asdict(self._bounds)
        if self._map_communications or self._bus_policy != "least_index":
            payload["communication_mapping"] = {
                "enabled": self._map_communications,
                "bus_policy": self._bus_policy,
            }
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ExplorationProblem":
        """Rebuild a problem from :meth:`to_payload` output (in a worker)."""
        system = system_from_dict(payload)
        bounds = None
        if "sizing_bounds" in payload:
            bounds = ArchitectureBounds(**payload["sizing_bounds"])
        communication = payload.get("communication_mapping", {})
        return cls(
            system.graph,
            system.mapping,
            system.architecture,
            name=system.name,
            bounds=bounds,
            map_communications=bool(communication.get("enabled", False)),
            bus_policy=communication.get("bus_policy", "least_index"),
        )

    def __repr__(self) -> str:
        return (
            f"ExplorationProblem(name={self.name!r}, "
            f"processes={len(self._movable)}, processors={len(self._processors)})"
        )
