"""Design points of the mapping/priority/platform search space.

A :class:`Candidate` is one point the explorer can evaluate: an assignment of
every ordinary process to a processor, the priority configuration the
per-path list scheduler should use (one of the registered priority functions,
optionally perturbed per process), an optional explicit *communication
assignment* pinning individual messages to buses (message id -> bus; unpinned
messages keep the problem's derivation policy) and — when architecture sizing
is enabled — the *platform*: which programmable processors and buses are
instantiated.  Candidates are immutable value objects — neighbourhood moves
derive new candidates instead of mutating — and carry a stable content hash
(:attr:`Candidate.fingerprint`) that keys the evaluation cache: two candidates
describing the same design point always collide, so a revisited
mapping/platform never re-runs the schedule merger.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..architecture.mapping import Mapping as PEMapping

DEFAULT_PRIORITY_FUNCTION = "critical_path"


@dataclass(frozen=True)
class Candidate:
    """One explorable design point: process-to-PE assignment + priorities.

    Attributes
    ----------
    assignment:
        Sorted ``(process name, processing element name)`` pairs for every
        ordinary process.  Stored as a tuple so candidates are hashable and
        cheap to ship across the evaluation pool.
    priority_function:
        Name of the registered priority function the list scheduler uses
        (see :data:`repro.scheduling.PRIORITY_FUNCTIONS`).
    priority_bias:
        Sorted ``(process name, additive bias)`` pairs perturbing the computed
        priorities; processes not listed keep their computed priority.
    platform:
        Sorted ``(element name, kind)`` pairs naming the *sizable* processing
        elements this design point instantiates — programmable processors and
        buses; hardware processors are never sizable and stay implicit.  The
        empty tuple (the default) means architecture sizing is disabled and
        the problem's base architecture is used unchanged.
    communication_assignment:
        Sorted ``(message id, bus name)`` pairs pinning individual messages
        (see :func:`repro.graph.message_id`) to buses.  Messages without an
        entry keep the problem's derivation policy; entries for messages whose
        endpoints are currently co-located stay dormant, so the pin survives
        remapping of the endpoint processes.  The empty tuple (the default)
        derives every bus, reproducing the pre-mapping behaviour exactly.
    """

    assignment: Tuple[Tuple[str, str], ...]
    priority_function: str = DEFAULT_PRIORITY_FUNCTION
    priority_bias: Tuple[Tuple[str, float], ...] = field(default=())
    platform: Tuple[Tuple[str, str], ...] = field(default=())
    communication_assignment: Tuple[Tuple[str, str], ...] = field(default=())

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_mapping(
        cls,
        mapping: PEMapping,
        processes: Optional[Iterable[str]] = None,
        priority_function: str = DEFAULT_PRIORITY_FUNCTION,
        platform: Tuple[Tuple[str, str], ...] = (),
    ) -> "Candidate":
        """Build a candidate from an existing mapping.

        ``processes`` restricts the candidate to the given process names
        (typically the ordinary processes, excluding communications whose bus
        assignment is derived during expansion); by default every mapped
        process is included.  ``platform`` seeds the sizable-element set when
        architecture sizing is enabled.
        """
        names = tuple(processes) if processes is not None else tuple(mapping)
        pairs = tuple(sorted((name, mapping[name].name) for name in names))
        return cls(
            assignment=pairs,
            priority_function=priority_function,
            platform=tuple(sorted(platform)),
        )

    # -- views ---------------------------------------------------------------

    @cached_property
    def assignment_dict(self) -> Dict[str, str]:
        """The assignment as a process name -> PE name dict."""
        return dict(self.assignment)

    @cached_property
    def bias_dict(self) -> Dict[str, float]:
        """The priority perturbation as a process name -> bias dict."""
        return dict(self.priority_bias)

    @cached_property
    def communication_dict(self) -> Dict[str, str]:
        """The explicit communication mapping as a message id -> bus name dict."""
        return dict(self.communication_assignment)

    @cached_property
    def platform_processors(self) -> Tuple[str, ...]:
        """Names of the programmable processors this platform instantiates."""
        return tuple(name for name, kind in self.platform if kind != "bus")

    @cached_property
    def platform_buses(self) -> Tuple[str, ...]:
        """Names of the buses this platform instantiates."""
        return tuple(name for name, kind in self.platform if kind == "bus")

    @cached_property
    def fingerprint(self) -> str:
        """Stable content hash of this design point (evaluation-cache key)."""
        digest = hashlib.sha256()
        digest.update(self.priority_function.encode())
        for name, pe_name in self.assignment:
            digest.update(f"|{name}={pe_name}".encode())
        for name, bias in self.priority_bias:
            digest.update(f"|{name}+{bias!r}".encode())
        for name, kind in self.platform:
            digest.update(f"|@{name}:{kind}".encode())
        for message, bus_name in self.communication_assignment:
            digest.update(f"|~{message}:{bus_name}".encode())
        return digest.hexdigest()[:20]

    def pe_of(self, process_name: str) -> str:
        return self.assignment_dict[process_name]

    # -- sub-fingerprint slices (incremental evaluation) ---------------------

    def assignment_slice(
        self, names: Iterable[str]
    ) -> Tuple[Tuple[str, str], ...]:
        """The assignment restricted to ``names``, as sorted pairs.

        One component of a *sub-fingerprint*: the per-path schedule cache of
        the incremental evaluator keys each alternative path on only the
        state that path can observe, and the placement of the path's own
        processes is the largest part of it.  Names without an assignment
        entry (dummies, communication processes) are simply absent.
        """
        members = names if isinstance(names, (set, frozenset)) else set(names)
        return tuple(pair for pair in self.assignment if pair[0] in members)

    def bias_slice(self, names: Iterable[str]) -> Tuple[Tuple[str, float], ...]:
        """The priority bias restricted to ``names``, as sorted pairs.

        The companion of :meth:`assignment_slice` for the priority
        perturbation: a bias on a process outside the path cannot change the
        path's schedule, so it must not fragment the path's cache key.
        """
        members = names if isinstance(names, (set, frozenset)) else set(names)
        return tuple(pair for pair in self.priority_bias if pair[0] in members)

    # -- functional updates (neighbourhood moves build on these) -------------

    def reassigned(self, process_name: str, pe_name: str) -> "Candidate":
        """Return a copy with one process moved to another processing element."""
        updated = dict(self.assignment)
        if process_name not in updated:
            raise KeyError(f"process {process_name!r} is not part of the candidate")
        updated[process_name] = pe_name
        return replace(self, assignment=tuple(sorted(updated.items())))

    def swapped(self, first: str, second: str) -> "Candidate":
        """Return a copy with the processing elements of two processes exchanged."""
        updated = dict(self.assignment)
        updated[first], updated[second] = updated[second], updated[first]
        return replace(self, assignment=tuple(sorted(updated.items())))

    def with_priority_function(self, name: str) -> "Candidate":
        """Return a copy dispatched with a different priority function."""
        return replace(self, priority_function=name)

    def with_bias(self, process_name: str, delta: float) -> "Candidate":
        """Return a copy with ``delta`` added to one process' priority bias."""
        bias = dict(self.priority_bias)
        updated = bias.get(process_name, 0.0) + delta
        if updated == 0.0:
            bias.pop(process_name, None)
        else:
            bias[process_name] = updated
        return replace(self, priority_bias=tuple(sorted(bias.items())))

    def with_communication(self, message: str, bus_name: str) -> "Candidate":
        """Return a copy with one message pinned to the given bus."""
        updated = dict(self.communication_assignment)
        updated[message] = bus_name
        return replace(
            self, communication_assignment=tuple(sorted(updated.items()))
        )

    def without_communication(self, message: str) -> "Candidate":
        """Return a copy with one message's pin removed (derivation resumes)."""
        updated = dict(self.communication_assignment)
        if message not in updated:
            raise KeyError(f"message {message!r} carries no explicit bus pin")
        del updated[message]
        return replace(
            self, communication_assignment=tuple(sorted(updated.items()))
        )

    def with_element(self, name: str, kind: str) -> "Candidate":
        """Return a copy with one sizable element (processor or bus) added."""
        if any(existing == name for existing, _ in self.platform):
            raise ValueError(f"element {name!r} is already part of the platform")
        return replace(self, platform=tuple(sorted(self.platform + ((name, kind),))))

    def without_element(self, name: str) -> "Candidate":
        """Return a copy with one sizable element removed from the platform."""
        if not any(existing == name for existing, _ in self.platform):
            raise ValueError(f"element {name!r} is not part of the platform")
        return replace(
            self,
            platform=tuple(pair for pair in self.platform if pair[0] != name),
        )

    def to_mapping(self, architecture) -> PEMapping:
        """Materialise the assignment as a :class:`repro.Mapping`."""
        mapping = PEMapping(architecture)
        for name, pe_name in self.assignment:
            mapping.assign(name, pe_name)
        return mapping

    def describe_difference(self, other: "Candidate") -> str:
        """Short human-readable summary of what changed versus ``other``."""
        changes = [
            f"{name}->{pe}"
            for name, pe in self.assignment
            if other.assignment_dict.get(name) != pe
        ]
        if self.priority_function != other.priority_function:
            changes.append(f"priority={self.priority_function}")
        if self.priority_bias != other.priority_bias:
            changed_bias = set(self.priority_bias) ^ set(other.priority_bias)
            changes.append(f"bias({len(changed_bias)} terms)")
        if self.communication_assignment != other.communication_assignment:
            theirs = other.communication_dict
            for message, bus_name in self.communication_assignment:
                if theirs.get(message) != bus_name:
                    changes.append(f"{message}~{bus_name}")
            for message in theirs:
                if message not in self.communication_dict:
                    changes.append(f"{message}~derived")
        if self.platform != other.platform:
            mine, theirs = set(self.platform), set(other.platform)
            for name, _ in sorted(mine - theirs):
                changes.append(f"+{name}")
            for name, _ in sorted(theirs - mine):
                changes.append(f"-{name}")
        return ", ".join(changes) if changes else "unchanged"

    def __str__(self) -> str:
        return f"candidate[{self.fingerprint}]"
