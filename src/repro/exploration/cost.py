"""Cost model of the design-space explorer.

Scoring a candidate runs the full pipeline the repository already trusts —
communication expansion, per-path list scheduling with the candidate's
priority configuration, schedule merging — on the candidate's (possibly
sized) architecture, and condenses the result into a scalar cost plus the
objective vector the multi-objective machinery consumes:

* ``delta_max`` — the worst-case delay of the generated schedule table, the
  paper's primary quality metric;
* ``mean_path_delay`` — the table-execution delay averaged over the
  alternative paths (weights candidates that keep *every* scenario fast, not
  only the worst one);
* ``load_imbalance`` — how far the most loaded processor sits above the mean
  processor load (a dimensionless ratio; 0 is perfectly balanced);
* ``architecture_cost`` — what the candidate's platform costs in abstract
  units: ``processor_cost`` per programmable processor plus ``bus_cost`` per
  bus (hardware processors are fixed and excluded).  Constant unless
  architecture sizing is enabled.
* ``bus_imbalance`` — the same ratio over the *buses*: how far the most
  loaded bus sits above the mean bus communication load.  This is the
  contention objective of communication mapping — a design point that dumps
  every message on one bus of a multi-bus platform scores 1.0 (or worse),
  one that spreads them evenly scores 0.

Evaluations are plain frozen dataclasses of floats and strings so they travel
unchanged through the parallel evaluation pool and the content-hash cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..architecture.architecture import Architecture, ArchitectureError
from ..architecture.mapping import MappingError
from ..graph.communication import ExpandedGraph, expand_communications
from ..scheduling.list_scheduler import PathListScheduler, SchedulingError
from ..scheduling.merging import MergeConflictError, ScheduleMerger
from ..scheduling.priorities import priority_function
from .candidate import Candidate
from .problem import ExplorationProblem

_INFEASIBLE_COST = float("inf")


@dataclass(frozen=True)
class CostWeights:
    """Relative weights of the scalar-cost components (see module docstring).

    The default optimises ``delta_max`` alone, matching the paper's metric;
    ``load_imbalance`` is a ratio, so its weight is interpreted in the same
    time unit as the delays (weight 10 adds 10 time units per 100% imbalance).
    ``architecture_cost`` weights the platform cost into the scalar;
    ``processor_cost`` and ``bus_cost`` are the per-element units that make up
    that platform cost (they also feed the fourth objective-vector component,
    whatever the scalar weight is).  ``bus_imbalance`` weights bus contention
    — like ``load_imbalance`` it is a ratio, interpreted in the same time
    unit as the delays.
    """

    delta_max: float = 1.0
    mean_path_delay: float = 0.0
    load_imbalance: float = 0.0
    architecture_cost: float = 0.0
    processor_cost: float = 1.0
    bus_cost: float = 0.5
    bus_imbalance: float = 0.0


@dataclass(frozen=True)
class CandidateEvaluation:
    """The scored outcome of merging one candidate's schedule table."""

    fingerprint: str
    cost: float
    feasible: bool
    delta_max: float = 0.0
    delta_m: float = 0.0
    mean_path_delay: float = 0.0
    load_imbalance: float = 0.0
    architecture_cost: float = 0.0
    bus_imbalance: float = 0.0
    paths: int = 0
    error: str = ""

    @property
    def delay_increase_percent(self) -> float:
        """How far the table's worst case exceeds the ideal delay, in percent."""
        if self.delta_m <= 0:
            return 0.0
        return 100.0 * (self.delta_max - self.delta_m) / self.delta_m

    @property
    def objectives(self) -> Tuple[float, float, float, float, float]:
        """The minimised objective vector (see ``pareto.OBJECTIVE_NAMES``)."""
        return (
            self.delta_max,
            self.mean_path_delay,
            self.load_imbalance,
            self.architecture_cost,
            self.bus_imbalance,
        )


def load_imbalance_of(problem: ExplorationProblem, candidate: Candidate) -> float:
    """``max processor load / mean processor load - 1`` under a candidate.

    Loads sum the execution time of every ordinary process on its assigned
    processor (communications are excluded here: their bus placement is
    priced separately by :func:`bus_imbalance_of`).  With architecture
    sizing, the mean runs
    over the candidate's *active* processors, so emptier, smaller platforms
    are not penalised for processors they no longer instantiate.
    """
    loads: Dict[str, float] = {
        name: 0.0 for name in problem.processors_for(candidate)
    }
    graph = problem.graph
    architecture = problem.architecture_for(candidate)
    for name, pe_name in candidate.assignment:
        loads[pe_name] += graph[name].duration_on(architecture[pe_name])
    mean = sum(loads.values()) / len(loads) if loads else 0.0
    if mean <= 0:
        return 0.0
    return max(loads.values()) / mean - 1.0


def bus_imbalance_of(architecture: Architecture, expanded: ExpandedGraph) -> float:
    """``max bus load / mean bus load - 1`` over an expanded graph.

    Loads sum the duration of every communication process on its assigned bus
    (scaled by bus speed, like the scheduler sees it); the mean runs over
    *every* bus of the architecture, so leaving a bus idle on a multi-bus
    platform registers as contention.  Zero when the architecture has fewer
    than two buses or nothing communicates.
    """
    if len(architecture.buses) < 2:
        return 0.0
    loads: Dict[str, float] = {pe.name: 0.0 for pe in architecture.buses}
    for info in expanded.communications.values():
        loads[info.bus.name] += expanded.graph[info.name].duration_on(info.bus)
    mean = sum(loads.values()) / len(loads)
    if mean <= 0:
        return 0.0
    return max(loads.values()) / mean - 1.0


def architecture_cost_of(
    problem: ExplorationProblem,
    candidate: Candidate,
    weights: CostWeights = CostWeights(),
) -> float:
    """Platform cost of a candidate in abstract units.

    ``processor_cost`` per programmable processor plus ``bus_cost`` per bus of
    the candidate's (possibly sized) architecture.  Hardware processors are
    not sizable and carry no cost here.
    """
    architecture = problem.architecture_for(candidate)
    return (
        weights.processor_cost * len(architecture.programmable_processors)
        + weights.bus_cost * len(architecture.buses)
    )


def evaluate_candidate(
    problem: ExplorationProblem,
    candidate: Candidate,
    weights: CostWeights = CostWeights(),
) -> CandidateEvaluation:
    """Score one candidate by running the merge pipeline end to end.

    Infeasible candidates (unconnectable communications, unschedulable paths,
    unresolvable merge conflicts, malformed sized platforms) get infinite
    cost instead of raising, so a search can step over them.
    """
    dispatch_priorities = priority_function(candidate.priority_function)
    try:
        architecture = problem.architecture_for(candidate)
        mapping = problem.mapping_for(candidate)
        expanded = expand_communications(
            problem.graph,
            mapping,
            architecture,
            bus_assignment=problem.bus_assignment_for(candidate),
            bus_policy=problem.bus_policy,
        )
        scheduler = PathListScheduler(
            expanded.graph,
            expanded.mapping,
            architecture,
            priority_function=dispatch_priorities,
            priority_bias=candidate.bias_dict,
        )
        result = ScheduleMerger(
            expanded.graph, expanded.mapping, architecture, scheduler
        ).merge()
    except (ArchitectureError, MappingError, SchedulingError, MergeConflictError) as error:
        return CandidateEvaluation(
            fingerprint=candidate.fingerprint,
            cost=_INFEASIBLE_COST,
            feasible=False,
            error=str(error),
        )

    path_delays = [
        result.table.delay_of_path(expanded.graph, expanded.mapping, path)
        for path in result.paths
    ]
    mean_path_delay = sum(path_delays) / len(path_delays)
    imbalance = load_imbalance_of(problem, candidate)
    platform_cost = architecture_cost_of(problem, candidate, weights)
    contention = bus_imbalance_of(architecture, expanded)
    cost = (
        weights.delta_max * result.delta_max
        + weights.mean_path_delay * mean_path_delay
        + weights.load_imbalance * imbalance
        + weights.architecture_cost * platform_cost
        + weights.bus_imbalance * contention
    )
    return CandidateEvaluation(
        fingerprint=candidate.fingerprint,
        cost=cost,
        feasible=True,
        delta_max=result.delta_max,
        delta_m=result.delta_m,
        mean_path_delay=mean_path_delay,
        load_imbalance=imbalance,
        architecture_cost=platform_cost,
        bus_imbalance=contention,
        paths=len(result.paths),
    )
