"""Cost model of the design-space explorer.

Scoring a candidate runs the full pipeline the repository already trusts —
communication expansion, per-path list scheduling with the candidate's
priority configuration, schedule merging — and condenses the result into a
scalar cost plus its components:

* ``delta_max`` — the worst-case delay of the generated schedule table, the
  paper's primary quality metric;
* ``mean_path_delay`` — the table-execution delay averaged over the
  alternative paths (weights candidates that keep *every* scenario fast, not
  only the worst one);
* ``load_imbalance`` — how far the most loaded processor sits above the mean
  processor load (a dimensionless ratio; 0 is perfectly balanced).

Evaluations are plain frozen dataclasses of floats and strings so they travel
unchanged through the parallel evaluation pool and the content-hash cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..architecture.mapping import MappingError
from ..graph.communication import expand_communications
from ..scheduling.list_scheduler import PathListScheduler, SchedulingError
from ..scheduling.merging import MergeConflictError, ScheduleMerger
from ..scheduling.priorities import priority_function
from .candidate import Candidate
from .problem import ExplorationProblem

_INFEASIBLE_COST = float("inf")


@dataclass(frozen=True)
class CostWeights:
    """Relative weights of the cost components (see module docstring).

    The default optimises ``delta_max`` alone, matching the paper's metric;
    ``load_imbalance`` is a ratio, so its weight is interpreted in the same
    time unit as the delays (weight 10 adds 10 time units per 100% imbalance).
    """

    delta_max: float = 1.0
    mean_path_delay: float = 0.0
    load_imbalance: float = 0.0


@dataclass(frozen=True)
class CandidateEvaluation:
    """The scored outcome of merging one candidate's schedule table."""

    fingerprint: str
    cost: float
    feasible: bool
    delta_max: float = 0.0
    delta_m: float = 0.0
    mean_path_delay: float = 0.0
    load_imbalance: float = 0.0
    paths: int = 0
    error: str = ""

    @property
    def delay_increase_percent(self) -> float:
        if self.delta_m <= 0:
            return 0.0
        return 100.0 * (self.delta_max - self.delta_m) / self.delta_m


def load_imbalance_of(problem: ExplorationProblem, candidate: Candidate) -> float:
    """``max processor load / mean processor load - 1`` under a candidate.

    Loads sum the execution time of every ordinary process on its assigned
    processor (communications are excluded: their bus placement is derived
    during expansion, not explored).
    """
    loads: Dict[str, float] = {name: 0.0 for name in problem.processor_names}
    graph = problem.graph
    architecture = problem.architecture
    for name, pe_name in candidate.assignment:
        loads[pe_name] += graph[name].duration_on(architecture[pe_name])
    mean = sum(loads.values()) / len(loads) if loads else 0.0
    if mean <= 0:
        return 0.0
    return max(loads.values()) / mean - 1.0


def evaluate_candidate(
    problem: ExplorationProblem,
    candidate: Candidate,
    weights: CostWeights = CostWeights(),
) -> CandidateEvaluation:
    """Score one candidate by running the merge pipeline end to end.

    Infeasible candidates (unconnectable communications, unschedulable paths,
    unresolvable merge conflicts) get infinite cost instead of raising, so a
    search can step over them.
    """
    dispatch_priorities = priority_function(candidate.priority_function)
    try:
        mapping = problem.mapping_for(candidate)
        expanded = expand_communications(problem.graph, mapping, problem.architecture)
        scheduler = PathListScheduler(
            expanded.graph,
            expanded.mapping,
            problem.architecture,
            priority_function=dispatch_priorities,
            priority_bias=candidate.bias_dict,
        )
        result = ScheduleMerger(
            expanded.graph, expanded.mapping, problem.architecture, scheduler
        ).merge()
    except (MappingError, SchedulingError, MergeConflictError) as error:
        return CandidateEvaluation(
            fingerprint=candidate.fingerprint,
            cost=_INFEASIBLE_COST,
            feasible=False,
            error=str(error),
        )

    path_delays = [
        result.table.delay_of_path(expanded.graph, expanded.mapping, path)
        for path in result.paths
    ]
    mean_path_delay = sum(path_delays) / len(path_delays)
    imbalance = load_imbalance_of(problem, candidate)
    cost = (
        weights.delta_max * result.delta_max
        + weights.mean_path_delay * mean_path_delay
        + weights.load_imbalance * imbalance
    )
    return CandidateEvaluation(
        fingerprint=candidate.fingerprint,
        cost=cost,
        feasible=True,
        delta_max=result.delta_max,
        delta_m=result.delta_m,
        mean_path_delay=mean_path_delay,
        load_imbalance=imbalance,
        paths=len(result.paths),
    )
