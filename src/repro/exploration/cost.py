"""Cost model of the design-space explorer.

Scoring a candidate runs the full pipeline the repository already trusts —
communication expansion, per-path list scheduling with the candidate's
priority configuration, schedule merging — on the candidate's (possibly
sized) architecture, and condenses the result into a scalar cost plus the
objective vector the multi-objective machinery consumes:

* ``delta_max`` — the worst-case delay of the generated schedule table, the
  paper's primary quality metric;
* ``mean_path_delay`` — the table-execution delay averaged over the
  alternative paths (weights candidates that keep *every* scenario fast, not
  only the worst one);
* ``load_imbalance`` — how far the most loaded processor sits above the mean
  processor load (a dimensionless ratio; 0 is perfectly balanced);
* ``architecture_cost`` — what the candidate's platform costs in abstract
  units: ``processor_cost`` per programmable processor plus ``bus_cost`` per
  bus (hardware processors are fixed and excluded).  Constant unless
  architecture sizing is enabled.
* ``bus_imbalance`` — the same ratio over the *buses*: how far the most
  loaded bus sits above the mean bus communication load.  This is the
  contention objective of communication mapping — a design point that dumps
  every message on one bus of a multi-bus platform scores 1.0 (or worse),
  one that spreads them evenly scores 0.

Evaluations are plain frozen dataclasses of floats and strings so they travel
unchanged through the parallel evaluation pool and the content-hash cache.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from itertools import islice
from typing import Dict, Optional, Tuple

from ..architecture.architecture import Architecture, ArchitectureError
from ..architecture.mapping import MappingError
from ..graph.communication import (
    ExpandedGraph,
    ExpansionStructure,
    assign_buses,
    crossing_edges,
    expand_communications,
    expansion_structure,
)
from ..graph.paths import AlternativePath, PathEnumerator
from ..scheduling.list_scheduler import PathListScheduler, SchedulingError
from ..scheduling.merging import MergeConflictError, MergeResult, ScheduleMerger
from ..scheduling.priorities import (
    PATH_LOCAL_PRIORITY_FUNCTIONS,
    priority_function,
)
from ..scheduling.schedule import PathSchedule
from .candidate import Candidate
from .problem import ExplorationProblem

_INFEASIBLE_COST = float("inf")

#: Deterministic per-entry size estimates for the bounded-LRU budget.
#: ``sys.getsizeof`` and wall clocks are banned here — eviction decisions
#: feed frozen benchmark anchors, so an entry's cost must be the same on
#: every host and every run.  The estimates are structural proxies for the
#: python-object footprint of the memoized value.
_ENTRY_OVERHEAD_BYTES = 64
_SCHEDULE_TASK_BYTES = 160
_EXPANSION_NODE_BYTES = 96
_PATH_BYTES = 32
#: How many least-recently-used entries compete per eviction: the victim is
#: the *cheapest to recompute* among this window, so one cold-but-expensive
#: merge artefact survives a burst of cheap re-adjustment schedules.
_EVICTION_WINDOW = 8


def schedule_entry_cost(schedule: PathSchedule) -> int:
    """Deterministic size estimate (bytes) of one memoized path schedule.

    Proportional to the number of scheduled tasks and condition broadcasts —
    the objects a :class:`~repro.scheduling.schedule.PathSchedule` actually
    holds — so the estimate doubles when the schedule does.
    """
    return _ENTRY_OVERHEAD_BYTES + _SCHEDULE_TASK_BYTES * (
        len(schedule.tasks) + len(schedule.broadcasts)
    )


def expansion_entry_cost(expanded, paths) -> int:
    """Deterministic size estimate (bytes) of one memoized expansion stage.

    Counts the expanded graph's processes (communication processes included)
    plus the enumerated alternative paths stored alongside it.
    """
    return (
        _ENTRY_OVERHEAD_BYTES
        + _EXPANSION_NODE_BYTES * len(expanded.graph)
        + _PATH_BYTES * len(paths)
    )


@contextmanager
def _timed_stage(tracer, metrics, name: str, **attrs):
    """Time one pipeline stage into a tracer span and/or a metrics histogram.

    Only entered on the instrumented path — callers keep the plain,
    allocation-free call when both ``tracer`` and ``metrics`` are None, so
    the disabled-path overhead the BENCH_core records gate stays ~zero.
    """
    span = tracer.span(f"stage.{name}", **attrs) if tracer is not None else None
    started = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - started
        if span is not None:
            span.close()
        if metrics is not None:
            metrics.observe(f"stage.{name}.seconds", elapsed)


@dataclass(frozen=True)
class StageStats:
    """Hit/miss counters of one :class:`StageCache` (misses = actual work).

    ``expansion_*`` counts communication-expansion + path-enumeration stage
    probes (one per evaluation); ``schedule_*`` counts per-path schedule
    probes (one per alternative path per evaluation).  Sizes are the number
    of memoized entries.
    """

    expansion_hits: int
    expansion_misses: int
    schedule_hits: int
    schedule_misses: int
    expansions: int
    schedules: int
    #: Structure-layer counters: on an expansion miss, the mapping-independent
    #: graph structure + path enumeration may still be reused from a candidate
    #: with the same co-location pattern (only the bus layer is rebuilt).
    structure_hits: int = 0
    structure_misses: int = 0
    structures: int = 0
    #: Entries evicted by :meth:`StageCache.check_integrity` because their
    #: memoized value no longer matched its sub-fingerprint key.
    integrity_evictions: int = 0
    #: Entries evicted by the bounded-LRU budget (cheapest-to-recompute
    #: first within the recency window; see the :class:`StageCache`
    #: docstring).  Zero on unbounded caches.
    lru_evictions: int = 0
    #: Estimated bytes currently held by the LRU-managed memos (expansion +
    #: per-path schedule entries), per the deterministic
    #: :func:`schedule_entry_cost` / :func:`expansion_entry_cost` estimates.
    occupancy_bytes: int = 0
    #: The configured budgets; 0 means unbounded on that axis.
    max_entries: int = 0
    max_bytes: int = 0

    @property
    def expansion_hit_rate(self) -> float:
        """Fraction of expansion-stage probes answered from the cache."""
        total = self.expansion_hits + self.expansion_misses
        return self.expansion_hits / total if total else 0.0

    @property
    def schedule_hit_rate(self) -> float:
        """Fraction of per-path schedule probes answered from the cache."""
        total = self.schedule_hits + self.schedule_misses
        return self.schedule_hits / total if total else 0.0


class StageCache:
    """Memo of the evaluation pipeline's *stages*, keyed by sub-fingerprints.

    The whole-candidate cache (:class:`~repro.exploration.CachedEvaluator`)
    only helps when a design point is revisited exactly.  Most neighbourhood
    moves are *local* — one process remapped, one message repinned — so on a
    whole-candidate miss nearly all of the per-path schedules are still
    bit-identical to ones already computed.  A ``StageCache`` memoizes the
    two expensive stages independently:

    * **expansion** — communication expansion + path enumeration, keyed by
      :meth:`ExplorationProblem.expansion_key` (assignment, platform,
      effective bus pins);
    * **per-path schedules** — one optimal (lock-free) list schedule per
      alternative path, keyed by
      :meth:`ExplorationProblem.path_schedule_key`, i.e. by only the state
      that path can observe.

    Invariants: evaluation must stay **pure** (the cached stages are reused
    verbatim), a cache must serve a **single problem** (keys do not include
    problem identity), and every sub-fingerprint must be **complete** — it
    must cover everything that can change the stage's output (see
    PERFORMANCE.md, "Incremental evaluation").  Sharing one instance across
    threads is safe for correctness: stages are pure, so a store race at
    worst recomputes a stage, and key interning — the one check-then-act
    that could alias two fingerprints to one id — takes a lock.  The
    counters may undercount under contention.

    By default stage memos grow for the lifetime of the cache (per-path
    schedules are the bulky part — one ``PathSchedule`` per distinct
    sub-fingerprint + lock set); call :meth:`clear` between independent long
    searches if memory matters more than cross-search hits.

    **Bounded mode** (``max_entries`` and/or ``max_bytes``) caps the
    LRU-managed memos — expansions and per-path schedules — for long-running
    deployments such as ``repro-cpg serve``, where one shared cache answers
    an unbounded request stream.  Entry sizes are the deterministic
    structural estimates of :func:`schedule_entry_cost` /
    :func:`expansion_entry_cost` (never ``sys.getsizeof`` or wall clocks, so
    eviction decisions replay identically on every host).  When a budget is
    exceeded, the victim is the **cheapest-to-recompute** entry among the
    ``_EVICTION_WINDOW`` least-recently-used ones (ties fall to the least
    recent), so recency decides *who competes* and stage cost decides *who
    goes* — an old-but-expensive artefact outlives a burst of cheap ones.
    An entry larger than ``max_bytes`` on its own is computed but never
    memoized, so occupancy never exceeds the byte budget.  Eviction is
    self-healing by construction: stages are pure, so a re-query after
    eviction recomputes a bit-identical value (the same property
    :meth:`check_integrity` relies on).  The unbounded default skips all
    LRU bookkeeping — the hot paths are unchanged.
    """

    __slots__ = (
        "_expansions",
        "_structures",
        "_schedules",
        "_key_ids",
        "_next_key_id",
        "_intern_lock",
        "_contexts",
        "_bounded",
        "_max_entries",
        "_max_bytes",
        "_lru",
        "_occupancy_bytes",
        "expansion_hits",
        "expansion_misses",
        "structure_hits",
        "structure_misses",
        "schedule_hits",
        "schedule_misses",
        "integrity_evictions",
        "lru_evictions",
    )

    def __init__(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self._expansions: Dict[
            Tuple, Tuple[ExpandedGraph, Tuple[AlternativePath, ...]]
        ] = {}
        # Mapping-independent expansion structures (graph + enumerated
        # paths), keyed by the crossing-edge pattern: candidates that only
        # shuffle processes between processors without co-locating (or
        # splitting) any connected pair share one structure — and everything
        # lazily cached on its graph object (guards, topological order).
        self._structures: Dict[
            Tuple, Tuple[ExpansionStructure, Tuple[AlternativePath, ...]]
        ] = {}
        self._schedules: Dict[Tuple, PathSchedule] = {}
        # Sub-fingerprints are bulky nested tuples; they are hashed once here
        # and replaced by a small integer id, so the (frequent) schedule-memo
        # probes hash two small values instead of the whole fingerprint.
        self._key_ids: Dict[Tuple, int] = {}
        self._next_key_id = 0
        self._intern_lock = threading.Lock()
        # Per-path dependency structures (PathListScheduler contexts), keyed
        # by interned path key and re-adopted across scheduler instances.
        self._contexts: Dict[int, object] = {}
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self._max_entries = max_entries or 0
        self._max_bytes = max_bytes or 0
        self._bounded = bool(self._max_entries or self._max_bytes)
        # Recency order of the LRU-managed entries: (kind, key) -> byte cost,
        # least recently used first.  Mutated only under _intern_lock.
        self._lru: "OrderedDict[Tuple[str, Tuple], int]" = OrderedDict()
        self._occupancy_bytes = 0
        self.expansion_hits = 0
        self.expansion_misses = 0
        self.structure_hits = 0
        self.structure_misses = 0
        self.schedule_hits = 0
        self.schedule_misses = 0
        self.integrity_evictions = 0
        self.lru_evictions = 0

    @property
    def stats(self) -> StageStats:
        """A snapshot of the stage-level hit/miss counters."""
        return StageStats(
            expansion_hits=self.expansion_hits,
            expansion_misses=self.expansion_misses,
            schedule_hits=self.schedule_hits,
            schedule_misses=self.schedule_misses,
            expansions=len(self._expansions),
            schedules=len(self._schedules),
            structure_hits=self.structure_hits,
            structure_misses=self.structure_misses,
            structures=len(self._structures),
            integrity_evictions=self.integrity_evictions,
            lru_evictions=self.lru_evictions,
            occupancy_bytes=self._occupancy_bytes,
            max_entries=self._max_entries,
            max_bytes=self._max_bytes,
        )

    # -- bounded-LRU bookkeeping (no-ops on unbounded caches) ----------------

    @property
    def occupancy_bytes(self) -> int:
        """Estimated bytes held by the LRU-managed memos (0 when unbounded)."""
        return self._occupancy_bytes

    def _touch(self, kind: str, key: Tuple) -> None:
        """Mark one LRU-managed entry as most recently used."""
        with self._intern_lock:
            if (kind, key) in self._lru:
                self._lru.move_to_end((kind, key))

    def _admit(self, kind: str, key: Tuple, value, cost: int) -> None:
        """Store one LRU-managed entry and evict back under budget.

        An entry whose cost alone exceeds ``max_bytes`` is not memoized at
        all — the caller keeps the computed value, occupancy never exceeds
        the budget.  Store + bookkeeping share the lock so eviction can
        never orphan a stored value outside the recency order.
        """
        if self._max_bytes and cost > self._max_bytes:
            return
        store = self._expansions if kind == "expansion" else self._schedules
        with self._intern_lock:
            previous = self._lru.pop((kind, key), None)
            if previous is not None:
                self._occupancy_bytes -= previous
            store[key] = value
            self._lru[(kind, key)] = cost
            self._occupancy_bytes += cost
            self._evict_to_budget_locked()

    def _evict_to_budget_locked(self) -> None:
        """Evict until both budgets hold (caller owns ``_intern_lock``)."""
        while self._lru and (
            (self._max_entries and len(self._lru) > self._max_entries)
            or (self._max_bytes and self._occupancy_bytes > self._max_bytes)
        ):
            window = list(islice(self._lru.items(), _EVICTION_WINDOW))
            # min() is stable, so equal costs fall to the least recent.
            (kind, key), _cost = min(window, key=lambda item: item[1])
            self._forget_locked(kind, key)
            self.lru_evictions += 1

    def _forget_locked(self, kind: str, key: Tuple) -> None:
        """Drop one LRU-managed entry (caller owns ``_intern_lock``)."""
        cost = self._lru.pop((kind, key), None)
        if cost is not None:
            self._occupancy_bytes -= cost
        if kind == "expansion":
            self._expansions.pop(key, None)
        else:
            self._schedules.pop(key, None)

    # -- stage probes (used by merge_candidate) ------------------------------

    def expansion(
        self,
        problem: ExplorationProblem,
        candidate: Candidate,
        pins: Optional[Dict[str, str]] = None,
    ) -> Tuple[ExpandedGraph, Tuple[AlternativePath, ...]]:
        """The expansion stage: expanded graph + enumerated paths, memoized.

        Two layers: the full expansion is keyed by everything it can observe
        (:meth:`ExplorationProblem.expansion_key`); on a miss, the
        mapping-independent *structure* (graph + path enumeration) is still
        reused across co-location patterns and only the bus-assignment layer
        is rebuilt.  ``pins`` takes the candidate's already-filtered bus
        pins (empty dict = none) so callers holding them skip refiltering.
        """
        if pins is None:
            pins = problem.bus_assignment_for(candidate) or {}
        key = problem.expansion_key(candidate, pins=pins)
        cached = self._expansions.get(key)
        if cached is not None:
            self.expansion_hits += 1
            if self._bounded:
                self._touch("expansion", key)
            return cached
        self.expansion_misses += 1
        mapping = problem.mapping_for(candidate)
        pattern = crossing_edges(problem.graph, mapping)
        record = self._structures.get(pattern)
        if record is None:
            self.structure_misses += 1
            structure = expansion_structure(problem.graph, pattern)
            record = (structure, PathEnumerator(structure.graph).paths())
            self._structures[pattern] = record
        else:
            self.structure_hits += 1
        structure, paths = record
        expanded = assign_buses(
            structure,
            mapping,
            problem.architecture_for(candidate),
            bus_assignment=pins or None,
            bus_policy=problem.bus_policy,
        )
        if self._bounded:
            self._admit(
                "expansion", key, (expanded, paths),
                expansion_entry_cost(expanded, paths),
            )
        else:
            self._expansions[key] = (expanded, paths)
        return expanded, paths

    def intern_key(self, key: Tuple) -> int:
        """Replace a bulky sub-fingerprint tuple with a stable small id.

        Ids must be unique per fingerprint — an aliased id would make the
        schedule memo serve another path's schedule — so the allocation is
        locked against the shared-cache thread mode (double-checked: the
        fast path is one GIL-atomic dict probe, the lock is only taken on
        first intern of a key).
        """
        cached = self._key_ids.get(key)
        if cached is None:
            with self._intern_lock:
                cached = self._key_ids.get(key)
                if cached is None:
                    cached = self._next_key_id
                    self._next_key_id += 1
                    self._key_ids[key] = cached
        return cached

    def clear(self) -> None:
        """Drop every memoized stage (counters keep running totals).

        The intern counter is monotonic and survives clearing, so ids handed
        out before a ``clear`` can never alias ids interned afterwards —
        clearing concurrently with an in-flight evaluation wastes that
        evaluation's memo entries but cannot corrupt them.
        """
        with self._intern_lock:
            self._expansions.clear()
            self._structures.clear()
            self._schedules.clear()
            self._key_ids.clear()
            self._contexts.clear()
            self._lru.clear()
            self._occupancy_bytes = 0

    def lookup_schedule(self, key: Tuple) -> Optional[PathSchedule]:
        """Probe the per-path schedule memo (counts the hit/miss)."""
        cached = self._schedules.get(key)
        if cached is not None:
            self.schedule_hits += 1
            if self._bounded:
                self._touch("schedule", key)
        else:
            self.schedule_misses += 1
        return cached

    def store_schedule(self, key: Tuple, schedule: PathSchedule) -> None:
        """Record a freshly computed per-path schedule."""
        if self._bounded:
            self._admit("schedule", key, schedule, schedule_entry_cost(schedule))
        else:
            self._schedules[key] = schedule

    def check_integrity(self) -> int:
        """Verify memoized stages against their keys; evict mismatches.

        A stage cache is trusted verbatim on every hit, so an entry whose
        value drifted from its sub-fingerprint key (a torn write from an
        abandoned thread, an in-place mutation by a buggy caller) would
        silently poison every later evaluation that shares the stage.  This
        re-derives the cheap half of each key from the memoized value itself:

        * an expansion entry must map every assigned process to the key's
          processing element and realise every pinned message on its pinned
          bus;
        * a schedule entry must belong to the alternative path its interned
          sub-fingerprint names (the key's first element is the path label).

        Mismatched entries are evicted (self-healing: the next probe simply
        recomputes the stage) and counted in ``integrity_evictions``.
        Called by the evaluation pool after worker respawns and on degrade;
        cheap enough to invoke ad hoc, so it is not on any hot path.
        """
        evicted = 0
        with self._intern_lock:
            for key, (expanded, _paths) in list(self._expansions.items()):
                assignment, _platform, pins = key
                mapping = expanded.mapping
                consistent = all(
                    (pe := mapping.get(name)) is not None and pe.name == pe_name
                    for name, pe_name in assignment
                )
                if consistent and pins:
                    realised = expanded.bus_assignment
                    consistent = all(
                        realised.get(message) == bus_name
                        for message, bus_name in pins
                    )
                if not consistent:
                    self._forget_locked("expansion", key)
                    evicted += 1
            labels = {key_id: key[0] for key, key_id in self._key_ids.items()}
            for key, schedule in list(self._schedules.items()):
                key_id, _locks = key
                label = labels.get(key_id)
                if label is None or schedule.path.label != label:
                    self._forget_locked("schedule", key)
                    self._contexts.pop(key_id, None)
                    evicted += 1
            self.integrity_evictions += evicted
        return evicted


def _locks_key(
    locked_starts: Optional[Dict[str, float]],
    locked_broadcasts: Optional[Dict],
    ordered: bool,
) -> Tuple:
    """Hashable form of one schedule request's lock set.

    ``locked_broadcasts`` values are :class:`ScheduledTask` objects; only
    their primitive content enters the key.  ``ordered`` distinguishes
    adjustment requests (dispatch follows the original start order) from
    optimal ones — the hint *content* is derived from the path's optimal
    schedule and therefore already covered by the path sub-fingerprint.
    """
    starts = (
        tuple(sorted(locked_starts.items())) if locked_starts else ()
    )
    broadcasts = ()
    if locked_broadcasts:
        broadcasts = tuple(sorted(
            (
                str(condition),
                task.start,
                task.duration,
                task.pe.name if task.pe is not None else "",
            )
            for condition, task in locked_broadcasts.items()
        ))
    return (starts, broadcasts, ordered)


class _StagedScheduler:
    """Memoizing facade the staged pipeline hands to the schedule merger.

    Every ``schedule`` request — the optimal per-path schedules *and* the
    locked re-adjustments the merger issues while walking its decision tree —
    is keyed by ``(path sub-fingerprint, lock set)`` in the shared
    :class:`StageCache`.  The inner scheduler is pure, so a request repeated
    for a later candidate whose relevant slice is unchanged (the common case
    under move-local search: the early decision-tree branches lock the same
    times) returns the memoized schedule without re-dispatching.  Requests
    with caller-supplied ``priorities`` (none in the pipeline) bypass the
    memo.

    With a ``tracer``/``metrics`` pair, every memoized request is timed as a
    ``path_schedule`` stage (the initial optimal schedules) or a
    ``merge_readjust`` stage (the locked re-scheduling requests the merger
    issues while walking its decision tree); the span records whether the
    memo answered (``hit``).
    """

    __slots__ = ("_cache", "_inner", "_path_keys", "_tracer", "_metrics")

    def __init__(
        self,
        cache: StageCache,
        inner: PathListScheduler,
        path_keys: Dict,
        tracer=None,
        metrics=None,
    ) -> None:
        self._cache = cache
        self._inner = inner
        self._path_keys = path_keys
        self._tracer = tracer
        self._metrics = metrics

    def schedule(
        self,
        path: AlternativePath,
        *,
        priorities: Optional[Dict[str, float]] = None,
        locked_starts: Optional[Dict[str, float]] = None,
        locked_broadcasts: Optional[Dict] = None,
        order_hint: Optional[Dict[str, float]] = None,
    ) -> PathSchedule:
        if priorities is not None:
            return self._inner.schedule(
                path,
                priorities=priorities,
                locked_starts=locked_starts,
                locked_broadcasts=locked_broadcasts,
                order_hint=order_hint,
            )
        if self._tracer is None and self._metrics is None:
            return self._memoized(
                path, locked_starts, locked_broadcasts, order_hint
            )[0]
        locked = bool(locked_starts or locked_broadcasts) or order_hint is not None
        name = "merge_readjust" if locked else "path_schedule"
        span = (
            self._tracer.span(f"stage.{name}", path=str(path.label))
            if self._tracer is not None
            else None
        )
        started = time.perf_counter()
        schedule, hit = self._memoized(
            path, locked_starts, locked_broadcasts, order_hint
        )
        elapsed = time.perf_counter() - started
        if span is not None:
            span.close(hit=hit)
        if self._metrics is not None:
            self._metrics.observe(f"stage.{name}.seconds", elapsed)
        return schedule

    def _memoized(
        self,
        path: AlternativePath,
        locked_starts: Optional[Dict[str, float]],
        locked_broadcasts: Optional[Dict],
        order_hint: Optional[Dict[str, float]],
    ) -> Tuple[PathSchedule, bool]:
        """The memo probe + compute path; returns (schedule, served-from-memo)."""
        path_key = self._path_keys[path.label]
        key = (
            path_key,
            _locks_key(locked_starts, locked_broadcasts, order_hint is not None),
        )
        cached = self._cache.lookup_schedule(key)
        if cached is not None:
            return cached, True
        context = self._cache._contexts.get(path_key)
        if context is not None:
            self._inner.adopt_context(path, context)
        schedule = self._inner.schedule(
            path,
            locked_starts=locked_starts,
            locked_broadcasts=locked_broadcasts,
            order_hint=order_hint,
        )
        if context is None:
            self._cache._contexts[path_key] = self._inner.export_context(path)
        self._cache.store_schedule(key, schedule)
        return schedule, False


@dataclass(frozen=True)
class CostWeights:
    """Relative weights of the scalar-cost components (see module docstring).

    The default optimises ``delta_max`` alone, matching the paper's metric;
    ``load_imbalance`` is a ratio, so its weight is interpreted in the same
    time unit as the delays (weight 10 adds 10 time units per 100% imbalance).
    ``architecture_cost`` weights the platform cost into the scalar;
    ``processor_cost`` and ``bus_cost`` are the per-element units that make up
    that platform cost (they also feed the fourth objective-vector component,
    whatever the scalar weight is).  ``bus_imbalance`` weights bus contention
    — like ``load_imbalance`` it is a ratio, interpreted in the same time
    unit as the delays.
    """

    delta_max: float = 1.0
    mean_path_delay: float = 0.0
    load_imbalance: float = 0.0
    architecture_cost: float = 0.0
    processor_cost: float = 1.0
    bus_cost: float = 0.5
    bus_imbalance: float = 0.0


@dataclass(frozen=True)
class CandidateEvaluation:
    """The scored outcome of merging one candidate's schedule table."""

    fingerprint: str
    cost: float
    feasible: bool
    delta_max: float = 0.0
    delta_m: float = 0.0
    mean_path_delay: float = 0.0
    load_imbalance: float = 0.0
    architecture_cost: float = 0.0
    bus_imbalance: float = 0.0
    paths: int = 0
    error: str = ""

    @property
    def delay_increase_percent(self) -> float:
        """How far the table's worst case exceeds the ideal delay, in percent."""
        if self.delta_m <= 0:
            return 0.0
        return 100.0 * (self.delta_max - self.delta_m) / self.delta_m

    @property
    def objectives(self) -> Tuple[float, float, float, float, float]:
        """The minimised objective vector (see ``pareto.OBJECTIVE_NAMES``)."""
        return (
            self.delta_max,
            self.mean_path_delay,
            self.load_imbalance,
            self.architecture_cost,
            self.bus_imbalance,
        )


def load_imbalance_of(problem: ExplorationProblem, candidate: Candidate) -> float:
    """``max processor load / mean processor load - 1`` under a candidate.

    Loads sum the execution time of every ordinary process on its assigned
    processor (communications are excluded here: their bus placement is
    priced separately by :func:`bus_imbalance_of`).  With architecture
    sizing, the mean runs
    over the candidate's *active* processors, so emptier, smaller platforms
    are not penalised for processors they no longer instantiate.
    """
    loads: Dict[str, float] = {
        name: 0.0 for name in problem.processors_for(candidate)
    }
    graph = problem.graph
    architecture = problem.architecture_for(candidate)
    for name, pe_name in candidate.assignment:
        loads[pe_name] += graph[name].duration_on(architecture[pe_name])
    mean = sum(loads.values()) / len(loads) if loads else 0.0
    if mean <= 0:
        return 0.0
    return max(loads.values()) / mean - 1.0


def bus_imbalance_of(architecture: Architecture, expanded: ExpandedGraph) -> float:
    """``max bus load / mean bus load - 1`` over an expanded graph.

    Loads sum the duration of every communication process on its assigned bus
    (scaled by bus speed, like the scheduler sees it); the mean runs over
    *every* bus of the architecture, so leaving a bus idle on a multi-bus
    platform registers as contention.  Zero when the architecture has fewer
    than two buses or nothing communicates.
    """
    if len(architecture.buses) < 2:
        return 0.0
    # The expansion already accumulated these sums while assigning buses
    # (ExpandedGraph.bus_loads, shared with the least_loaded policy); buses
    # that carry nothing still enter the mean at zero load.
    loads: Dict[str, float] = {
        pe.name: expanded.bus_loads.get(pe.name, 0.0) for pe in architecture.buses
    }
    mean = sum(loads.values()) / len(loads)
    if mean <= 0:
        return 0.0
    return max(loads.values()) / mean - 1.0


def architecture_cost_of(
    problem: ExplorationProblem,
    candidate: Candidate,
    weights: CostWeights = CostWeights(),
) -> float:
    """Platform cost of a candidate in abstract units.

    ``processor_cost`` per programmable processor plus ``bus_cost`` per bus of
    the candidate's (possibly sized) architecture.  Hardware processors are
    not sizable and carry no cost here.
    """
    architecture = problem.architecture_for(candidate)
    return (
        weights.processor_cost * len(architecture.programmable_processors)
        + weights.bus_cost * len(architecture.buses)
    )


def merge_candidate(
    problem: ExplorationProblem,
    candidate: Candidate,
    stage_cache: Optional[StageCache] = None,
    tracer=None,
    metrics=None,
    slice_memo: Optional[Dict] = None,
) -> Tuple[ExpandedGraph, MergeResult]:
    """Run the merge pipeline for one candidate, optionally staged.

    Without a ``stage_cache`` this is the monolithic pipeline the repository
    has always run: expand communications, schedule every alternative path,
    merge.  With one, the expansion and the per-path schedules are looked up
    by sub-fingerprint first, so a move-local candidate recomputes only the
    paths its move can actually affect; the merge itself always runs (its
    output is the whole point of the evaluation, and revisited *candidates*
    are already absorbed by the whole-candidate cache upstream).

    Both forms produce bit-identical results — the staged pipeline feeds the
    merger the same paths (enumeration is part of the memoized expansion
    stage, preserving order) and the same per-path schedules (the scheduler
    is deterministic and the sub-fingerprints cover everything it observes).
    Raises the pipeline's errors (``MappingError`` etc.); callers wanting
    infinite-cost semantics use :func:`evaluate_candidate`.

    ``tracer``/``metrics`` (see :mod:`repro.observability`) time the stages:
    ``expansion``, ``flat_pack`` (sub-fingerprint slicing + key packing,
    staged arm only), ``path_schedule`` per alternative path (staged arm
    only), ``merge`` (wall time including re-adjustments) and
    ``merge_readjust`` (the locked re-scheduling share within the merge).
    Timing never changes the result; with both None (the default), the
    pipeline runs exactly the uninstrumented code path.

    ``slice_memo`` (supplied by :func:`evaluate_neighbourhood`) shares the
    candidate-independent half of the path sub-fingerprints — the active-set
    and realised-bus slices of :meth:`ExplorationProblem.path_slices` —
    across every candidate of a batch that reuses the same expansion; it is
    a pure-value cache, so passing one never changes any result.
    """
    dispatch_priorities = priority_function(candidate.priority_function)
    architecture = problem.architecture_for(candidate)
    timed = tracer is not None or metrics is not None
    if stage_cache is None:
        if timed:
            with _timed_stage(tracer, metrics, "expansion"):
                expanded = expand_communications(
                    problem.graph,
                    problem.mapping_for(candidate),
                    architecture,
                    bus_assignment=problem.bus_assignment_for(candidate),
                    bus_policy=problem.bus_policy,
                )
        else:
            expanded = expand_communications(
                problem.graph,
                problem.mapping_for(candidate),
                architecture,
                bus_assignment=problem.bus_assignment_for(candidate),
                bus_policy=problem.bus_policy,
            )
        scheduler = PathListScheduler(
            expanded.graph,
            expanded.mapping,
            architecture,
            priority_function=dispatch_priorities,
            priority_bias=candidate.bias_dict,
        )
        merger = ScheduleMerger(
            expanded.graph, expanded.mapping, architecture, scheduler
        )
        if timed:
            # The monolithic merge schedules paths internally, so its span
            # covers path scheduling too (no separate path_schedule stage).
            with _timed_stage(tracer, metrics, "merge"):
                result = merger.merge()
        else:
            result = merger.merge()
        return expanded, result

    pins = problem.bus_assignment_for(candidate) or {}
    if timed:
        with _timed_stage(tracer, metrics, "expansion"):
            expanded, paths = stage_cache.expansion(problem, candidate, pins=pins)
    else:
        expanded, paths = stage_cache.expansion(problem, candidate, pins=pins)
    inner = PathListScheduler(
        expanded.graph,
        expanded.mapping,
        architecture,
        priority_function=dispatch_priorities,
        priority_bias=candidate.bias_dict,
    )
    # Non-path-local priority functions key every path on the full expansion;
    # build that key once per candidate (reusing the filtered pins), not once
    # per path.
    expansion_key = None
    if candidate.priority_function not in PATH_LOCAL_PRIORITY_FUNCTIONS:
        expansion_key = problem.expansion_key(candidate, pins=pins)

    def pack_path_keys() -> Dict:
        # The candidate-independent slices are keyed on the paths tuple's
        # identity (the memoized expansion returns the same tuple object for
        # every candidate that shares the expansion); holding the tuple in
        # the entry pins the id against reuse.
        slices = None
        if slice_memo is not None:
            entry = slice_memo.get(id(paths))
            if entry is None or entry[0] is not paths:
                entry = (
                    paths,
                    {
                        path.label: problem.path_slices(path, expanded)
                        for path in paths
                    },
                )
                slice_memo[id(paths)] = entry
            slices = entry[1]
        return {
            path.label: stage_cache.intern_key(
                problem.path_schedule_key(
                    candidate,
                    path,
                    expanded,
                    expansion_key=expansion_key,
                    slices=slices[path.label] if slices is not None else None,
                )
            )
            for path in paths
        }

    if timed:
        with _timed_stage(tracer, metrics, "flat_pack", paths=len(paths)):
            path_keys = pack_path_keys()
    else:
        path_keys = pack_path_keys()
    scheduler = _StagedScheduler(
        stage_cache, inner, path_keys, tracer=tracer, metrics=metrics
    )
    path_schedules = {path.label: scheduler.schedule(path) for path in paths}
    merger = ScheduleMerger(
        expanded.graph, expanded.mapping, architecture, scheduler
    )
    if timed:
        with _timed_stage(tracer, metrics, "merge"):
            result = merger.merge(paths=list(paths), path_schedules=path_schedules)
    else:
        result = merger.merge(paths=list(paths), path_schedules=path_schedules)
    return expanded, result


def evaluate_candidate(
    problem: ExplorationProblem,
    candidate: Candidate,
    weights: CostWeights = CostWeights(),
    stage_cache: Optional[StageCache] = None,
    tracer=None,
    metrics=None,
    slice_memo: Optional[Dict] = None,
) -> CandidateEvaluation:
    """Score one candidate by running the merge pipeline end to end.

    Infeasible candidates (unconnectable communications, unschedulable paths,
    unresolvable merge conflicts, malformed sized platforms) get infinite
    cost instead of raising, so a search can step over them.  With a
    ``stage_cache`` the pipeline runs incrementally (see
    :func:`merge_candidate`); the evaluation is bit-identical either way.

    ``tracer``/``metrics`` wrap the whole evaluation in an ``evaluate`` span
    / latency histogram and time the pipeline stages inside (see
    :func:`merge_candidate`); both default to None, which keeps the exact
    uninstrumented code path.
    """
    timed = tracer is not None or metrics is not None
    span = tracer.span("evaluate") if tracer is not None else None
    started = time.perf_counter() if timed else 0.0
    try:
        expanded, result = merge_candidate(
            problem, candidate, stage_cache=stage_cache,
            tracer=tracer, metrics=metrics, slice_memo=slice_memo,
        )
        architecture = problem.architecture_for(candidate)
    except (ArchitectureError, MappingError, SchedulingError, MergeConflictError) as error:
        if timed:
            if metrics is not None:
                metrics.observe("evaluate.seconds", time.perf_counter() - started)
            if span is not None:
                span.close(feasible=False)
        return CandidateEvaluation(
            fingerprint=candidate.fingerprint,
            cost=_INFEASIBLE_COST,
            feasible=False,
            error=str(error),
        )

    path_delays = [result.table_path_delays[path.label] for path in result.paths]
    mean_path_delay = sum(path_delays) / len(path_delays)
    imbalance = load_imbalance_of(problem, candidate)
    platform_cost = architecture_cost_of(problem, candidate, weights)
    contention = bus_imbalance_of(architecture, expanded)
    cost = (
        weights.delta_max * result.delta_max
        + weights.mean_path_delay * mean_path_delay
        + weights.load_imbalance * imbalance
        + weights.architecture_cost * platform_cost
        + weights.bus_imbalance * contention
    )
    if timed:
        if metrics is not None:
            metrics.observe("evaluate.seconds", time.perf_counter() - started)
        if span is not None:
            span.close(feasible=True)
    return CandidateEvaluation(
        fingerprint=candidate.fingerprint,
        cost=cost,
        feasible=True,
        delta_max=result.delta_max,
        delta_m=result.delta_m,
        mean_path_delay=mean_path_delay,
        load_imbalance=imbalance,
        architecture_cost=platform_cost,
        bus_imbalance=contention,
        paths=len(result.paths),
    )


class BatchStats:
    """Running totals of batched neighbourhood evaluation.

    ``batches``/``candidates`` count :func:`evaluate_neighbourhood` calls and
    the candidates they scored; ``payload_bytes`` accumulates the serialized
    bytes shipped to evaluation-pool workers (pickled-once shared problem
    buffers plus per-batch task payloads — zero for in-process evaluation).
    All counters are deterministic, so snapshots are safe to surface in
    byte-compared JSON documents.
    """

    __slots__ = ("batches", "candidates", "payload_bytes")

    def __init__(self) -> None:
        self.batches = 0
        self.candidates = 0
        self.payload_bytes = 0

    def record_batch(self, size: int, payload_bytes: int = 0) -> None:
        """Count one evaluated batch of ``size`` candidates."""
        self.batches += 1
        self.candidates += size
        self.payload_bytes += payload_bytes

    @property
    def mean_batch_size(self) -> float:
        return self.candidates / self.batches if self.batches else 0.0

    def snapshot(self) -> Dict[str, float]:
        """The ``batch`` stats block of ``repro-cpg explore --json``."""
        return {
            "batches": self.batches,
            "candidates": self.candidates,
            "mean_batch_size": self.mean_batch_size,
            "payload_bytes": self.payload_bytes,
        }


def evaluate_neighbourhood(
    problem: ExplorationProblem,
    candidates,
    weights: CostWeights = CostWeights(),
    stage_cache: Optional[StageCache] = None,
    tracer=None,
    metrics=None,
    batch_stats: Optional[BatchStats] = None,
) -> "list[CandidateEvaluation]":
    """Score a whole move batch against one shared expansion state.

    Semantically identical to mapping :func:`evaluate_candidate` over
    ``candidates`` in order — same evaluations, same stage-cache accounting,
    same spans — but the candidate-independent half of every path
    sub-fingerprint (:meth:`ExplorationProblem.path_slices`) is sliced once
    per batch and shared by every candidate that reuses the same memoized
    expansion, instead of being recomputed per candidate.

    ``batch_stats`` (see :class:`BatchStats`) accumulates batch counters for
    the ``batch`` block of ``explore --json``; ``metrics`` additionally gets
    a ``batch.size`` observation per call.
    """
    batch = list(candidates)
    if metrics is not None:
        metrics.observe("batch.size", len(batch))
    if batch_stats is not None:
        batch_stats.record_batch(len(batch))
    slice_memo: Optional[Dict] = {} if stage_cache is not None else None
    return [
        evaluate_candidate(
            problem,
            candidate,
            weights,
            stage_cache=stage_cache,
            tracer=tracer,
            metrics=metrics,
            slice_memo=slice_memo,
        )
        for candidate in batch
    ]
