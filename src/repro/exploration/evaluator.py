"""Content-hash evaluation cache in front of the merge pipeline.

Local search revisits design points constantly — a swap undone two moves
later, simulated annealing bouncing around a basin, a second engine re-walking
the region the first one covered.  The :class:`CachedEvaluator` keys every
evaluation on the candidate's content hash (:attr:`Candidate.fingerprint`), so
a revisited mapping/priority configuration never re-runs communication
expansion, per-path scheduling or schedule merging.

Batches are deduplicated *before* they reach the (possibly parallel)
evaluation pool: within one neighbourhood batch, duplicated candidates are
evaluated once; across batches, the cache answers directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from .candidate import Candidate
from .cost import (
    BatchStats,
    CandidateEvaluation,
    CostWeights,
    StageCache,
    StageStats,
    evaluate_candidate,
    evaluate_neighbourhood,
)
from .pareto import ParetoFront
from .pool import EvaluationPool
from .problem import ExplorationProblem


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of one evaluator (misses = actual merge runs)."""

    hits: int
    misses: int
    size: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachedEvaluator:
    """Evaluates candidates through a fingerprint-keyed cache.

    Parameters
    ----------
    problem:
        The exploration problem supplying the evaluation pipeline.
    weights:
        Cost weights (must match the pool's weights when one is given).
    pool:
        Optional :class:`EvaluationPool` scoring cache misses in parallel.
        Its weights must equal ``weights`` (checked at construction — worker
        processes score with the pool's weights, so a mismatch would silently
        optimise the wrong objective); without a pool, misses are evaluated
        serially in-process.
    cache:
        Set to False to disable caching (used by benchmarks to measure the
        naive re-evaluation baseline; every request then runs the merger).
    front:
        Optional :class:`~repro.exploration.ParetoFront`.  When given, every
        *fresh* feasible evaluation is offered to the front, so the front ends
        up covering every distinct design point the evaluator ever scored
        (cache hits were already offered when they were first computed).
    stage_cache:
        Controls the *incremental* evaluation of whole-candidate cache
        misses (see :class:`~repro.exploration.StageCache`): ``True`` (the
        default) creates a private stage cache, ``False`` disables staged
        evaluation (every miss re-runs the full pipeline — the benchmark
        baseline), and an explicit :class:`StageCache` instance is used as
        given (sharing across evaluators of the *same problem*).  With a
        pool, every miss is scored by the pool's own stage caches
        (configure them via ``EvaluationPool(stage_caching=...)``), so this
        setting is ignored and no evaluator-side cache is created.
    tracer:
        Optional :class:`~repro.observability.Tracer`.  Serial fresh
        evaluations run inside ``evaluate``/``stage.*`` spans; with a pool
        the pool's own tracer takes over (pass it the same tracer).  None
        (the default) keeps the uninstrumented code path.
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry` receiving
        ``cache.hits``/``cache.misses`` counters and — on the serial path —
        the stage/evaluate latency histograms.  None disables, with ~zero
        overhead.
    """

    def __init__(
        self,
        problem: ExplorationProblem,
        weights: CostWeights = CostWeights(),
        pool: Optional[EvaluationPool] = None,
        cache: bool = True,
        front: Optional[ParetoFront] = None,
        stage_cache: Union[bool, StageCache] = True,
        tracer=None,
        metrics=None,
    ) -> None:
        if pool is not None and pool.weights != weights:
            raise ValueError(
                f"pool weights {pool.weights} differ from evaluator weights "
                f"{weights}; the search would optimise the wrong objective"
            )
        self._problem = problem
        self._weights = weights
        self._pool = pool
        self._enabled = cache
        self._front = front
        self._tracer = tracer
        self._metrics = metrics
        self._cache: Dict[str, CandidateEvaluation] = {}
        self._hits = 0
        self._misses = 0
        self._batch_stats = BatchStats()
        if pool is not None:
            # Misses never run in-process: the pool's stage caches score
            # them (see the stage_cache parameter doc).
            self._stage_cache: Optional[StageCache] = None
        elif isinstance(stage_cache, StageCache):
            self._stage_cache = stage_cache
        else:
            self._stage_cache = StageCache() if stage_cache else None

    @property
    def problem(self) -> ExplorationProblem:
        return self._problem

    @property
    def weights(self) -> CostWeights:
        return self._weights

    @property
    def front(self) -> Optional[ParetoFront]:
        """The Pareto front fresh evaluations feed, or None when not tracking."""
        return self._front

    @property
    def tracer(self):
        """The attached :class:`~repro.observability.Tracer`, or None."""
        return self._tracer

    @property
    def metrics(self):
        """The attached :class:`~repro.observability.MetricsRegistry`, or None."""
        return self._metrics

    @property
    def stats(self) -> CacheStats:
        return CacheStats(self._hits, self._misses, len(self._cache))

    @property
    def stage_cache(self) -> Optional[StageCache]:
        """The serial-path stage cache, or None when staged evaluation is off."""
        return self._stage_cache

    @property
    def batch_stats(self) -> BatchStats:
        """Running totals of the batched fresh evaluations (see BatchStats)."""
        return self._batch_stats

    @property
    def resilience_stats(self):
        """The pool's fault/retry counters, or None without a pool.

        (Typed loosely to avoid importing the resilience module here; the
        value is a :class:`repro.exploration.ResilienceStats`.)
        """
        if self._pool is None:
            return None
        return self._pool.resilience_stats

    @property
    def stage_stats(self) -> Optional[StageStats]:
        """Stage-level hit/miss counters of whatever scores the misses.

        With a pool, misses run on the pool's stage caches
        (:meth:`EvaluationPool.stage_stats` — None in process mode, where the
        caches live in the workers and are not aggregated); without one, the
        evaluator's own serial stage cache.  None when staged evaluation is
        disabled everywhere.
        """
        if self._pool is not None:
            return self._pool.stage_stats
        return self._stage_cache.stats if self._stage_cache is not None else None

    # -- scoring -------------------------------------------------------------

    def evaluate(self, candidate: Candidate) -> CandidateEvaluation:
        """Score one candidate (cache probe first)."""
        return self.evaluate_many([candidate])[0]

    def evaluate_many(
        self, candidates: Sequence[Candidate]
    ) -> List[CandidateEvaluation]:
        """Score a batch, returning evaluations in input order.

        Cache misses are deduplicated by fingerprint and sent to the pool as
        one batch (or evaluated serially without a pool).
        """
        if not self._enabled:
            self._misses += len(candidates)
            if self._metrics is not None:
                self._metrics.count("cache.misses", len(candidates))
            evaluations = self._evaluate_fresh(list(candidates))
            if self._front is not None:
                self._front.offer_many(candidates, evaluations)
            return evaluations

        fresh: List[Candidate] = []
        fresh_keys: Dict[str, int] = {}
        batch_hits = 0
        for candidate in candidates:
            key = candidate.fingerprint
            if key in self._cache:
                self._hits += 1
                batch_hits += 1
            elif key in fresh_keys:
                self._hits += 1
                batch_hits += 1
            else:
                fresh_keys[key] = len(fresh)
                fresh.append(candidate)
                self._misses += 1
        if self._metrics is not None:
            if batch_hits:
                self._metrics.count("cache.hits", batch_hits)
            if fresh:
                self._metrics.count("cache.misses", len(fresh))
        if fresh:
            evaluations = self._evaluate_fresh(fresh)
            for candidate, evaluation in zip(fresh, evaluations):
                self._cache[candidate.fingerprint] = evaluation
            if self._front is not None:
                self._front.offer_many(fresh, evaluations)
        return [self._cache[candidate.fingerprint] for candidate in candidates]

    def _evaluate_fresh(
        self, candidates: List[Candidate]
    ) -> List[CandidateEvaluation]:
        if self._pool is not None:
            shipped_before = self._pool.payload_bytes_shipped
            evaluations = self._pool.evaluate(candidates)
            self._batch_stats.record_batch(
                len(candidates),
                self._pool.payload_bytes_shipped - shipped_before,
            )
            return evaluations
        return evaluate_neighbourhood(
            self._problem,
            candidates,
            self._weights,
            stage_cache=self._stage_cache,
            tracer=self._tracer,
            metrics=self._metrics,
            batch_stats=self._batch_stats,
        )
