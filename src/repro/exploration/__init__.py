"""Design-space exploration over the merge scheduler.

The source paper assumes the process-to-processor mapping arrives from an
upstream partitioning step (Eles et al., 1997 — simulated annealing and tabu
search); this subsystem closes that loop.  It searches the mapping/priority
design space using the repository's schedule merger as the evaluator:

* :class:`Candidate` / :class:`CostWeights` — design points and their scoring
  (worst-case delay, mean path delay, processor load balance), behind a
  content-hash evaluation cache (:class:`CachedEvaluator`) so revisited
  mappings never re-run the merger;
* :class:`NeighborhoodSampler` — remap / swap / priority-switch / priority-
  bias moves;
* :class:`TabuSearchEngine` and :class:`SimulatedAnnealingEngine` — seeded,
  cycle-bounded engines behind the :class:`Explorer` facade with pluggable
  stopping criteria;
* :class:`EvaluationPool` — batched neighbour scoring on
  ``concurrent.futures`` worker processes.

Quick start::

    from repro.exploration import ExplorationProblem, Explorer
    from repro.generator import generate_system

    problem = ExplorationProblem.from_system(generate_system(40, 8, seed=1))
    result = Explorer(problem).explore("tabu")
    print(result.initial.delta_max, "->", result.best.delta_max)
"""

from .candidate import Candidate
from .cost import (
    CandidateEvaluation,
    CostWeights,
    evaluate_candidate,
    load_imbalance_of,
)
from .engines import (
    ENGINES,
    ExplorationConfig,
    ExplorationResult,
    Explorer,
    MaxCycles,
    SearchState,
    SimulatedAnnealingEngine,
    Stalled,
    StoppingCriterion,
    TabuSearchEngine,
    TargetCost,
    TrajectoryPoint,
)
from .evaluator import CachedEvaluator, CacheStats
from .moves import Move, NeighborhoodSampler
from .pool import EvaluationPool, default_worker_count
from .problem import ExplorationProblem

__all__ = [
    "CacheStats",
    "CachedEvaluator",
    "Candidate",
    "CandidateEvaluation",
    "CostWeights",
    "ENGINES",
    "EvaluationPool",
    "ExplorationConfig",
    "ExplorationProblem",
    "ExplorationResult",
    "Explorer",
    "MaxCycles",
    "Move",
    "NeighborhoodSampler",
    "SearchState",
    "SimulatedAnnealingEngine",
    "Stalled",
    "StoppingCriterion",
    "TabuSearchEngine",
    "TargetCost",
    "TrajectoryPoint",
    "default_worker_count",
    "evaluate_candidate",
    "load_imbalance_of",
]
