"""Design-space exploration over the merge scheduler.

The source paper assumes the process-to-processor mapping arrives from an
upstream partitioning step (Eles et al., 1997 — simulated annealing and tabu
search); this subsystem closes that loop.  It searches the mapping/priority —
and, with :class:`ArchitectureBounds`, the *platform* — design space using the
repository's schedule merger as the evaluator:

* :class:`Candidate` / :class:`CostWeights` — design points and their scoring
  (worst-case delay, mean path delay, processor load balance, architecture
  cost, bus contention), behind a content-hash evaluation cache
  (:class:`CachedEvaluator`) so revisited mappings never re-run the merger,
  and a sub-fingerprint :class:`StageCache` so even *fresh* candidates reuse
  the expansion and every per-path schedule a local move left untouched;
* :class:`NeighborhoodSampler` — remap / swap / priority-switch / priority-
  bias moves, plus remap_comm / swap_bus communication-mapping moves when the
  problem enables ``map_communications`` (candidates then pin individual
  messages to buses instead of accepting the derived pick) and
  add/remove-processor and add/remove-bus sizing moves when the problem
  declares bounds;
* :class:`TabuSearchEngine`, :class:`SimulatedAnnealingEngine` and the
  NSGA-style :class:`GeneticEngine` — seeded, cycle-bounded engines behind
  the :class:`Explorer` facade with pluggable stopping criteria;
* :class:`ParetoFront` — non-dominated fronts over the vector cost
  ``(delta_max, mean_path_delay, load_imbalance, architecture_cost,
  bus_imbalance)``;
* :class:`EvaluationPool` — batched neighbour/generation scoring on
  ``concurrent.futures`` worker processes, resilient to worker crashes,
  hangs and abrupt exits (:class:`RetryPolicy`, :class:`FaultInjector`,
  quarantine of poison candidates, graceful degrade to in-process
  evaluation);
* :class:`Checkpointer` / :func:`load_checkpoint` — versioned JSON
  checkpoints every engine writes periodically and resumes from
  bit-identically (``Explorer.explore(..., checkpoint=..., resume=True)``).

Quick start::

    from repro.exploration import ExplorationProblem, Explorer
    from repro.generator import generate_system

    problem = ExplorationProblem.from_system(generate_system(40, 8, seed=1))
    result = Explorer(problem).explore("tabu")
    print(result.initial.delta_max, "->", result.best.delta_max)

Multi-objective, with architecture sizing::

    from repro.exploration import ArchitectureBounds

    problem = ExplorationProblem.from_system(
        generate_system(40, 8, seed=1), bounds=ArchitectureBounds()
    )
    result = Explorer(problem).explore("genetic")
    for point in result.front:
        print(point.objectives)
"""

from .candidate import Candidate
from .cost import (
    BatchStats,
    CandidateEvaluation,
    CostWeights,
    StageCache,
    StageStats,
    architecture_cost_of,
    bus_imbalance_of,
    evaluate_candidate,
    evaluate_neighbourhood,
    load_imbalance_of,
    merge_candidate,
)
from .engines import (
    ENGINES,
    ExplorationConfig,
    ExplorationResult,
    Explorer,
    GeneticEngine,
    MaxCycles,
    SearchState,
    SimulatedAnnealingEngine,
    Stalled,
    StoppingCriterion,
    TabuSearchEngine,
    TargetCost,
    TrajectoryPoint,
)
from .evaluator import CachedEvaluator, CacheStats
from .moves import Move, NeighborhoodSampler
from .pareto import (
    OBJECTIVE_NAMES,
    ParetoFront,
    ParetoPoint,
    crowding_distances,
    dominates,
    non_dominated_sort,
)
from .pool import EvaluationPool, default_worker_count
from .problem import ArchitectureBounds, ExplorationProblem
from .resilience import (
    CHECKPOINT_VERSION,
    Checkpointer,
    CheckpointError,
    FaultInjector,
    InjectedFault,
    ResilienceStats,
    RetryPolicy,
    WorkerInitializationError,
    load_checkpoint,
    quarantined_evaluation,
    validate_checkpoint,
)

__all__ = [
    "ArchitectureBounds",
    "CHECKPOINT_VERSION",
    "CacheStats",
    "CachedEvaluator",
    "Candidate",
    "BatchStats",
    "CandidateEvaluation",
    "CheckpointError",
    "Checkpointer",
    "CostWeights",
    "ENGINES",
    "EvaluationPool",
    "ExplorationConfig",
    "ExplorationProblem",
    "ExplorationResult",
    "Explorer",
    "FaultInjector",
    "GeneticEngine",
    "InjectedFault",
    "MaxCycles",
    "Move",
    "NeighborhoodSampler",
    "OBJECTIVE_NAMES",
    "ParetoFront",
    "ParetoPoint",
    "ResilienceStats",
    "RetryPolicy",
    "SearchState",
    "SimulatedAnnealingEngine",
    "StageCache",
    "StageStats",
    "Stalled",
    "StoppingCriterion",
    "TabuSearchEngine",
    "TargetCost",
    "TrajectoryPoint",
    "WorkerInitializationError",
    "architecture_cost_of",
    "bus_imbalance_of",
    "crowding_distances",
    "default_worker_count",
    "dominates",
    "evaluate_candidate",
    "evaluate_neighbourhood",
    "load_imbalance_of",
    "load_checkpoint",
    "merge_candidate",
    "non_dominated_sort",
    "quarantined_evaluation",
    "validate_checkpoint",
]
