"""Neighbourhood moves over the mapping/priority/platform design space.

Four move kinds span the space every problem exposes:

* ``remap``    — move one process to a different (active) processor;
* ``swap``     — exchange the processors of two processes;
* ``priority`` — switch the list scheduler to another registered priority
  function;
* ``bias``     — perturb the dispatch priority of one process by a small
  additive step (ties the explorer into the scheduler's secondary degrees of
  freedom, not only the mapping).

When the problem declares :class:`~repro.exploration.ArchitectureBounds`,
four *architecture-sizing* kinds join the neighbourhood, so the search can
resize the platform instead of only remapping onto it:

* ``add_pe`` / ``remove_pe`` — instantiate one more programmable processor
  (from the problem's deterministic spare-name pool) or retire an *empty*
  one, staying within the declared processor bounds;
* ``add_bus`` / ``remove_bus`` — likewise for buses.  Bus removal may make
  candidates infeasible (a communication can lose its last connecting bus);
  the evaluator scores those as infinite cost rather than raising.

Moves are small frozen descriptions (kind + operands) applied functionally:
``move.apply(candidate)`` derives the neighbour without mutating the origin.
The :class:`NeighborhoodSampler` draws a batch of *distinct* neighbours from a
seeded ``random.Random``, which is the only source of randomness in a search —
the evaluation itself is deterministic, so a seed fully determines a run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .candidate import Candidate
from .problem import ExplorationProblem

DEFAULT_PRIORITY_CHOICES: Tuple[str, ...] = (
    "critical_path",
    "upward_rank",
    "static_order",
)

#: Relative draw frequency of the move kinds (mapping moves dominate: they
#: change the communication structure, which is where the big wins are).
_MOVE_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("remap", 0.45),
    ("swap", 0.25),
    ("bias", 0.2),
    ("priority", 0.1),
)

#: Extra draw weight of the architecture-sizing kinds, appended only when the
#: problem declares bounds, so fixed-architecture searches keep the exact
#: neighbourhood (and per-seed trajectories) they had before sizing existed.
_SIZING_WEIGHT: float = 0.25


@dataclass(frozen=True)
class Move:
    """One neighbourhood move: a kind plus its operands."""

    kind: str
    operands: Tuple = ()

    def apply(self, candidate: Candidate) -> Candidate:
        """Derive the neighbour this move describes (the origin is untouched)."""
        if self.kind == "remap":
            process, pe_name = self.operands
            return candidate.reassigned(process, pe_name)
        if self.kind == "swap":
            first, second = self.operands
            return candidate.swapped(first, second)
        if self.kind == "priority":
            (name,) = self.operands
            return candidate.with_priority_function(name)
        if self.kind == "bias":
            process, delta = self.operands
            return candidate.with_bias(process, delta)
        if self.kind == "add_pe":
            (name,) = self.operands
            return candidate.with_element(name, "programmable")
        if self.kind == "add_bus":
            (name,) = self.operands
            return candidate.with_element(name, "bus")
        if self.kind in ("remove_pe", "remove_bus"):
            (name,) = self.operands
            return candidate.without_element(name)
        raise ValueError(f"unknown move kind {self.kind!r}")

    def describe(self) -> str:
        """Short human-readable form used in trajectories and reports."""
        if self.kind == "remap":
            process, pe_name = self.operands
            return f"remap {process} -> {pe_name}"
        if self.kind == "swap":
            first, second = self.operands
            return f"swap {first} <-> {second}"
        if self.kind == "priority":
            return f"priority -> {self.operands[0]}"
        if self.kind == "bias":
            process, delta = self.operands
            return f"bias {process} {delta:+g}"
        if self.kind in ("add_pe", "add_bus"):
            return f"add {self.operands[0]}"
        if self.kind in ("remove_pe", "remove_bus"):
            return f"remove {self.operands[0]}"
        return self.kind

    def __str__(self) -> str:
        return self.describe()


class NeighborhoodSampler:
    """Draws batches of distinct neighbour candidates around a design point."""

    def __init__(
        self,
        problem: ExplorationProblem,
        priority_choices: Sequence[str] = DEFAULT_PRIORITY_CHOICES,
        bias_steps: Sequence[float] = (-4.0, -1.0, 1.0, 4.0),
    ) -> None:
        if len(problem.processor_names) < 1:
            raise ValueError("the problem has no processors to map onto")
        self._problem = problem
        self._priority_choices = tuple(priority_choices)
        self._bias_steps = tuple(bias_steps)
        weights = list(_MOVE_WEIGHTS)
        if problem.bounds is not None:
            weights.append(("size", _SIZING_WEIGHT))
        self._kinds = [kind for kind, _ in weights]
        self._weights = [weight for _, weight in weights]

    # -- sizing sub-moves ----------------------------------------------------

    def _sizing_moves(self, candidate: Candidate) -> List[Move]:
        """Every legal add/remove move around a candidate, in a stable order."""
        bounds = self._problem.bounds
        if bounds is None or not candidate.platform:
            return []
        moves: List[Move] = []
        active_processors = set(candidate.platform_processors)
        active_buses = set(candidate.platform_buses)
        if len(active_processors) < bounds.max_processors:
            for name in self._problem.spare_processor_names:
                if name not in active_processors:
                    moves.append(Move("add_pe", (name,)))
                    break  # deterministic: always the first spare name
        if len(active_processors) > bounds.min_processors:
            occupied = set(candidate.assignment_dict.values())
            moves.extend(
                Move("remove_pe", (name,))
                for name in sorted(active_processors - occupied)
            )
        if len(active_buses) < bounds.max_buses:
            for name in self._problem.spare_bus_names:
                if name not in active_buses:
                    moves.append(Move("add_bus", (name,)))
                    break
        if len(active_buses) > bounds.min_buses:
            moves.extend(
                Move("remove_bus", (name,)) for name in sorted(active_buses)
            )
        return moves

    def _draw(self, candidate: Candidate, rng: random.Random) -> Optional[Move]:
        kind = rng.choices(self._kinds, weights=self._weights, k=1)[0]
        processes = self._problem.movable_processes
        processors = self._problem.processors_for(candidate)
        if kind == "remap" and len(processors) > 1:
            process = rng.choice(processes)
            targets = [pe for pe in processors if pe != candidate.pe_of(process)]
            return Move("remap", (process, rng.choice(targets)))
        if kind == "swap" and len(processes) > 1:
            first, second = rng.sample(processes, 2)
            if candidate.pe_of(first) != candidate.pe_of(second):
                return Move("swap", (first, second))
            return None
        if kind == "priority" and len(self._priority_choices) > 1:
            others = [
                name
                for name in self._priority_choices
                if name != candidate.priority_function
            ]
            return Move("priority", (rng.choice(others),))
        if kind == "bias":
            process = rng.choice(processes)
            return Move("bias", (process, rng.choice(self._bias_steps)))
        if kind == "size":
            legal = self._sizing_moves(candidate)
            if legal:
                return rng.choice(legal)
            return None
        return None

    def sample(
        self,
        candidate: Candidate,
        rng: random.Random,
        count: int,
        attempts_per_neighbor: int = 8,
    ) -> List[Tuple[Move, Candidate]]:
        """Draw up to ``count`` neighbours with pairwise-distinct fingerprints.

        Draws that produce no-ops (swapping two processes already co-located,
        remapping on a single-processor architecture, sizing a platform
        already at its bounds) or duplicate an earlier neighbour are retried a
        bounded number of times, so degenerate design spaces yield short
        batches instead of looping forever.
        """
        neighbors: List[Tuple[Move, Candidate]] = []
        seen = {candidate.fingerprint}
        budget = count * attempts_per_neighbor
        while len(neighbors) < count and budget > 0:
            budget -= 1
            move = self._draw(candidate, rng)
            if move is None:
                continue
            neighbor = move.apply(candidate)
            if neighbor.fingerprint in seen:
                continue
            seen.add(neighbor.fingerprint)
            neighbors.append((move, neighbor))
        return neighbors
