"""Neighbourhood moves over the mapping/priority/platform design space.

Four move kinds span the space every problem exposes:

* ``remap``    — move one process to a different (active) processor;
* ``swap``     — exchange the processors of two processes;
* ``priority`` — switch the list scheduler to another registered priority
  function;
* ``bias``     — perturb the dispatch priority of one process by a small
  additive step (ties the explorer into the scheduler's secondary degrees of
  freedom, not only the mapping).

When the problem enables communication mapping
(``ExplorationProblem(map_communications=True)``), two *communication* kinds
join, so the search can route messages instead of accepting the derived
first-bus pick:

* ``remap_comm`` — pin one active message to a different bus connecting its
  endpoints;
* ``swap_bus``   — exchange the buses of two active messages (each target
  bus must connect the other message's endpoints).

When the problem declares :class:`~repro.exploration.ArchitectureBounds`,
four *architecture-sizing* kinds join the neighbourhood, so the search can
resize the platform instead of only remapping onto it:

* ``add_pe`` / ``remove_pe`` — instantiate one more programmable processor
  (from the problem's deterministic spare-name pool) or retire an *empty*
  one, staying within the declared processor bounds;
* ``add_bus`` / ``remove_bus`` — likewise for buses.  Bus removal is
  *sizing-aware*: a bus whose removal would strand a communication (no other
  bus connects the endpoints) is never offered, and explicit bus pins on the
  removed bus are rerouted onto the least remaining connecting bus as part
  of the move, so removal produces reroutable candidates instead of
  trivially infeasible ones.

Moves are small frozen descriptions (kind + operands) applied functionally:
``move.apply(candidate)`` derives the neighbour without mutating the origin.
The :class:`NeighborhoodSampler` draws a batch of *distinct* neighbours from a
seeded ``random.Random``, which is the only source of randomness in a search —
the evaluation itself is deterministic, so a seed fully determines a run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .candidate import Candidate
from .problem import ExplorationProblem

DEFAULT_PRIORITY_CHOICES: Tuple[str, ...] = (
    "critical_path",
    "upward_rank",
    "static_order",
)

#: Relative draw frequency of the move kinds (mapping moves dominate: they
#: change the communication structure, which is where the big wins are).
_MOVE_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("remap", 0.45),
    ("swap", 0.25),
    ("bias", 0.2),
    ("priority", 0.1),
)

#: Extra draw weight of the architecture-sizing kinds, appended only when the
#: problem declares bounds, so fixed-architecture searches keep the exact
#: neighbourhood (and per-seed trajectories) they had before sizing existed.
_SIZING_WEIGHT: float = 0.25

#: Extra draw weight of the communication-mapping kinds, appended only when
#: the problem enables ``map_communications`` — problems that derive their
#: bus assignment keep the exact pre-mapping neighbourhood.
_COMM_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("remap_comm", 0.2),
    ("swap_bus", 0.1),
)


@dataclass(frozen=True)
class Move:
    """One neighbourhood move: a kind plus its operands."""

    kind: str
    operands: Tuple = ()

    def apply(self, candidate: Candidate) -> Candidate:
        """Derive the neighbour this move describes (the origin is untouched)."""
        if self.kind == "remap":
            process, pe_name = self.operands
            return candidate.reassigned(process, pe_name)
        if self.kind == "swap":
            first, second = self.operands
            return candidate.swapped(first, second)
        if self.kind == "priority":
            (name,) = self.operands
            return candidate.with_priority_function(name)
        if self.kind == "bias":
            process, delta = self.operands
            return candidate.with_bias(process, delta)
        if self.kind == "remap_comm":
            message, bus_name = self.operands
            return candidate.with_communication(message, bus_name)
        if self.kind == "swap_bus":
            (first_message, first_bus), (second_message, second_bus) = self.operands
            return candidate.with_communication(
                first_message, first_bus
            ).with_communication(second_message, second_bus)
        if self.kind == "add_pe":
            (name,) = self.operands
            return candidate.with_element(name, "programmable")
        if self.kind == "add_bus":
            (name,) = self.operands
            return candidate.with_element(name, "bus")
        if self.kind == "remove_pe":
            (name,) = self.operands
            return candidate.without_element(name)
        if self.kind == "remove_bus":
            name = self.operands[0]
            # Sizing-aware form: reroutes pin stranded messages onto a
            # remaining connecting bus.  The bare (name,) form stays valid.
            reroutes = self.operands[1] if len(self.operands) > 1 else ()
            shrunk = candidate.without_element(name)
            for message, bus_name in reroutes:
                shrunk = shrunk.with_communication(message, bus_name)
            return shrunk
        raise ValueError(f"unknown move kind {self.kind!r}")

    def describe(self) -> str:
        """Short human-readable form used in trajectories and reports."""
        if self.kind == "remap":
            process, pe_name = self.operands
            return f"remap {process} -> {pe_name}"
        if self.kind == "swap":
            first, second = self.operands
            return f"swap {first} <-> {second}"
        if self.kind == "priority":
            return f"priority -> {self.operands[0]}"
        if self.kind == "bias":
            process, delta = self.operands
            return f"bias {process} {delta:+g}"
        if self.kind == "remap_comm":
            message, bus_name = self.operands
            return f"comm {message} -> {bus_name}"
        if self.kind == "swap_bus":
            (first_message, _), (second_message, _) = self.operands
            return f"swap bus {first_message} <-> {second_message}"
        if self.kind in ("add_pe", "add_bus"):
            return f"add {self.operands[0]}"
        if self.kind == "remove_pe":
            return f"remove {self.operands[0]}"
        if self.kind == "remove_bus":
            reroutes = self.operands[1] if len(self.operands) > 1 else ()
            suffix = f" (+{len(reroutes)} reroutes)" if reroutes else ""
            return f"remove {self.operands[0]}{suffix}"
        return self.kind

    def __str__(self) -> str:
        return self.describe()


class NeighborhoodSampler:
    """Draws batches of distinct neighbour candidates around a design point."""

    def __init__(
        self,
        problem: ExplorationProblem,
        priority_choices: Sequence[str] = DEFAULT_PRIORITY_CHOICES,
        bias_steps: Sequence[float] = (-4.0, -1.0, 1.0, 4.0),
    ) -> None:
        if len(problem.processor_names) < 1:
            raise ValueError("the problem has no processors to map onto")
        self._problem = problem
        self._priority_choices = tuple(priority_choices)
        self._bias_steps = tuple(bias_steps)
        weights = list(_MOVE_WEIGHTS)
        if problem.map_communications:
            weights.extend(_COMM_WEIGHTS)
        if problem.bounds is not None:
            weights.append(("size", _SIZING_WEIGHT))
        self._kinds = [kind for kind, _ in weights]
        self._weights = [weight for _, weight in weights]

    # -- communication sub-moves ----------------------------------------------

    def _effective_bus(
        self, candidate: Candidate, message: str, connecting: Sequence[str]
    ) -> str:
        """The bus a message currently rides: its pin, or the derived default.

        The ``least_loaded`` policy depends on expansion order, so the
        least-index bus is used as the stand-in default either way — the
        point is only to avoid proposing a no-op pin.
        """
        pinned = candidate.communication_dict.get(message)
        if pinned is not None and pinned in connecting:
            return pinned
        return connecting[0]

    def _draw_remap_comm(
        self, candidate: Candidate, rng: random.Random
    ) -> Optional[Move]:
        active = self._problem.active_messages(candidate)
        if not active:
            return None
        message, src, dst = rng.choice(active)
        connecting = self._problem.connecting_buses(candidate, src, dst)
        if len(connecting) < 2:
            return None  # unconnectable or forced: nothing to remap
        current = self._effective_bus(candidate, message, connecting)
        targets = [bus_name for bus_name in connecting if bus_name != current]
        return Move("remap_comm", (message, rng.choice(targets)))

    def _draw_swap_bus(
        self, candidate: Candidate, rng: random.Random
    ) -> Optional[Move]:
        active = self._problem.active_messages(candidate)
        if len(active) < 2:
            return None
        (first, first_src, first_dst), (second, second_src, second_dst) = (
            rng.sample(active, 2)
        )
        first_buses = self._problem.connecting_buses(candidate, first_src, first_dst)
        second_buses = self._problem.connecting_buses(
            candidate, second_src, second_dst
        )
        if not first_buses or not second_buses:
            return None  # an unconnectable (infeasible) message: nothing to swap
        first_bus = self._effective_bus(candidate, first, first_buses)
        second_bus = self._effective_bus(candidate, second, second_buses)
        if first_bus == second_bus:
            return None
        if second_bus not in first_buses or first_bus not in second_buses:
            return None  # a swapped bus would not connect the other endpoints
        return Move(
            "swap_bus", ((first, second_bus), (second, first_bus))
        )

    # -- sizing sub-moves ----------------------------------------------------

    def _sizing_moves(self, candidate: Candidate) -> List[Move]:
        """Every legal add/remove move around a candidate, in a stable order."""
        bounds = self._problem.bounds
        if bounds is None or not candidate.platform:
            return []
        moves: List[Move] = []
        active_processors = set(candidate.platform_processors)
        active_buses = set(candidate.platform_buses)
        if len(active_processors) < bounds.max_processors:
            for name in self._problem.spare_processor_names:
                if name not in active_processors:
                    moves.append(Move("add_pe", (name,)))
                    break  # deterministic: always the first spare name
        if len(active_processors) > bounds.min_processors:
            occupied = set(candidate.assignment_dict.values())
            moves.extend(
                Move("remove_pe", (name,))
                for name in sorted(active_processors - occupied)
            )
        if len(active_buses) < bounds.max_buses:
            for name in self._problem.spare_bus_names:
                if name not in active_buses:
                    moves.append(Move("add_bus", (name,)))
                    break
        if len(active_buses) > bounds.min_buses:
            for name in sorted(active_buses):
                move = self._remove_bus_move(candidate, name)
                if move is not None:
                    moves.append(move)
        return moves

    def _remove_bus_move(
        self, candidate: Candidate, bus_name: str
    ) -> Optional[Move]:
        """A sizing-aware ``remove_bus``, or None when removal would strand.

        Every active message must keep at least one connecting bus after the
        removal; explicit pins on the removed bus are rerouted onto the least
        remaining connecting bus as part of the move.
        """
        pins = candidate.communication_dict
        reroutes: List[Tuple[str, str]] = []
        for message, src, dst in self._problem.active_messages(candidate):
            connecting = self._problem.connecting_buses(candidate, src, dst)
            remaining = [name for name in connecting if name != bus_name]
            if connecting and not remaining:
                return None  # this bus is the message's last connection
            if pins.get(message) == bus_name and remaining:
                reroutes.append((message, remaining[0]))
        if reroutes:
            return Move("remove_bus", (bus_name, tuple(reroutes)))
        return Move("remove_bus", (bus_name,))

    def _draw(self, candidate: Candidate, rng: random.Random) -> Optional[Move]:
        kind = rng.choices(self._kinds, weights=self._weights, k=1)[0]
        processes = self._problem.movable_processes
        processors = self._problem.processors_for(candidate)
        if kind == "remap" and len(processors) > 1:
            process = rng.choice(processes)
            targets = [pe for pe in processors if pe != candidate.pe_of(process)]
            return Move("remap", (process, rng.choice(targets)))
        if kind == "swap" and len(processes) > 1:
            first, second = rng.sample(processes, 2)
            if candidate.pe_of(first) != candidate.pe_of(second):
                return Move("swap", (first, second))
            return None
        if kind == "priority" and len(self._priority_choices) > 1:
            others = [
                name
                for name in self._priority_choices
                if name != candidate.priority_function
            ]
            return Move("priority", (rng.choice(others),))
        if kind == "bias":
            process = rng.choice(processes)
            return Move("bias", (process, rng.choice(self._bias_steps)))
        if kind == "remap_comm":
            return self._draw_remap_comm(candidate, rng)
        if kind == "swap_bus":
            return self._draw_swap_bus(candidate, rng)
        if kind == "size":
            legal = self._sizing_moves(candidate)
            if legal:
                return rng.choice(legal)
            return None
        return None

    def sample(
        self,
        candidate: Candidate,
        rng: random.Random,
        count: int,
        attempts_per_neighbor: int = 8,
    ) -> List[Tuple[Move, Candidate]]:
        """Draw up to ``count`` neighbours with pairwise-distinct fingerprints.

        Draws that produce no-ops (swapping two processes already co-located,
        remapping on a single-processor architecture, sizing a platform
        already at its bounds) or duplicate an earlier neighbour are retried a
        bounded number of times, so degenerate design spaces yield short
        batches instead of looping forever.
        """
        neighbors: List[Tuple[Move, Candidate]] = []
        seen = {candidate.fingerprint}
        budget = count * attempts_per_neighbor
        while len(neighbors) < count and budget > 0:
            budget -= 1
            move = self._draw(candidate, rng)
            if move is None:
                continue
            neighbor = move.apply(candidate)
            if neighbor.fingerprint in seen:
                continue
            seen.add(neighbor.fingerprint)
            neighbors.append((move, neighbor))
        return neighbors
