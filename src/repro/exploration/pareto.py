"""Non-dominated fronts over vector candidate costs.

The single-objective engines minimise one weighted scalar; real co-synthesis
trades the paper's worst-case delay against how fast the *other* scenarios
run, how evenly the processors are loaded and how much silicon the platform
costs.  This module provides the multi-objective machinery shared by the
genetic engine and the ``--pareto`` reporting path:

* :func:`dominates` / :func:`non_dominated_sort` / :func:`crowding_distances`
  — the NSGA-II primitives over objective vectors (all objectives minimised);
* :class:`ParetoFront` — an incrementally maintained set of mutually
  non-dominated design points keyed on the vector ``(delta_max,
  mean_path_delay, load_imbalance, architecture_cost, bus_imbalance)``
  (see :attr:`repro.exploration.CandidateEvaluation.objectives`).

A front only ever accepts feasible evaluations, drops every point a newcomer
dominates, and keeps its points sorted by objective vector (fingerprint as the
tie-break), so iterating a front is deterministic for a deterministic offer
stream — which is what makes per-seed front reproducibility testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from .candidate import Candidate
from .cost import CandidateEvaluation

#: Names of the objective-vector components, in vector order.  All objectives
#: are minimised.
OBJECTIVE_NAMES: Tuple[str, ...] = (
    "delta_max",
    "mean_path_delay",
    "load_imbalance",
    "architecture_cost",
    "bus_imbalance",
)

Vector = Tuple[float, ...]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when vector ``a`` Pareto-dominates ``b`` (minimisation).

    ``a`` dominates ``b`` when it is no worse in every objective and strictly
    better in at least one.  Equal vectors do not dominate each other.
    """
    if len(a) != len(b):
        raise ValueError(f"objective vectors differ in length: {len(a)} vs {len(b)}")
    not_worse = all(x <= y for x, y in zip(a, b))
    strictly_better = any(x < y for x, y in zip(a, b))
    return not_worse and strictly_better


def non_dominated_sort(vectors: Sequence[Sequence[float]]) -> List[List[int]]:
    """Partition vector indices into fronts (NSGA-II fast non-dominated sort).

    Returns a list of fronts; ``fronts[0]`` holds the indices of the vectors
    nothing dominates, ``fronts[1]`` the vectors only dominated by front 0,
    and so on.  Within each front, indices keep their input order, so the sort
    is deterministic for a deterministic input sequence.
    """
    n = len(vectors)
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    for i in range(n):
        for j in range(i + 1, n):
            if dominates(vectors[i], vectors[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif dominates(vectors[j], vectors[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
    fronts: List[List[int]] = []
    current = [i for i in range(n) if domination_count[i] == 0]
    while current:
        fronts.append(current)
        following: List[int] = []
        for i in current:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    following.append(j)
        current = sorted(following)
    return fronts


def crowding_distances(vectors: Sequence[Sequence[float]]) -> List[float]:
    """NSGA-II crowding distance of each vector within one front.

    Boundary points of every objective get infinite distance; interior points
    accumulate the normalised gap between their neighbours.  Larger values
    mean less crowded, i.e. more valuable for diversity-preserving selection.
    """
    n = len(vectors)
    if n == 0:
        return []
    if n <= 2:
        return [float("inf")] * n
    distances = [0.0] * n
    objectives = len(vectors[0])
    for axis in range(objectives):
        order = sorted(range(n), key=lambda i: (vectors[i][axis], i))
        low = vectors[order[0]][axis]
        high = vectors[order[-1]][axis]
        distances[order[0]] = distances[order[-1]] = float("inf")
        span = high - low
        if span <= 0:
            continue
        for position in range(1, n - 1):
            index = order[position]
            if distances[index] == float("inf"):
                continue
            previous = vectors[order[position - 1]][axis]
            following = vectors[order[position + 1]][axis]
            distances[index] += (following - previous) / span
    return distances


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated design point: the candidate and its evaluation."""

    candidate: Candidate
    evaluation: CandidateEvaluation

    @property
    def objectives(self) -> Vector:
        """The minimised objective vector (see :data:`OBJECTIVE_NAMES`)."""
        return self.evaluation.objectives


class ParetoFront:
    """An incrementally maintained set of mutually non-dominated points.

    Offer every evaluation a search produces; the front keeps the feasible,
    non-dominated subset.  Invariants (asserted by the test suite):

    * no point of the front dominates another;
    * every accepted point evicts the points it dominates;
    * duplicate objective vectors keep the first-offered candidate, so a
      deterministic offer stream yields a deterministic front.
    """

    def __init__(self) -> None:
        self._points: List[ParetoPoint] = []
        self._offered = 0
        self._accepted = 0

    # -- growth --------------------------------------------------------------

    def offer(self, candidate: Candidate, evaluation: CandidateEvaluation) -> bool:
        """Consider one design point; return True when the front accepted it."""
        self._offered += 1
        if not evaluation.feasible:
            return False
        vector = evaluation.objectives
        for point in self._points:
            existing = point.objectives
            if existing == vector or dominates(existing, vector):
                return False
        self._points = [
            point for point in self._points if not dominates(vector, point.objectives)
        ]
        self._points.append(ParetoPoint(candidate, evaluation))
        self._points.sort(key=lambda p: (p.objectives, p.candidate.fingerprint))
        self._accepted += 1
        return True

    def offer_many(
        self,
        candidates: Sequence[Candidate],
        evaluations: Sequence[CandidateEvaluation],
    ) -> int:
        """Offer a batch in order; return how many points were accepted."""
        return sum(
            1
            for candidate, evaluation in zip(candidates, evaluations)
            if self.offer(candidate, evaluation)
        )

    def snapshot(self) -> "ParetoFront":
        """An independent copy of the front's current state.

        Engines attach a snapshot to their result so that later runs sharing
        the same live explorer front cannot retroactively change what an
        earlier run reported.
        """
        copy = ParetoFront()
        copy._points = list(self._points)
        copy._offered = self._offered
        copy._accepted = self._accepted
        return copy

    # -- views ---------------------------------------------------------------

    @property
    def points(self) -> Tuple[ParetoPoint, ...]:
        """The non-dominated points, sorted by objective vector."""
        return tuple(self._points)

    @property
    def offered(self) -> int:
        """How many design points were offered over the front's lifetime."""
        return self._offered

    @property
    def accepted(self) -> int:
        """How many offers were (at least temporarily) accepted."""
        return self._accepted

    def vectors(self) -> Tuple[Vector, ...]:
        """The objective vectors of the current points, in front order."""
        return tuple(point.objectives for point in self._points)

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[ParetoPoint]:
        return iter(self._points)

    def __repr__(self) -> str:
        return f"ParetoFront({len(self._points)} points, {self._offered} offered)"
