"""Parallel candidate evaluation on top of ``concurrent.futures``.

Scoring a candidate is an independent, pure computation (expand + schedule +
merge), so a neighbourhood batch parallelises perfectly.  The pool ships the
problem to each worker **once** — the repository's JSON system-description
payload, pickled *once* in the coordinator into a shared bytes blob that every
worker spawn reuses and the worker initialiser rebuilds — and then streams
small pre-pickled candidate units; evaluations come back as flat dataclasses
of floats.  No scheduler state, graph object or condition-universe bitmask
ever crosses the process boundary, so worker-side bit interning stays
internally consistent.  Because the coordinator serialises payloads itself,
it knows exactly how many bytes cross the boundary:
:attr:`EvaluationPool.payload_bytes_shipped` is a cumulative counter feeding
the ``repro-cpg explore --json`` batch-stats block.

Modes
-----
``process``
    One ``ProcessPoolExecutor`` worker per core (default on multi-core
    hosts).  Chunked submission amortises IPC per batch.
``thread``
    A ``ThreadPoolExecutor``; the evaluation is pure Python so threads do not
    scale, but the mode is useful to exercise the batching machinery without
    process start-up cost (tests, small batches).
``serial``
    In-process loop (default on single-core hosts; also the fallback when a
    batch is smaller than two candidates).

Resilience
----------
Pooled evaluation survives worker faults (see
:mod:`repro.exploration.resilience`).  Failures inside a worker come back as
marshalled exceptions and are retried under the :class:`RetryPolicy`; worker
*death* (``BrokenProcessPool``) tears the executor down, respawns it and
resubmits every unfinished unit; per-unit timeouts catch hung workers.  A
candidate that keeps failing attributably is *quarantined* — scored with the
infeasible sentinel instead of killing the run — and when respawned pools
keep dying without making progress, the pool degrades to trusted in-process
evaluation.  Because evaluation is pure and fault decisions are hashed from
``(seed, fingerprint, attempt)``, none of this changes any result: batches
come back in submission order with bit-identical evaluations, faults or not.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .candidate import Candidate
from .cost import (
    CandidateEvaluation,
    CostWeights,
    StageCache,
    StageStats,
    evaluate_candidate,
)
from .problem import ExplorationProblem
from .resilience import (
    FaultInjector,
    InjectedFault,
    ResilienceStats,
    RetryPolicy,
    WorkerInitializationError,
    quarantined_evaluation,
)

# Worker-process globals, set once per worker by _initialise_worker.
_WORKER_PROBLEM: Optional[ExplorationProblem] = None
_WORKER_WEIGHTS: Optional[CostWeights] = None
# Each worker keeps its own stage cache (expansion + per-path schedules, see
# cost.StageCache): stages are pure, so which worker a candidate lands on
# changes only how often stages recompute, never the evaluations — results
# stay submission-order deterministic whatever the chunking does.
_WORKER_STAGE_CACHE: Optional[StageCache] = None
_WORKER_INJECTOR: Optional[FaultInjector] = None


def _initialise_worker(
    payload: Any,
    weights: CostWeights,
    stage_caching: bool = True,
    injector: Optional[FaultInjector] = None,
) -> None:
    global _WORKER_PROBLEM, _WORKER_WEIGHTS, _WORKER_STAGE_CACHE, _WORKER_INJECTOR
    if isinstance(payload, (bytes, bytearray, memoryview)):
        # The coordinator ships the payload pickled once as a shared blob;
        # each worker unpickles its copy exactly once, here.
        payload = pickle.loads(payload)
    if injector is not None and injector.fail_worker_init:
        raise WorkerInitializationError(
            f"injected worker-initialisation failure for problem "
            f"{payload.get('name')!r}"
        )
    _WORKER_PROBLEM = ExplorationProblem.from_payload(payload)
    _WORKER_WEIGHTS = weights
    _WORKER_STAGE_CACHE = StageCache() if stage_caching else None
    _WORKER_INJECTOR = injector


def _worker_probe() -> bool:
    """Cheap liveness check: did the initialiser complete in this worker?"""
    return _WORKER_PROBLEM is not None


def _evaluate_in_worker(candidate: Candidate) -> CandidateEvaluation:
    assert _WORKER_PROBLEM is not None and _WORKER_WEIGHTS is not None
    return evaluate_candidate(
        _WORKER_PROBLEM,
        candidate,
        _WORKER_WEIGHTS,
        stage_cache=_WORKER_STAGE_CACHE,
    )


def _evaluate_unit_in_worker(
    unit: Sequence[Tuple[Candidate, int]]
) -> List[CandidateEvaluation]:
    """Score one resubmittable unit of (candidate, attempt) pairs."""
    results: List[CandidateEvaluation] = []
    for candidate, attempt in unit:
        if _WORKER_INJECTOR is not None:
            _WORKER_INJECTOR.inject(candidate.fingerprint, attempt, in_worker=True)
        results.append(_evaluate_in_worker(candidate))
    return results


def _evaluate_unit_blob(blob: bytes) -> List[CandidateEvaluation]:
    """Score a unit shipped as a pre-pickled blob (process mode).

    The coordinator pickles the unit itself (so the exact byte count is
    known and accounted) and ships the blob; ``concurrent.futures`` then
    only re-serialises a bytes object — a memcpy, not a re-walk of the
    candidate structures.
    """
    return _evaluate_unit_in_worker(pickle.loads(blob))


def default_worker_count() -> int:
    """Worker count used when none is requested: one per available core."""
    return max(1, os.cpu_count() or 1)


@dataclass
class _ResilienceCounters:
    """Mutable tally behind the frozen :class:`ResilienceStats` snapshots."""

    retries: int = 0
    timeouts: int = 0
    worker_restarts: int = 0
    quarantined: int = 0
    injected: int = 0
    integrity_evictions: int = 0
    degraded: bool = False

    def snapshot(self) -> ResilienceStats:
        return ResilienceStats(
            retries=self.retries,
            timeouts=self.timeouts,
            worker_restarts=self.worker_restarts,
            quarantined=self.quarantined,
            injected=self.injected,
            integrity_evictions=self.integrity_evictions,
            degraded=self.degraded,
        )


class EvaluationPool:
    """Batched scoring of candidates, optionally across worker processes.

    The pool is lazy: no executor exists until the first batch that can use
    one, and ``close()`` (or use as a context manager) tears it down.  Results
    are always returned in submission order, so search engines stay
    deterministic regardless of worker scheduling.

    ``retry`` and ``fault_injector`` arm the resilience layer (see the module
    docstring).  Pooled (process/thread) execution always detects broken
    executors and respawns them; an explicit retry policy additionally bounds
    per-unit evaluation time, and a fault injector exercises the whole
    machinery deterministically.  Serial mode stays a plain zero-overhead
    loop unless armed.
    """

    def __init__(
        self,
        problem: ExplorationProblem,
        weights: CostWeights = CostWeights(),
        workers: Optional[int] = None,
        mode: str = "auto",
        stage_caching: bool = True,
        retry: Optional[RetryPolicy] = None,
        fault_injector: Optional[FaultInjector] = None,
        tracer=None,
        metrics=None,
        stage_cache: Optional[StageCache] = None,
    ) -> None:
        if mode not in ("auto", "serial", "thread", "process"):
            raise ValueError(
                f"unknown pool mode {mode!r}; choose auto, serial, thread or process"
            )
        self._problem = problem
        self._weights = weights
        self._workers = workers if workers is not None else default_worker_count()
        if mode == "auto":
            mode = "process" if self._workers > 1 else "serial"
        self._mode = mode
        self._executor: Optional[Executor] = None
        # Incremental evaluation (cost.StageCache).  Serial and thread modes
        # share this in-process cache (stages are pure, so thread races at
        # worst recompute a stage); process mode ships the flag to the worker
        # initialiser instead, giving each worker its own cache — and keeps
        # no in-process cache until the pool degrades to in-process
        # evaluation, so ``stage_stats`` never hides real caching activity.
        self._stage_caching = bool(stage_caching)
        # An *injected* cache (repro-cpg serve's shared cross-request cache,
        # possibly bounded) replaces the pool-private one.  Process mode
        # cannot honour it — worker caches live in other processes — so the
        # mismatch is an error rather than a silent private cache.
        if stage_cache is not None:
            if self._mode == "process":
                raise ValueError(
                    "an injected stage_cache requires serial or thread mode; "
                    "process workers keep per-process caches"
                )
            self._stage_caching = True
            self._stage_cache: Optional[StageCache] = stage_cache
        else:
            self._stage_cache = (
                StageCache()
                if self._stage_caching and self._mode != "process"
                else None
            )
        self._armed = retry is not None or fault_injector is not None
        self._retry = retry if retry is not None else RetryPolicy()
        self._injector = fault_injector
        # Observability (repro.observability): resilience decisions become
        # first-class trace events and pool.* metrics.  Process workers stay
        # uninstrumented — their spans would live in another process; the
        # coordinator-side unit latency / queue depth still tell the story.
        self._tracer = tracer
        self._metrics = metrics
        self._counters = _ResilienceCounters()
        self._degraded = False
        self._payload: Optional[Dict[str, Any]] = None
        self._payload_validated = False
        # Pickled-once problem payload (process mode): every worker spawn
        # reuses this blob instead of re-serialising the nested payload dict.
        self._payload_blob: Optional[bytes] = None
        self._payload_bytes_shipped = 0

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def weights(self) -> CostWeights:
        return self._weights

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def retry(self) -> RetryPolicy:
        return self._retry

    @property
    def degraded(self) -> bool:
        """Whether the pool fell back to in-process evaluation for good."""
        return self._degraded

    @property
    def payload_bytes_shipped(self) -> int:
        """Cumulative bytes serialised across the process boundary.

        Counts the pickled-once problem blob (once per worker, again after a
        restart respawns the pool) plus every pre-pickled candidate unit.
        Serial and thread modes ship nothing, so the counter stays 0 — the
        batch-stats block in ``explore --json`` reports payload traffic only
        where it actually exists.
        """
        return self._payload_bytes_shipped

    @property
    def resilience_stats(self) -> ResilienceStats:
        """Fault/retry counters accumulated over the pool's lifetime."""
        return self._counters.snapshot()

    def _resilience(self, event: str, counter: str, **attrs) -> None:
        """Record one resilience decision as a trace event + pool counter."""
        if self._tracer is not None:
            self._tracer.event(event, **attrs)
        if self._metrics is not None:
            self._metrics.count(counter)

    @property
    def stage_stats(self) -> Optional[StageStats]:
        """Stage-cache counters of the in-process cache, when one exists.

        Serial and thread modes report their shared cache.  Process mode
        returns None until the pool degrades to in-process evaluation: each
        worker owns a private cache in its own process and the counters are
        deliberately not shipped back per batch.
        """
        if self._stage_cache is None:
            return None
        return self._stage_cache.stats

    # -- lifecycle -----------------------------------------------------------

    def _validated_payload(self) -> Dict[str, Any]:
        """The worker payload, proven rebuildable *before* any worker starts.

        A payload the workers cannot rebuild would otherwise surface as an
        opaque ``BrokenProcessPool`` after every worker died trying; failing
        here names the problem instead.
        """
        if self._payload is None:
            self._payload = self._problem.to_payload()
        if not self._payload_validated:
            try:
                ExplorationProblem.from_payload(self._payload)
            except Exception as error:
                raise WorkerInitializationError(
                    f"problem payload {self._problem.name!r} cannot be rebuilt "
                    f"by evaluation workers: {error}"
                ) from error
            self._payload_validated = True
        return self._payload

    def _validated_payload_blob(self) -> bytes:
        """The worker payload pickled exactly once, shared by every spawn."""
        if self._payload_blob is None:
            self._payload_blob = pickle.dumps(
                self._validated_payload(), protocol=pickle.HIGHEST_PROTOCOL
            )
        return self._payload_blob

    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            if self._mode == "process":
                blob = self._validated_payload_blob()
                executor: Executor = ProcessPoolExecutor(
                    max_workers=self._workers,
                    initializer=_initialise_worker,
                    initargs=(
                        blob,
                        self._weights,
                        self._stage_caching,
                        self._injector,
                    ),
                )
                # Each spawned worker receives its own copy of the initargs
                # blob across the process boundary.
                self._payload_bytes_shipped += len(blob) * self._workers
                if self._metrics is not None:
                    self._metrics.count(
                        "pool.payload_bytes", len(blob) * self._workers
                    )
                probe = executor.submit(_worker_probe)
                try:
                    probe.result(timeout=self._retry.startup_timeout)
                except BrokenExecutor as error:
                    executor.shutdown(wait=False, cancel_futures=True)
                    raise WorkerInitializationError(
                        f"worker initialisation failed for problem "
                        f"{self._problem.name!r} ({self._workers} process "
                        f"worker(s)): {error}"
                    ) from error
                except TimeoutError as error:
                    executor.shutdown(wait=False, cancel_futures=True)
                    raise WorkerInitializationError(
                        f"worker initialisation for problem {self._problem.name!r} "
                        f"timed out after {self._retry.startup_timeout:g}s"
                    ) from error
                self._executor = executor
            else:
                self._executor = ThreadPoolExecutor(max_workers=self._workers)
        return self._executor

    def _restart_executor(self) -> None:
        """Tear down a broken/hung executor so the next round respawns it."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self._counters.worker_restarts += 1
        self._resilience(
            "resilience.worker_restart", "pool.worker_restarts", mode=self._mode
        )
        if self._stage_cache is not None:
            # An abandoned hung thread may still be writing into the shared
            # in-process cache; verify the survivors before reusing them.
            self._counters.integrity_evictions += self._stage_cache.check_integrity()

    def _degrade(self) -> None:
        """Give up on pooled execution; evaluate in-process from now on."""
        self._degraded = True
        self._counters.degraded = True
        self._resilience("resilience.degrade", "pool.degraded", mode=self._mode)
        if self._stage_cache is not None:
            self._counters.integrity_evictions += self._stage_cache.check_integrity()
        elif self._stage_caching:
            self._stage_cache = StageCache()

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "EvaluationPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- scoring -------------------------------------------------------------

    def evaluate(self, candidates: Sequence[Candidate]) -> List[CandidateEvaluation]:
        """Score a batch, in submission order."""
        if self._degraded:
            # Trusted in-process evaluation: the injector simulates *worker*
            # faults, and the workers are gone for good.
            return [self._evaluate_one(candidate) for candidate in candidates]
        if self._mode == "serial" or (len(candidates) < 2 and not self._armed):
            return self._evaluate_serial(candidates)
        return self._evaluate_pooled(list(candidates))

    def evaluate_batches(
        self, batches: Sequence[Sequence[Candidate]]
    ) -> List[List[CandidateEvaluation]]:
        """Score several requests' batches as one submission round.

        The service front-end coalesces whatever requests are waiting into
        one call, so small concurrent submissions amortise executor overhead
        the way one big neighbourhood batch does.  Evaluation is pure and
        :meth:`evaluate` returns submission order, so flattening the batches,
        scoring once and splitting the results back is exactly equivalent to
        evaluating each batch alone — batching is a throughput knob, never a
        semantics change.
        """
        flat: List[Candidate] = []
        for batch in batches:
            flat.extend(batch)
        evaluations = self.evaluate(flat)
        split: List[List[CandidateEvaluation]] = []
        cursor = 0
        for batch in batches:
            split.append(evaluations[cursor:cursor + len(batch)])
            cursor += len(batch)
        return split

    def _evaluate_one(self, candidate: Candidate) -> CandidateEvaluation:
        return evaluate_candidate(
            self._problem,
            candidate,
            self._weights,
            stage_cache=self._stage_cache,
            tracer=self._tracer,
            metrics=self._metrics,
        )

    def _evaluate_serial(
        self, candidates: Sequence[Candidate]
    ) -> List[CandidateEvaluation]:
        if not self._armed:
            return [self._evaluate_one(candidate) for candidate in candidates]
        results: List[CandidateEvaluation] = []
        for candidate in candidates:
            attempt, failures = 0, 0
            error = ""
            while True:
                try:
                    if self._injector is not None:
                        # In-process, 'hang' and 'exit' degrade to a raised
                        # fault (see FaultInjector.inject): the coordinator
                        # must survive its own evaluations.
                        self._injector.inject(
                            candidate.fingerprint, attempt, in_worker=False
                        )
                    results.append(self._evaluate_one(candidate))
                    break
                except Exception as exc:
                    if isinstance(exc, InjectedFault):
                        self._counters.injected += 1
                        self._resilience(
                            "resilience.fault_injected", "pool.injected",
                            fingerprint=candidate.fingerprint, attempt=attempt,
                        )
                    attempt += 1
                    failures += 1
                    error = str(exc)
                    if failures >= self._retry.max_attempts:
                        results.append(
                            quarantined_evaluation(
                                candidate.fingerprint, failures, error
                            )
                        )
                        self._counters.quarantined += 1
                        self._resilience(
                            "resilience.quarantine", "pool.quarantined",
                            fingerprint=candidate.fingerprint, failures=failures,
                        )
                        break
                    self._counters.retries += 1
                    self._resilience(
                        "resilience.retry", "pool.retries",
                        fingerprint=candidate.fingerprint, attempt=attempt,
                    )
                    delay = self._retry.delay_for(failures, candidate.fingerprint)
                    if delay > 0:
                        time.sleep(delay)
        return results

    def _evaluate_pooled(
        self, candidates: List[Candidate]
    ) -> List[CandidateEvaluation]:
        """The resilient unit-based submission path (process and thread modes).

        Candidates are grouped into *units* (index tuples).  Each round
        submits every outstanding unit, harvests results, and classifies
        failures:

        * a marshalled exception or a per-unit timeout is *attributable* —
          singleton units count a failure toward quarantine, larger units
          split into singletons so one poison candidate cannot take its
          chunk-mates down with it;
        * a broken executor is *collateral* — unfinished units resubmit with
          bumped attempt numbers (so injected 'exit' faults move to a fresh
          draw) but no candidate is blamed.

        Restart budget: ``RetryPolicy.max_pool_restarts`` consecutive
        restarts without harvesting a single unit degrade the pool to
        in-process evaluation.
        """
        total = len(candidates)
        results: List[Optional[CandidateEvaluation]] = [None] * total
        attempts = [0] * total
        failures = [0] * total
        chunk = max(1, total // (self._workers * 4))
        pending: List[Tuple[int, ...]] = [
            tuple(range(start, min(start + chunk, total)))
            for start in range(0, total, chunk)
        ]
        restarts_without_progress = 0

        while pending:
            if self._degraded:
                for unit in pending:
                    for index in unit:
                        if results[index] is None:
                            results[index] = self._evaluate_one(candidates[index])
                break

            executor = self._ensure_executor()
            if self._metrics is not None:
                # High-water gauges (merges keep the max across snapshots).
                self._metrics.gauge("pool.queue_depth", float(len(pending)))
                self._metrics.gauge("pool.workers", float(self._workers))
            round_started = (
                time.perf_counter() if self._metrics is not None else 0.0
            )
            submitted: List[Tuple[Future, Tuple[int, ...]]] = []
            unsubmitted: List[Tuple[int, ...]] = []
            broken = False
            for position, unit in enumerate(pending):
                try:
                    future = executor.submit(
                        *self._unit_task(candidates, attempts, unit)
                    )
                except BrokenExecutor:
                    # Workers died while the round was still being submitted;
                    # the rest of the round is collateral.
                    broken = True
                    unsubmitted = pending[position:]
                    break
                submitted.append((future, unit))
            pending = []
            for unit in unsubmitted:
                for index in unit:
                    attempts[index] += 1
                pending.append(unit)
            retry_round: List[Tuple[int, ...]] = []
            progress = False

            for future, unit in submitted:
                if broken:
                    # The executor already died this round; collect whatever
                    # finished, treat the rest as collateral.
                    if future.done():
                        try:
                            self._record(results, unit, future.result())
                            progress = True
                            continue
                        except Exception:
                            pass
                    for index in unit:
                        attempts[index] += 1
                    pending.append(unit)
                    continue
                try:
                    values = future.result(timeout=self._unit_timeout(unit))
                    self._record(results, unit, values)
                    progress = True
                    if self._metrics is not None:
                        # Coordinator-side submit-to-harvest latency per unit.
                        self._metrics.observe(
                            "pool.unit.seconds",
                            time.perf_counter() - round_started,
                        )
                except TimeoutError:
                    self._counters.timeouts += 1
                    self._resilience(
                        "resilience.timeout", "pool.timeouts", unit=len(unit)
                    )
                    broken = True  # a worker is stuck; tear the pool down
                    self._attribute_failure(
                        unit, attempts, failures, results, candidates,
                        pending, "evaluation timed out",
                    )
                except BrokenExecutor:
                    broken = True
                    for index in unit:
                        attempts[index] += 1
                    pending.append(unit)
                except Exception as error:
                    # Marshalled worker exception: injected crash or a
                    # genuinely poisoned candidate.
                    self._attribute_failure(
                        unit, attempts, failures, results, candidates,
                        retry_round, str(error),
                    )

            pending.extend(retry_round)
            if broken:
                self._restart_executor()
                restarts_without_progress = (
                    0 if progress else restarts_without_progress + 1
                )
                if restarts_without_progress > self._retry.max_pool_restarts:
                    self._degrade()
            elif retry_round:
                # Plain retries with a healthy pool: deterministic backoff
                # before the next round (the longest delay of the round).
                delay = max(
                    self._retry.delay_for(
                        max(1, failures[unit[0]]),
                        candidates[unit[0]].fingerprint,
                    )
                    for unit in retry_round
                )
                if delay > 0:
                    time.sleep(delay)

        return [evaluation for evaluation in results if evaluation is not None]

    def _unit_task(
        self,
        candidates: List[Candidate],
        attempts: List[int],
        unit: Tuple[int, ...],
    ):
        """The callable + argument submitted for one unit, mode-specific."""
        payload = [(candidates[index], attempts[index]) for index in unit]
        if self._mode == "process":
            # Pickle the unit here, once, so the executor only ships bytes
            # and the exact payload traffic is known for batch stats.
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            self._payload_bytes_shipped += len(blob)
            if self._metrics is not None:
                self._metrics.count("pool.payload_bytes", len(blob))
            return (_evaluate_unit_blob, blob)
        return (self._evaluate_unit_in_thread, payload)

    def _evaluate_unit_in_thread(
        self, unit: Sequence[Tuple[Candidate, int]]
    ) -> List[CandidateEvaluation]:
        results: List[CandidateEvaluation] = []
        for candidate, attempt in unit:
            if self._injector is not None:
                fault = self._injector.fault_for(candidate.fingerprint, attempt)
                if fault is not None:
                    self._counters.injected += 1
                    self._resilience(
                        "resilience.fault_injected", "pool.injected",
                        fingerprint=candidate.fingerprint,
                        attempt=attempt, fault=fault,
                    )
                if fault == "hang":
                    time.sleep(self._injector.hang_seconds)
                elif fault is not None:
                    self._injector.inject(
                        candidate.fingerprint, attempt, in_worker=False
                    )
            results.append(self._evaluate_one(candidate))
        return results

    def _unit_timeout(self, unit: Tuple[int, ...]) -> Optional[float]:
        if self._retry.timeout is None:
            return None
        return self._retry.timeout * len(unit)

    @staticmethod
    def _record(
        results: List[Optional[CandidateEvaluation]],
        unit: Tuple[int, ...],
        values: Sequence[CandidateEvaluation],
    ) -> None:
        for index, evaluation in zip(unit, values):
            results[index] = evaluation

    def _attribute_failure(
        self,
        unit: Tuple[int, ...],
        attempts: List[int],
        failures: List[int],
        results: List[Optional[CandidateEvaluation]],
        candidates: List[Candidate],
        resubmit: List[Tuple[int, ...]],
        error: str,
    ) -> None:
        """Handle an attributable unit failure: retry, split or quarantine."""
        for index in unit:
            attempts[index] += 1
        if len(unit) > 1:
            # Isolate the poison: retry members individually.
            self._counters.retries += 1
            self._resilience("resilience.retry", "pool.retries", unit=len(unit))
            for index in unit:
                resubmit.append((index,))
            return
        index = unit[0]
        failures[index] += 1
        if failures[index] >= self._retry.max_attempts:
            results[index] = quarantined_evaluation(
                candidates[index].fingerprint, failures[index], error
            )
            self._counters.quarantined += 1
            self._resilience(
                "resilience.quarantine", "pool.quarantined",
                fingerprint=candidates[index].fingerprint,
                failures=failures[index],
            )
        else:
            self._counters.retries += 1
            self._resilience(
                "resilience.retry", "pool.retries",
                fingerprint=candidates[index].fingerprint,
            )
            resubmit.append(unit)
