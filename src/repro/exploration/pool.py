"""Parallel candidate evaluation on top of ``concurrent.futures``.

Scoring a candidate is an independent, pure computation (expand + schedule +
merge), so a neighbourhood batch parallelises perfectly.  The pool ships the
problem to each worker **once** — as the repository's JSON system-description
payload, rebuilt by the worker initialiser — and then streams small candidate
tuples; evaluations come back as flat dataclasses of floats.  No scheduler
state, graph object or condition-universe bitmask ever crosses the process
boundary, so worker-side bit interning stays internally consistent.

Modes
-----
``process``
    One ``ProcessPoolExecutor`` worker per core (default on multi-core
    hosts).  Chunked submission amortises IPC per batch.
``thread``
    A ``ThreadPoolExecutor``; the evaluation is pure Python so threads do not
    scale, but the mode is useful to exercise the batching machinery without
    process start-up cost (tests, small batches).
``serial``
    In-process loop (default on single-core hosts; also the fallback when a
    batch is smaller than two candidates).
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence

from .candidate import Candidate
from .cost import (
    CandidateEvaluation,
    CostWeights,
    StageCache,
    StageStats,
    evaluate_candidate,
)
from .problem import ExplorationProblem

# Worker-process globals, set once per worker by _initialise_worker.
_WORKER_PROBLEM: Optional[ExplorationProblem] = None
_WORKER_WEIGHTS: Optional[CostWeights] = None
# Each worker keeps its own stage cache (expansion + per-path schedules, see
# cost.StageCache): stages are pure, so which worker a candidate lands on
# changes only how often stages recompute, never the evaluations — results
# stay submission-order deterministic whatever the chunking does.
_WORKER_STAGE_CACHE: Optional[StageCache] = None


def _initialise_worker(
    payload: Dict[str, Any], weights: CostWeights, stage_caching: bool = True
) -> None:
    global _WORKER_PROBLEM, _WORKER_WEIGHTS, _WORKER_STAGE_CACHE
    _WORKER_PROBLEM = ExplorationProblem.from_payload(payload)
    _WORKER_WEIGHTS = weights
    _WORKER_STAGE_CACHE = StageCache() if stage_caching else None


def _evaluate_in_worker(candidate: Candidate) -> CandidateEvaluation:
    assert _WORKER_PROBLEM is not None and _WORKER_WEIGHTS is not None
    return evaluate_candidate(
        _WORKER_PROBLEM,
        candidate,
        _WORKER_WEIGHTS,
        stage_cache=_WORKER_STAGE_CACHE,
    )


def default_worker_count() -> int:
    """Worker count used when none is requested: one per available core."""
    return max(1, os.cpu_count() or 1)


class EvaluationPool:
    """Batched scoring of candidates, optionally across worker processes.

    The pool is lazy: no executor exists until the first batch that can use
    one, and ``close()`` (or use as a context manager) tears it down.  Results
    are always returned in submission order, so search engines stay
    deterministic regardless of worker scheduling.
    """

    def __init__(
        self,
        problem: ExplorationProblem,
        weights: CostWeights = CostWeights(),
        workers: Optional[int] = None,
        mode: str = "auto",
        stage_caching: bool = True,
    ) -> None:
        if mode not in ("auto", "serial", "thread", "process"):
            raise ValueError(
                f"unknown pool mode {mode!r}; choose auto, serial, thread or process"
            )
        self._problem = problem
        self._weights = weights
        self._workers = workers if workers is not None else default_worker_count()
        if mode == "auto":
            mode = "process" if self._workers > 1 else "serial"
        self._mode = mode
        self._executor: Optional[Executor] = None
        # Incremental evaluation (cost.StageCache).  Serial and thread modes
        # share this in-process cache (stages are pure, so thread races at
        # worst recompute a stage); process mode ships the flag to the worker
        # initialiser instead, giving each worker its own cache — and keeps
        # no in-process cache at all, so ``stage_stats`` (None in that mode)
        # never hides real caching activity.
        self._stage_caching = bool(stage_caching)
        self._stage_cache: Optional[StageCache] = (
            StageCache() if self._stage_caching and self._mode != "process" else None
        )

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def weights(self) -> CostWeights:
        return self._weights

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def stage_stats(self) -> Optional[StageStats]:
        """Stage-cache counters of the in-process cache, when one exists.

        Serial and thread modes report their shared cache.  Process mode
        returns None: each worker owns a private cache in its own process,
        the counters are deliberately not shipped back per batch, and no
        in-process cache exists (small batches fall back to uncached serial
        evaluation).
        """
        if self._stage_cache is None:
            return None
        return self._stage_cache.stats

    # -- lifecycle -----------------------------------------------------------

    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            if self._mode == "process":
                self._executor = ProcessPoolExecutor(
                    max_workers=self._workers,
                    initializer=_initialise_worker,
                    initargs=(
                        self._problem.to_payload(),
                        self._weights,
                        self._stage_caching,
                    ),
                )
            else:
                self._executor = ThreadPoolExecutor(max_workers=self._workers)
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "EvaluationPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- scoring -------------------------------------------------------------

    def evaluate(self, candidates: Sequence[Candidate]) -> List[CandidateEvaluation]:
        """Score a batch, in submission order."""
        if self._mode == "serial" or len(candidates) < 2:
            return [
                evaluate_candidate(
                    self._problem,
                    candidate,
                    self._weights,
                    stage_cache=self._stage_cache,
                )
                for candidate in candidates
            ]
        executor = self._ensure_executor()
        if self._mode == "process":
            chunksize = max(1, len(candidates) // (self._workers * 4))
            return list(
                executor.map(_evaluate_in_worker, candidates, chunksize=chunksize)
            )
        return list(
            executor.map(
                lambda candidate: evaluate_candidate(
                    self._problem,
                    candidate,
                    self._weights,
                    stage_cache=self._stage_cache,
                ),
                candidates,
            )
        )
