"""Trace of the schedule-merging algorithm (the decision tree of Fig. 2).

The table-generation algorithm walks a binary decision tree whose nodes are
the moments at which a disjunction process terminates and a new condition
value becomes known.  :class:`MergeTrace` records that walk — which path was
selected at every node, where back-steps happened, how many activation times
were locked and how many conflicts were resolved — so the tree can be
inspected, rendered and tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..conditions import Condition, Conjunction


@dataclass
class DecisionNode:
    """One node of the decision tree explored during merging."""

    known: Conjunction
    selected_path: Conjunction
    entered_by_back_step: bool
    branch_condition: Optional[Condition] = None
    branch_time: Optional[float] = None
    locked_processes: int = 0
    conflicts_resolved: int = 0
    depth: int = 0
    children: List["DecisionNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return self.branch_condition is None

    def __str__(self) -> str:
        head = f"[{self.known}] following {self.selected_path}"
        if self.branch_condition is not None:
            head += f", branches on {self.branch_condition} at t={self.branch_time:g}"
        if self.entered_by_back_step:
            head = "back-step " + head
        return head


@dataclass
class MergeTrace:
    """The full decision tree plus summary statistics of one merging run."""

    root: Optional[DecisionNode] = None
    path_delays: Dict[Conjunction, float] = field(default_factory=dict)
    back_steps: int = 0
    conflicts_resolved: int = 0
    adjustments: int = 0

    def nodes(self) -> List[DecisionNode]:
        """All decision nodes in depth-first order."""
        result: List[DecisionNode] = []

        def visit(node: DecisionNode) -> None:
            result.append(node)
            for child in node.children:
                visit(child)

        if self.root is not None:
            visit(self.root)
        return result

    def leaves(self) -> List[DecisionNode]:
        return [node for node in self.nodes() if node.is_leaf]

    def render(self) -> str:
        """ASCII rendering of the decision tree (one line per node)."""
        lines: List[str] = []

        def visit(node: DecisionNode, indent: int) -> None:
            prefix = "  " * indent
            marker = "<=" if node.entered_by_back_step else "->"
            lines.append(f"{prefix}{marker} {node}")
            for child in node.children:
                visit(child, indent + 1)

        if self.root is not None:
            visit(self.root, 0)
        return "\n".join(lines)

    def ordered_path_delays(self) -> List[tuple]:
        """Path labels and their optimal delays, longest first (as in Fig. 2)."""
        return sorted(self.path_delays.items(), key=lambda item: -item[1])
