"""Scheduling of conditional process graphs.

The package contains the two halves of the paper's scheduling strategy:

1. list scheduling of each individual alternative path
   (:class:`PathListScheduler`), and
2. merging the per-path schedules into the global schedule table
   (:class:`ScheduleMerger`), the paper's core contribution.
"""

from .flat import (
    FlatPathSchedule,
    FlatScheduleTable,
    pack_time,
    schedule_from_flat,
    schedule_to_flat,
    table_from_flat,
    table_to_flat,
    unpack_time,
)
from .list_scheduler import PathListScheduler, SchedulingError
from .merging import MergeConflictError, MergeResult, ScheduleMerger, merge_schedules
from .priorities import (
    PATH_LOCAL_PRIORITY_FUNCTIONS,
    PRIORITY_FUNCTIONS,
    PriorityFunction,
    critical_path_priorities,
    priority_function,
    static_order_priorities,
    topological_order_priorities,
    upward_rank_priorities,
)
from .schedule import PathSchedule, ScheduledTask
from .schedule_table import ScheduleTable, ScheduleTableError, TableEntry
from .trace import DecisionNode, MergeTrace

__all__ = [
    "DecisionNode",
    "FlatPathSchedule",
    "FlatScheduleTable",
    "MergeConflictError",
    "MergeResult",
    "MergeTrace",
    "PATH_LOCAL_PRIORITY_FUNCTIONS",
    "PRIORITY_FUNCTIONS",
    "PathListScheduler",
    "PathSchedule",
    "PriorityFunction",
    "ScheduleMerger",
    "ScheduleTable",
    "ScheduleTableError",
    "ScheduledTask",
    "SchedulingError",
    "TableEntry",
    "critical_path_priorities",
    "merge_schedules",
    "pack_time",
    "priority_function",
    "schedule_from_flat",
    "schedule_to_flat",
    "static_order_priorities",
    "table_from_flat",
    "table_to_flat",
    "topological_order_priorities",
    "unpack_time",
    "upward_rank_priorities",
]
