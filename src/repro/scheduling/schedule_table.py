"""The schedule table produced by the merging algorithm.

The schedule table has one row per (ordinary or communication) process and one
row per condition broadcast.  Each column is headed by a conjunction of
condition values; the cell at row *P*, column *E* holds the activation time of
*P* when *E* is true.  Section 3 of the paper states four requirements the
table must satisfy to yield a deterministic distributed execution; this module
represents the table and checks requirements 1–3 statically (requirement 4 —
activation may only depend on conditions already known on the executing
processing element — is enforced by construction during merging and
re-verified dynamically by the run-time simulator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..architecture.mapping import Mapping as PEMapping
from ..architecture.processing_element import ProcessingElement
from ..conditions import BoolExpr, Condition, Conjunction, masks_from_assignment
from ..graph.cpg import ConditionalProcessGraph
from ..graph.paths import AlternativePath

#: Time-comparison tolerance; must match the scheduler's and merger's epsilon.
_EPSILON = 1e-9


class ScheduleTableError(ValueError):
    """Raised when a schedule table violates one of the paper's requirements."""


@dataclass(frozen=True)
class TableEntry:
    """One activation time, valid when the column expression is true."""

    column: Conjunction
    start: float
    pe: Optional[ProcessingElement] = None

    def __str__(self) -> str:
        return f"{self.start:g} [{self.column}]"


class _PackedRow:
    """The packed (flat-int) columns of one table row.

    Parallel lists, one position per entry: the column's ``pos``/``neg``
    bitmasks, the start time as a plain float, and the entry object itself.
    The merger's hot scans walk these integer columns directly instead of
    loading ``entry.column`` and calling mask methods per entry.
    """

    __slots__ = ("pos", "neg", "starts", "entries")

    def __init__(self) -> None:
        self.pos: List[int] = []
        self.neg: List[int] = []
        self.starts: List[float] = []
        self.entries: List[TableEntry] = []

    def append(self, entry: TableEntry) -> None:
        column = entry.column
        self.pos.append(column.pos_mask)
        self.neg.append(column.neg_mask)
        self.starts.append(entry.start)
        self.entries.append(entry)


class ScheduleTable:
    """Rows of activation times indexed by column expressions.

    Besides the per-row entry lists, the table maintains a mask index: every
    distinct column (a bitmask pair over the condition universe) maps to the
    entries filed under it, each tagged with a global insertion sequence
    number.  The merger's hot queries — "which previously fixed activation
    times apply under this partial knowledge?" — then probe the few distinct
    columns with two integer operations each instead of scanning every row.
    Row scans (applicability, conflicts, row starts) run on packed parallel
    int columns (:class:`_PackedRow`) maintained alongside the entry lists.
    """

    def __init__(self, name: str = "schedule-table") -> None:
        self.name = name
        self._process_rows: Dict[str, List[TableEntry]] = {}
        self._condition_rows: Dict[Condition, List[TableEntry]] = {}
        # column masks -> [(sequence, is_condition_row, row_key, entry), ...]
        self._column_index: Dict[Tuple[int, int], List[tuple]] = {}
        self._sequence = 0
        # Packed mirrors of the rows, plus the global insertion log the flat
        # converters replay (lock queries tie-break on insertion order, so
        # the log is part of the table's observable behaviour).
        self._packed_process: Dict[str, _PackedRow] = {}
        self._packed_condition: Dict[Condition, _PackedRow] = {}
        self._entry_log: List[tuple] = []

    # -- construction ------------------------------------------------------------

    def _index_entry(self, is_condition: bool, key, entry: TableEntry) -> None:
        masks = (entry.column.pos_mask, entry.column.neg_mask)
        self._column_index.setdefault(masks, []).append(
            (self._sequence, is_condition, key, entry)
        )
        self._sequence += 1
        self._entry_log.append((is_condition, key, entry))

    def add_process_entry(
        self,
        process_name: str,
        column: Conjunction,
        start: float,
        pe: Optional[ProcessingElement] = None,
    ) -> TableEntry:
        """Record an activation time for a process under a column expression."""
        entry = TableEntry(column, start, pe)
        self._process_rows.setdefault(process_name, []).append(entry)
        packed = self._packed_process.get(process_name)
        if packed is None:
            packed = self._packed_process[process_name] = _PackedRow()
        packed.append(entry)
        self._index_entry(False, process_name, entry)
        return entry

    def add_condition_entry(
        self,
        condition: Condition,
        column: Conjunction,
        start: float,
        pe: Optional[ProcessingElement] = None,
    ) -> TableEntry:
        """Record the start of a condition broadcast under a column expression."""
        entry = TableEntry(column, start, pe)
        self._condition_rows.setdefault(condition, []).append(entry)
        packed = self._packed_condition.get(condition)
        if packed is None:
            packed = self._packed_condition[condition] = _PackedRow()
        packed.append(entry)
        self._index_entry(True, condition, entry)
        return entry

    def entries_in_order(self) -> Tuple[tuple, ...]:
        """Every entry in global insertion order, as ``(is_condition, key, entry)``.

        This is the replay order the flat converters
        (:func:`repro.scheduling.flat.table_to_flat` /
        :func:`~repro.scheduling.flat.table_from_flat`) use to rebuild a table
        with identical row lists, mask index and sequence numbering.
        """
        return tuple(self._entry_log)

    # -- access ---------------------------------------------------------------------

    @property
    def process_names(self) -> Tuple[str, ...]:
        return tuple(self._process_rows)

    @property
    def conditions(self) -> Tuple[Condition, ...]:
        return tuple(self._condition_rows)

    def process_entries(self, process_name: str) -> Tuple[TableEntry, ...]:
        return tuple(self._process_rows.get(process_name, ()))

    def condition_entries(self, condition: Condition) -> Tuple[TableEntry, ...]:
        return tuple(self._condition_rows.get(condition, ()))

    def columns(self) -> Tuple[Conjunction, ...]:
        """All distinct column expressions, sorted by generality then text."""
        seen = {
            entry.column
            for entries in self._process_rows.values()
            for entry in entries
        }
        seen.update(
            entry.column
            for entries in self._condition_rows.values()
            for entry in entries
        )
        return tuple(sorted(seen, key=lambda c: (len(c), str(c))))

    def __iter__(self) -> Iterator[Tuple[str, Tuple[TableEntry, ...]]]:
        for name, entries in self._process_rows.items():
            yield name, tuple(entries)

    def __len__(self) -> int:
        return len(self._process_rows)

    # -- mask-indexed queries (merger hot path) -----------------------------------

    @staticmethod
    def _first_applicable(
        packed: Optional[_PackedRow], pos_mask: int, neg_mask: int
    ) -> Optional[TableEntry]:
        """First entry of a packed row whose column the masks satisfy."""
        if packed is None:
            return None
        row_pos = packed.pos
        row_neg = packed.neg
        for index in range(len(row_pos)):
            if not ((row_pos[index] & ~pos_mask) or (row_neg[index] & ~neg_mask)):
                return packed.entries[index]
        return None

    @staticmethod
    def _packed_conflicts(
        packed: Optional[_PackedRow], column: Conjunction, start: float
    ) -> List[TableEntry]:
        """Entries at a different start whose column is not exclusive with ``column``."""
        if packed is None:
            return []
        conflicts: List[TableEntry] = []
        pos_mask = column.pos_mask
        neg_mask = column.neg_mask
        row_pos = packed.pos
        row_neg = packed.neg
        row_starts = packed.starts
        for index in range(len(row_pos)):
            delta = row_starts[index] - start
            if -_EPSILON <= delta <= _EPSILON:
                continue
            if not ((row_pos[index] & neg_mask) | (row_neg[index] & pos_mask)):
                conflicts.append(packed.entries[index])
        return conflicts

    def applicable_process_entry(
        self, process_name: str, pos_mask: int, neg_mask: int
    ) -> Optional[TableEntry]:
        """First entry of a process row whose column is satisfied by the masks."""
        return self._first_applicable(
            self._packed_process.get(process_name), pos_mask, neg_mask
        )

    def applicable_condition_entry(
        self, condition: Condition, pos_mask: int, neg_mask: int
    ) -> Optional[TableEntry]:
        """First entry of a condition row whose column is satisfied by the masks."""
        return self._first_applicable(
            self._packed_condition.get(condition), pos_mask, neg_mask
        )

    def conflicting_process_entries(
        self, process_name: str, column: Conjunction, start: float
    ) -> List[TableEntry]:
        """Entries of a process row violating requirement 2 against a new entry."""
        return self._packed_conflicts(
            self._packed_process.get(process_name), column, start
        )

    def conflicting_condition_entries(
        self, condition: Condition, column: Conjunction, start: float
    ) -> List[TableEntry]:
        """Entries of a condition row violating requirement 2 against a new entry."""
        return self._packed_conflicts(
            self._packed_condition.get(condition), column, start
        )

    def applicable_locks(
        self, pos_mask: int, neg_mask: int
    ) -> Tuple[Dict[str, TableEntry], Dict[Condition, TableEntry]]:
        """The first applicable entry of every row under the given masks.

        Walks the distinct columns of the mask index (a dict probe plus two
        integer operations per column) rather than every row of the table;
        per row the entry that was inserted first — the one a sequential row
        scan would return — wins.
        """
        process_best: Dict[str, tuple] = {}
        condition_best: Dict[Condition, tuple] = {}
        for (col_pos, col_neg), bucket in self._column_index.items():
            if (col_pos & ~pos_mask) or (col_neg & ~neg_mask):
                continue
            for sequence, is_condition, key, entry in bucket:
                best = condition_best if is_condition else process_best
                current = best.get(key)
                if current is None or sequence < current[0]:
                    best[key] = (sequence, entry)
        return (
            {name: entry for name, (_, entry) in process_best.items()},
            {condition: entry for condition, (_, entry) in condition_best.items()},
        )

    # -- interpretation ---------------------------------------------------------------

    @staticmethod
    def _row_start(
        packed: Optional[_PackedRow], pos_mask: int, neg_mask: int, label: str
    ) -> Optional[float]:
        """The single start time a row yields under the given masks, or None.

        Raises when several applicable columns give different times (a
        requirement-2 violation).
        """
        if packed is None:
            return None
        row_pos = packed.pos
        row_neg = packed.neg
        row_starts = packed.starts
        first: Optional[float] = None
        for index in range(len(row_pos)):
            if (row_pos[index] & ~pos_mask) or (row_neg[index] & ~neg_mask):
                continue
            start = row_starts[index]
            if first is None:
                first = start
            elif start != first:
                times = sorted(
                    {
                        row_starts[i]
                        for i in range(len(row_pos))
                        if not (
                            (row_pos[i] & ~pos_mask) or (row_neg[i] & ~neg_mask)
                        )
                    }
                )
                raise ScheduleTableError(f"ambiguous {label}: {times}")
        return first

    def activation_time(
        self, process_name: str, assignment: Mapping[Condition, bool]
    ) -> Optional[float]:
        """Activation time of a process under a complete condition assignment.

        Returns None when no column applies (the process is not activated on
        the selected alternative path).  Raises when several applicable
        columns give different times (a requirement-2 violation).
        """
        pos, neg = masks_from_assignment(assignment)
        return self._row_start(
            self._packed_process.get(process_name),
            pos,
            neg,
            f"activation time for {process_name!r}",
        )

    def broadcast_time(
        self, condition: Condition, assignment: Mapping[Condition, bool]
    ) -> Optional[float]:
        """Broadcast start time of a condition under a complete assignment."""
        pos, neg = masks_from_assignment(assignment)
        return self._row_start(
            self._packed_condition.get(condition),
            pos,
            neg,
            f"broadcast time for condition {condition}",
        )

    def delay_of_path(
        self,
        graph: ConditionalProcessGraph,
        mapping: PEMapping,
        path: AlternativePath,
        *,
        durations: Optional[Mapping[str, float]] = None,
        dummies: Optional[frozenset] = None,
    ) -> float:
        """Completion time of one alternative path executed from this table.

        ``durations`` (name -> execution time on the mapped element) and
        ``dummies`` (the graph's dummy-process names) are optional memo
        arguments, typically exported from a scheduler's path context; when
        given they replace the per-process graph and mapping probes.  The
        result is identical either way.
        """
        delay = 0.0
        pos, neg = masks_from_assignment(path.assignment)
        packed = self._packed_process
        row_start = self._row_start
        for name in path.active_processes:
            if dummies is not None:
                if name in dummies:
                    continue
                duration = (
                    durations[name]
                    if durations is not None
                    else graph[name].duration_on(mapping.get(name))
                )
            else:
                process = graph[name]
                if process.is_dummy:
                    continue
                duration = process.duration_on(mapping.get(name))
            start = row_start(
                packed.get(name),
                pos,
                neg,
                f"activation time for {name!r}",
            )
            if start is None:
                raise ScheduleTableError(
                    f"process {name!r} is active on path {path.label} but the "
                    "table contains no applicable activation time"
                )
            total = start + duration
            if total > delay:
                delay = total
        return delay

    def worst_case_delay(
        self,
        graph: ConditionalProcessGraph,
        mapping: PEMapping,
        paths: Iterable[AlternativePath],
    ) -> float:
        """The worst-case delay ``delta_max`` over all alternative paths."""
        return max(self.delay_of_path(graph, mapping, path) for path in paths)

    # -- the paper's requirements -----------------------------------------------------

    def check_requirement_1(self, graph: ConditionalProcessGraph) -> None:
        """Every column of a process row must imply the process guard."""
        guards = graph.guards()
        for name, entries in self._process_rows.items():
            guard = guards.get(name)
            if guard is None:
                continue
            for entry in entries:
                if not BoolExpr.from_conjunction(entry.column).implies(guard):
                    raise ScheduleTableError(
                        f"requirement 1 violated for {name!r}: column "
                        f"{entry.column} does not imply guard {guard}"
                    )

    def check_requirement_2(self) -> None:
        """Different activation times of one process must be mutually exclusive."""
        for name, entries in self._process_rows.items():
            self._check_exclusive(str(name), entries)
        for condition, entries in self._condition_rows.items():
            self._check_exclusive(f"condition {condition}", entries)

    @staticmethod
    def _check_exclusive(label: str, entries: List[TableEntry]) -> None:
        for i, first in enumerate(entries):
            for second in entries[i + 1 :]:
                if abs(first.start - second.start) < _EPSILON:
                    continue
                if not first.column.is_mutually_exclusive_with(second.column):
                    raise ScheduleTableError(
                        f"requirement 2 violated for {label}: columns "
                        f"{first.column} (t={first.start:g}) and {second.column} "
                        f"(t={second.start:g}) are not mutually exclusive"
                    )

    def check_requirement_3(
        self, graph: ConditionalProcessGraph, paths: Iterable[AlternativePath]
    ) -> None:
        """Whenever a guard becomes true the process must have an activation time."""
        for path in paths:
            for name in path.active_processes:
                if graph[name].is_dummy:
                    continue
                if self.activation_time(name, path.assignment) is None:
                    raise ScheduleTableError(
                        f"requirement 3 violated: {name!r} is active on path "
                        f"{path.label} but has no applicable activation time"
                    )

    def check_requirements(
        self, graph: ConditionalProcessGraph, paths: Iterable[AlternativePath]
    ) -> None:
        """Run the static checks for requirements 1–3."""
        paths = list(paths)
        self.check_requirement_1(graph)
        self.check_requirement_2()
        self.check_requirement_3(graph, paths)

    def __eq__(self, other: object) -> bool:
        """Value equality: same name and same entries in the same global order.

        The insertion log determines every derived structure (row lists, mask
        index, packed columns, lock tie-breaks), so comparing it compares the
        table's complete observable behaviour.
        """
        if not isinstance(other, ScheduleTable):
            return NotImplemented
        return self.name == other.name and self._entry_log == other._entry_log

    __hash__ = object.__hash__

    def __repr__(self) -> str:
        return (
            f"ScheduleTable(name={self.name!r}, rows={len(self._process_rows)}, "
            f"columns={len(self.columns())})"
        )


def _conflicts(
    entries: Iterable[TableEntry], column: Conjunction, start: float
) -> List[TableEntry]:
    """Entries at a different start whose column is not exclusive with ``column``."""
    return [
        entry
        for entry in entries
        if abs(entry.start - start) > _EPSILON
        and not entry.column.is_mutually_exclusive_with(column)
    ]
