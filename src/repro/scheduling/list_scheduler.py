"""List scheduling of one alternative path on the target architecture.

This module implements the per-path scheduler the merging algorithm builds on
(the paper delegates it to reference [5] and only states that it is a list
scheduling heuristic).  The same dispatch engine serves two purposes:

* producing the (near) optimal schedule of each alternative path, with
  partial-critical-path priorities; and
* re-adjusting a path's schedule during table generation, where some
  activation times are *locked* to previously fixed values and the remaining
  (unlocked) processes are moved to the earliest feasible moment while keeping
  their original relative order on each non-hardware processing element.

The resource model follows the paper: a programmable processor executes one
process at a time, a bus carries one transfer at a time, a hardware processor
executes processes in parallel, and computation overlaps with communication.
After a disjunction process terminates, the value of its condition is
broadcast on the first available bus connected to all processors
(duration ``tau0``).

The dispatch engine is incremental: ready processes live in priority heaps
(so each dispatch decision is O(log n) instead of a rescan of every remaining
process), resource timelines keep their busy intervals sorted with
``bisect.insort`` and binary-search the first interval that can interfere
with a slot query, and the per-path dependency structure (active set,
durations, predecessor/successor maps, critical-path priorities) is computed
once and reused across the many re-adjustment calls the schedule merger
makes for the same path.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from typing import Dict, List, Optional, Tuple

from ..architecture.architecture import Architecture
from ..architecture.mapping import Mapping
from ..architecture.processing_element import ProcessingElement
from ..conditions import Condition
from ..graph.cpg import ConditionalProcessGraph
from ..graph.paths import AlternativePath
from .priorities import PriorityFunction, critical_path_priorities
from .schedule import PathSchedule, ScheduledTask

_EPSILON = 1e-9
_INFINITY = float("inf")


class SchedulingError(RuntimeError):
    """Raised when a path cannot be scheduled (circular or unmapped processes)."""


class _ResourceTimeline:
    """Occupied intervals of one sequential processing element.

    Intervals are kept sorted by insertion (``bisect.insort``); slot queries
    binary-search the first interval that could still overlap the requested
    start instead of scanning from the beginning.  ``_max_length`` bounds how
    far before the requested time an interval may begin and still reach it,
    which makes the binary-searched lower bound exact.
    """

    __slots__ = ("_intervals", "_max_length")

    def __init__(self) -> None:
        self._intervals: List[Tuple[float, float]] = []
        self._max_length = 0.0

    def reserve(self, start: float, end: float) -> None:
        if end - start <= _EPSILON:
            return
        insort(self._intervals, (start, end))
        if end - start > self._max_length:
            self._max_length = end - start

    def earliest_slot(self, ready: float, duration: float) -> float:
        """Earliest start >= ready such that [start, start+duration) is free."""
        if duration <= _EPSILON:
            return ready
        intervals = self._intervals
        start = ready
        # Any interval starting before ready - max_length has already ended by
        # ``ready`` and can never constrain the slot; skip it wholesale.
        index = bisect_left(intervals, (ready - self._max_length,))
        for position in range(index, len(intervals)):
            busy_start, busy_end = intervals[position]
            if busy_end <= start + _EPSILON:
                continue
            if busy_start >= start + duration - _EPSILON:
                break
            start = max(start, busy_end)
        return start

    def intervals(self) -> List[Tuple[float, float]]:
        return list(self._intervals)


class _PathContext:
    """Per-path scheduling structure, computed once and reused across calls.

    Besides the name-keyed dicts (kept for locked-interval pre-reservation
    and for external consumers via ``export_context``), the context carries
    index-parallel flat mirrors: position ``i`` in every ``*_flat`` list
    describes ``active[i]``.  The dispatch loop runs entirely on the flat
    columns — integer indices into plain lists instead of string-keyed dict
    probes and dataclass attribute loads per decision.
    """

    __slots__ = (
        "active",
        "active_set",
        "durations",
        "pes",
        "predecessors",
        "successors",
        "base_indegree",
        "default_priorities",
        "index_of",
        "durations_flat",
        "pes_flat",
        "pred_indices",
        "succ_indices",
        "base_indegree_flat",
        "guard_conditions",
        "disjunction_flat",
        "seq_pe_names",
        "seq_unique",
        "neg_priorities_flat",
    )

    def __init__(self) -> None:
        self.active: Tuple[str, ...] = ()
        self.active_set: frozenset = frozenset()
        self.durations: Dict[str, float] = {}
        self.pes: Dict[str, Optional[ProcessingElement]] = {}
        self.predecessors: Dict[str, Tuple[str, ...]] = {}
        self.successors: Dict[str, Tuple[str, ...]] = {}
        self.base_indegree: Dict[str, int] = {}
        self.default_priorities: Optional[Dict[str, float]] = None
        self.index_of: Dict[str, int] = {}
        self.durations_flat: List[float] = []
        self.pes_flat: List[Optional[ProcessingElement]] = []
        self.pred_indices: List[Tuple[int, ...]] = []
        self.succ_indices: List[Tuple[int, ...]] = []
        self.base_indegree_flat: List[int] = []
        #: Per process: the guard's condition tuple, or None when the guard is
        #: trivially true (no requirement-4 wait needed).
        self.guard_conditions: List[Optional[Tuple[Condition, ...]]] = []
        #: Per process: the condition its disjunction determines, or None.
        self.disjunction_flat: List[Optional[Condition]] = []
        #: Per process: its PE's name when that PE executes sequentially
        #: (the dispatch loop keys resource timelines by it), else None.
        self.seq_pe_names: List[Optional[str]] = []
        #: The distinct sequential-PE names of the path, for pre-building
        #: the per-call timeline dict.
        self.seq_unique: Tuple[str, ...] = ()
        #: Negated default priorities in index order (heap keys), built
        #: lazily the first time the default priorities are used.
        self.neg_priorities_flat: Optional[List[float]] = None


class PathListScheduler:
    """List scheduler for a single alternative path.

    Parameters
    ----------
    graph:
        The expanded conditional process graph (communication processes
        inserted).
    mapping:
        Mapping of every non-dummy process to its processing element.
    architecture:
        The target architecture (provides buses and ``tau0``).
    priority_function:
        The priority function used when :meth:`schedule` is called without
        explicit ``priorities`` (default: partial critical path).  Injectable
        so the design-space explorer can switch among the registered
        functions without touching the dispatch engine.
    priority_bias:
        Optional per-process additive perturbation applied on top of the
        computed default priorities (an explorer move; absent processes get
        bias 0).

    The scheduler caches the dependency structure and default priorities of
    every path it sees, keyed on the path's label and active set; it assumes
    the graph, the mapping and the priority configuration do not change
    between calls (build a new scheduler after remapping).
    """

    def __init__(
        self,
        graph: ConditionalProcessGraph,
        mapping: Mapping,
        architecture: Optional[Architecture] = None,
        priority_function: Optional[PriorityFunction] = None,
        priority_bias: Optional[Dict[str, float]] = None,
    ) -> None:
        self._graph = graph
        self._mapping = mapping
        self._architecture = architecture or mapping.architecture
        self._priority_function = priority_function or critical_path_priorities
        self._priority_bias = dict(priority_bias or {})
        self._disjunctions = graph.disjunction_processes()
        self._guards = graph.guards()
        self._path_cache: Dict[tuple, _PathContext] = {}
        # Identity fast path: the merger re-schedules the same path object
        # hundreds of times; an id-keyed probe skips re-hashing the (label,
        # active set) key on every call.  The strong path reference pins the
        # id against reuse for the cache's lifetime.
        self._context_by_id: Dict[int, Tuple[AlternativePath, _PathContext]] = {}
        # Static incoming-edge structure per process, shared by every path:
        # (source name, edge condition or None).  Context builds filter it
        # against the path's active set — a process active on the path has a
        # satisfied guard by definition, so the per-edge guard evaluation of
        # ``graph.active_predecessors`` is redundant here.
        self._edge_cache: Dict[str, Tuple[Tuple[str, Optional[Condition]], ...]] = {}
        # Path-independent skeleton per process: (pe, duration, guard
        # condition tuple or None, disjunction condition or None, sequential
        # PE name or None).  Built on first touch and shared by every
        # context, so repeated context builds skip the graph/mapping probes.
        self._static_info: Dict[str, tuple] = {}

    # -- public API -------------------------------------------------------------

    def _context_for(self, path: AlternativePath) -> _PathContext:
        hit = self._context_by_id.get(id(path))
        if hit is not None and hit[0] is path:
            return hit[1]
        key = (path.label, path.active_processes)
        context = self._path_cache.get(key)
        if context is None:
            context = self._build_context(path)
            self._path_cache[key] = context
        self._context_by_id[id(path)] = (path, context)
        return context

    def _static_info_for(self, name: str) -> tuple:
        info = self._static_info.get(name)
        if info is None:
            process = self._graph[name]
            pe = None if process.is_dummy else self._mapping.get(name)
            if pe is None and not process.is_dummy:
                raise SchedulingError(f"process {name!r} is not mapped")
            guard = self._guards.get(name)
            info = (
                pe,
                process.duration_on(pe),
                None
                if guard is None or guard.is_true()
                else tuple(guard.conditions),
                self._disjunctions.get(name),
                pe.name if pe is not None and pe.executes_sequentially else None,
            )
            self._static_info[name] = info
        return info

    def _build_context(self, path: AlternativePath) -> _PathContext:
        context = _PathContext()
        context.active = tuple(path.active_processes)
        context.active_set = frozenset(context.active)
        index_of = {name: i for i, name in enumerate(context.active)}
        context.index_of = index_of

        # Path-independent columns come straight from the shared skeleton;
        # the dict views are kept index-parallel with the flat mirrors.
        static_info = self._static_info
        static_info_for = self._static_info_for
        pes = context.pes
        durations = context.durations
        durations_flat_append = context.durations_flat.append
        pes_flat_append = context.pes_flat.append
        guard_conditions_append = context.guard_conditions.append
        disjunction_flat_append = context.disjunction_flat.append
        seq_pe_names_append = context.seq_pe_names.append
        seq_seen: Dict[str, None] = {}
        for name in context.active:
            info = static_info.get(name)
            if info is None:
                info = static_info_for(name)
            pe, duration, guard_conditions, disjunction, seq_name = info
            pes[name] = pe
            durations[name] = duration
            durations_flat_append(duration)
            pes_flat_append(pe)
            guard_conditions_append(guard_conditions)
            disjunction_flat_append(disjunction)
            seq_pe_names_append(seq_name)
            if seq_name is not None:
                seq_seen[seq_name] = None
        context.seq_unique = tuple(seq_seen)

        successors: Dict[str, List[str]] = {name: [] for name in context.active}
        assignment = path.assignment
        active_set = context.active_set
        edge_cache = self._edge_cache
        in_edge_map = self._graph.in_edge_map()
        predecessors = context.predecessors
        base_indegree = context.base_indegree
        pred_indices_append = context.pred_indices.append
        base_indegree_flat_append = context.base_indegree_flat.append
        for name in context.active:
            edges = edge_cache.get(name)
            if edges is None:
                edges = tuple(
                    (edge.src, edge.condition if edge.is_conditional else None)
                    for edge in in_edge_map[name]
                )
                edge_cache[name] = edges
            preds = tuple(
                src
                for src, condition in edges
                if src in active_set
                and (condition is None or condition.evaluate(assignment))
            )
            predecessors[name] = preds
            base_indegree[name] = len(preds)
            pred_indices_append(tuple(index_of[pred] for pred in preds))
            base_indegree_flat_append(len(preds))
            for pred in preds:
                successors[pred].append(name)
        context.successors = {name: tuple(succ) for name, succ in successors.items()}
        context.succ_indices = [
            tuple(index_of[succ] for succ in successors[name])
            for name in context.active
        ]
        return context

    def export_context(self, path: AlternativePath) -> Optional[_PathContext]:
        """The cached per-path structure of ``path``, if this scheduler built it.

        Together with :meth:`adopt_context` this lets the design-space
        explorer's incremental evaluator reuse the dependency structure,
        durations and default priorities of a path across scheduler
        instances, instead of rebuilding them per candidate.
        """
        return self._path_cache.get((path.label, path.active_processes))

    def adopt_context(self, path: AlternativePath, context: _PathContext) -> None:
        """Seed the per-path cache with a context built by another scheduler.

        The caller guarantees the context matches this scheduler's view of
        the path: same active processes, same durations on the same mapped
        processing elements, same restricted edge structure and the same
        priority configuration.  (The incremental evaluator derives that
        guarantee from its sub-fingerprint keys; a mismatched adoption would
        silently produce wrong schedules.)
        """
        self._path_cache[(path.label, path.active_processes)] = context

    def schedule(
        self,
        path: AlternativePath,
        *,
        priorities: Optional[Dict[str, float]] = None,
        locked_starts: Optional[Dict[str, float]] = None,
        locked_broadcasts: Optional[Dict[Condition, ScheduledTask]] = None,
        order_hint: Optional[Dict[str, float]] = None,
    ) -> PathSchedule:
        """Schedule one alternative path.

        ``locked_starts`` pins processes to previously fixed activation times
        (schedule adjustment during merging); ``locked_broadcasts`` does the
        same for condition broadcasts.  ``order_hint`` gives the original start
        times used to preserve the relative order of unlocked processes; when
        omitted, partial-critical-path priorities decide the dispatch order.
        """
        locked_starts = dict(locked_starts or {})
        locked_broadcasts = dict(locked_broadcasts or {})
        context = self._context_for(path)
        if priorities is None:
            if context.default_priorities is None:
                if self._priority_function is critical_path_priorities:
                    computed = self._critical_path_priorities(context)
                else:
                    computed = self._priority_function(
                        self._graph, path, self._mapping
                    )
                if self._priority_bias:
                    computed = {
                        name: value + self._priority_bias.get(name, 0.0)
                        for name, value in computed.items()
                    }
                context.default_priorities = computed
            priorities = context.default_priorities

        active = context.active
        active_set = context.active_set
        durations = context.durations
        pes = context.pes
        durations_flat = context.durations_flat
        pes_flat = context.pes_flat
        pred_indices = context.pred_indices
        succ_indices = context.succ_indices
        guard_conditions = context.guard_conditions
        disjunction_flat = context.disjunction_flat
        seq_pe_names = context.seq_pe_names
        count = len(active)

        # Timelines for the path's sequential PEs exist up front so the
        # dispatch loop indexes them directly; buses (broadcasts) and any
        # locked task on another element go through the setdefault fallback.
        timelines: Dict[str, _ResourceTimeline] = {
            pe_name: _ResourceTimeline() for pe_name in context.seq_unique
        }

        def timeline(pe: ProcessingElement) -> _ResourceTimeline:
            return timelines.setdefault(pe.name, _ResourceTimeline())

        # Pre-reserve the intervals of locked processes and broadcasts so that
        # unlocked activities are placed around them.
        for name, start in locked_starts.items():
            if name not in active_set:
                continue
            pe = pes[name]
            if pe is not None and pe.executes_sequentially:
                timeline(pe).reserve(start, start + durations[name])
        for task in locked_broadcasts.values():
            if task.pe is not None and task.pe.executes_sequentially:
                timeline(task.pe).reserve(task.start, task.end)

        broadcasts: Dict[Condition, ScheduledTask] = {}
        determination: Dict[Condition, float] = {}
        disjunction_pes: Dict[Condition, Optional[ProcessingElement]] = {}
        pending_broadcasts: List[
            Tuple[float, Condition, Optional[ProcessingElement]]
        ] = []
        # Guard-knowledge memo: condition -> (origin PE, time known on the
        # origin, time known everywhere else).  Filled when the broadcast is
        # scheduled — which happens before any later dispatch can query it —
        # so the requirement-4 check below is one dict probe per condition.
        known_times: Dict[
            Condition, Tuple[Optional[ProcessingElement], float, float]
        ] = {}

        def schedule_broadcast(
            condition: Condition, ready: float, origin: Optional[ProcessingElement]
        ) -> None:
            locked = locked_broadcasts.get(condition)
            if locked is not None:
                broadcasts[condition] = locked
                known_times[condition] = (
                    origin,
                    determination[condition],
                    locked.end,
                )
                return
            tau0 = self._architecture.condition_broadcast_time
            buses = self._architecture.broadcast_buses()
            if not buses or len(self._architecture.processors) <= 1:
                # A single-processor system (or one without buses) needs no
                # broadcast: the value is immediately known everywhere.
                task = ScheduledTask(f"cond:{condition}", ready, 0.0, None, condition)
                broadcasts[condition] = task
                known_times[condition] = (
                    origin,
                    determination[condition],
                    task.end,
                )
                return
            best: Optional[Tuple[float, ProcessingElement]] = None
            for bus in buses:
                start = timeline(bus).earliest_slot(ready, tau0)
                if best is None or start < best[0] - _EPSILON:
                    best = (start, bus)
            assert best is not None
            start, bus = best
            timeline(bus).reserve(start, start + tau0)
            task = ScheduledTask(f"cond:{condition}", start, tau0, bus, condition)
            broadcasts[condition] = task
            known_times[condition] = (origin, determination[condition], task.end)

        # Ready processes are kept in two heaps: processes with a locked
        # activation time, keyed by (locked start, name), and free processes,
        # keyed by the dispatch priority.  A ready locked process is always
        # dispatched before any free one, matching the paper's adjustment
        # rule; within each class the heap reproduces the order a full scan
        # of the ready set would have chosen.  (Names are unique, so the
        # trailing index never participates in a comparison.)
        #
        # The loop itself runs on the flat columns: start/end per process
        # index, with ScheduledTask objects materialised only once, after the
        # last dispatch, in dispatch order.
        indegree = list(context.base_indegree_flat)
        ready_locked: List[Tuple[float, str, int]] = []
        ready_free: List[Tuple[float, float, str, int]] = []
        heappush = heapq.heappush
        heappop = heapq.heappop

        if locked_starts or order_hint is not None:

            def push_ready(index: int) -> None:
                name = active[index]
                locked = locked_starts.get(name)
                if locked is not None:
                    heappush(ready_locked, (locked, name, index))
                else:
                    hint = (
                        order_hint.get(name, _INFINITY) if order_hint else _INFINITY
                    )
                    heappush(
                        ready_free, (hint, -priorities.get(name, 0.0), name, index)
                    )

        else:
            # No locks and no order hint: every entry would carry the same
            # infinite hint, so ordering reduces to the negated priority.
            # Cache the negated default priorities as a flat column; a
            # caller-supplied priority dict gets a per-call column instead.
            neg_priorities = context.neg_priorities_flat
            if neg_priorities is None or priorities is not context.default_priorities:
                neg_priorities = [-priorities.get(name, 0.0) for name in active]
                if priorities is context.default_priorities:
                    context.neg_priorities_flat = neg_priorities

            def push_ready(index: int) -> None:
                heappush(
                    ready_free,
                    (_INFINITY, neg_priorities[index], active[index], index),
                )

        for index in range(count):
            if indegree[index] == 0:
                push_ready(index)

        starts: List[float] = [0.0] * count
        ends: List[float] = [0.0] * count
        dispatch_order: List[int] = []
        remaining = count
        while remaining:
            # Broadcasts are dispatched as soon as their condition is computed.
            while pending_broadcasts:
                ready, condition, origin = heappop(pending_broadcasts)
                schedule_broadcast(condition, ready, origin)

            if ready_locked:
                start, _, index = heappop(ready_locked)
            elif ready_free:
                _, _, _, index = heappop(ready_free)
                data_ready = 0.0
                for pred in pred_indices[index]:
                    end = ends[pred]
                    if end > data_ready:
                        data_ready = end
                pe = pes_flat[index]
                # Requirement 4 of the paper: the run-time scheduler may only
                # activate a process once the conditions its guard depends on
                # are known on the executing processing element.  Delay the
                # start until every such condition value has reached ``pe``.
                conditions = guard_conditions[index]
                if conditions is not None:
                    for condition in conditions:
                        entry = known_times.get(condition)
                        if entry is None:
                            continue
                        origin, on_origin, elsewhere = entry
                        if pe is not None and origin is not None and pe == origin:
                            known = on_origin
                        else:
                            known = elsewhere
                        if known > data_ready:
                            data_ready = known
                seq_name = seq_pe_names[index]
                if seq_name is not None:
                    duration = durations_flat[index]
                    pe_timeline = timelines[seq_name]
                    start = pe_timeline.earliest_slot(data_ready, duration)
                    pe_timeline.reserve(start, start + duration)
                else:
                    # Dummy process or parallel hardware: starts when ready.
                    start = data_ready
            else:
                raise SchedulingError(
                    f"no dispatchable process on path {path.label}; "
                    "the subgraph has a dependency cycle or missing processes"
                )
            end = start + durations_flat[index]
            starts[index] = start
            ends[index] = end
            dispatch_order.append(index)
            remaining -= 1
            for successor in succ_indices[index]:
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    push_ready(successor)

            condition = disjunction_flat[index]
            if condition is not None:
                pe = pes_flat[index]
                determination[condition] = end
                disjunction_pes[condition] = pe
                heappush(pending_broadcasts, (end, condition, pe))

        while pending_broadcasts:
            ready, condition, origin = heappop(pending_broadcasts)
            schedule_broadcast(condition, ready, origin)

        scheduled: Dict[str, ScheduledTask] = {}
        for index in dispatch_order:
            name = active[index]
            scheduled[name] = ScheduledTask(
                name, starts[index], durations_flat[index], pes_flat[index]
            )
        return PathSchedule(path, scheduled, broadcasts, determination, disjunction_pes)

    def schedule_all(
        self, paths: List[AlternativePath]
    ) -> Dict[AlternativePath, PathSchedule]:
        """Schedule every alternative path with default priorities."""
        return {path: self.schedule(path) for path in paths}

    # -- internal helpers ---------------------------------------------------------

    def _critical_path_priorities(self, context: _PathContext) -> Dict[str, float]:
        """Partial-critical-path priorities computed from the cached context.

        Produces exactly what :func:`critical_path_priorities` returns for the
        context's path — the durations in the context are the same
        ``duration_on(mapping.get(name))`` values, and the successor walk
        visits the same full-graph adjacency — without re-probing the graph
        and the mapping per process.
        """
        active_set = context.active_set
        durations = context.durations
        successor_map = self._graph.successor_map()
        priorities: Dict[str, float] = {}
        priorities_get = priorities.get
        for name in reversed(self._graph.topological_order()):
            if name not in active_set:
                continue
            longest_successor = 0.0
            for successor in successor_map[name]:
                if successor in active_set:
                    value = priorities_get(successor)
                    if value is not None and value > longest_successor:
                        longest_successor = value
            priorities[name] = durations[name] + longest_successor
        return priorities

    def _guard_knowledge_time(
        self,
        name: str,
        pe: Optional[ProcessingElement],
        determination: Dict[Condition, float],
        disjunction_pes: Dict[Condition, Optional[ProcessingElement]],
        broadcasts: Dict[Condition, ScheduledTask],
    ) -> float:
        """Earliest time the guard-relevant condition values are known on ``pe``."""
        guard = self._guards.get(name)
        if guard is None or guard.is_true():
            return 0.0
        ready = 0.0
        for condition in guard.conditions:
            if condition not in determination:
                continue
            origin = disjunction_pes.get(condition)
            if pe is not None and origin is not None and pe == origin:
                known = determination[condition]
            else:
                broadcast = broadcasts.get(condition)
                known = broadcast.end if broadcast is not None else determination[condition]
            ready = max(ready, known)
        return ready
