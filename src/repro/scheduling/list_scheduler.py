"""List scheduling of one alternative path on the target architecture.

This module implements the per-path scheduler the merging algorithm builds on
(the paper delegates it to reference [5] and only states that it is a list
scheduling heuristic).  The same dispatch engine serves two purposes:

* producing the (near) optimal schedule of each alternative path, with
  partial-critical-path priorities; and
* re-adjusting a path's schedule during table generation, where some
  activation times are *locked* to previously fixed values and the remaining
  (unlocked) processes are moved to the earliest feasible moment while keeping
  their original relative order on each non-hardware processing element.

The resource model follows the paper: a programmable processor executes one
process at a time, a bus carries one transfer at a time, a hardware processor
executes processes in parallel, and computation overlaps with communication.
After a disjunction process terminates, the value of its condition is
broadcast on the first available bus connected to all processors
(duration ``tau0``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..architecture.architecture import Architecture
from ..architecture.mapping import Mapping
from ..architecture.processing_element import ProcessingElement
from ..conditions import Condition
from ..graph.cpg import ConditionalProcessGraph
from ..graph.paths import AlternativePath
from .priorities import critical_path_priorities
from .schedule import PathSchedule, ScheduledTask

_EPSILON = 1e-9


class SchedulingError(RuntimeError):
    """Raised when a path cannot be scheduled (circular or unmapped processes)."""


class _ResourceTimeline:
    """Occupied intervals of one sequential processing element."""

    def __init__(self) -> None:
        self._intervals: List[Tuple[float, float]] = []

    def reserve(self, start: float, end: float) -> None:
        if end - start <= _EPSILON:
            return
        self._intervals.append((start, end))
        self._intervals.sort()

    def earliest_slot(self, ready: float, duration: float) -> float:
        """Earliest start >= ready such that [start, start+duration) is free."""
        if duration <= _EPSILON:
            return ready
        start = ready
        for busy_start, busy_end in self._intervals:
            if busy_end <= start + _EPSILON:
                continue
            if busy_start >= start + duration - _EPSILON:
                break
            start = max(start, busy_end)
        return start

    def intervals(self) -> List[Tuple[float, float]]:
        return list(self._intervals)


class PathListScheduler:
    """List scheduler for a single alternative path.

    Parameters
    ----------
    graph:
        The expanded conditional process graph (communication processes
        inserted).
    mapping:
        Mapping of every non-dummy process to its processing element.
    architecture:
        The target architecture (provides buses and ``tau0``).
    """

    def __init__(
        self,
        graph: ConditionalProcessGraph,
        mapping: Mapping,
        architecture: Optional[Architecture] = None,
    ) -> None:
        self._graph = graph
        self._mapping = mapping
        self._architecture = architecture or mapping.architecture
        self._disjunctions = graph.disjunction_processes()
        self._guards = graph.guards()

    # -- public API -------------------------------------------------------------

    def schedule(
        self,
        path: AlternativePath,
        *,
        priorities: Optional[Dict[str, float]] = None,
        locked_starts: Optional[Dict[str, float]] = None,
        locked_broadcasts: Optional[Dict[Condition, ScheduledTask]] = None,
        order_hint: Optional[Dict[str, float]] = None,
    ) -> PathSchedule:
        """Schedule one alternative path.

        ``locked_starts`` pins processes to previously fixed activation times
        (schedule adjustment during merging); ``locked_broadcasts`` does the
        same for condition broadcasts.  ``order_hint`` gives the original start
        times used to preserve the relative order of unlocked processes; when
        omitted, partial-critical-path priorities decide the dispatch order.
        """
        locked_starts = dict(locked_starts or {})
        locked_broadcasts = dict(locked_broadcasts or {})
        if priorities is None:
            priorities = critical_path_priorities(self._graph, path, self._mapping)

        active = list(path.active_processes)
        active_set = set(active)
        durations: Dict[str, float] = {}
        pes: Dict[str, Optional[ProcessingElement]] = {}
        for name in active:
            process = self._graph[name]
            pe = None if process.is_dummy else self._mapping.get(name)
            if pe is None and not process.is_dummy:
                raise SchedulingError(f"process {name!r} is not mapped")
            pes[name] = pe
            durations[name] = process.duration_on(pe)

        predecessors: Dict[str, Tuple[str, ...]] = {
            name: tuple(
                pred
                for pred in self._graph.active_predecessors(name, path.assignment)
                if pred in active_set
            )
            for name in active
        }

        timelines: Dict[str, _ResourceTimeline] = {}

        def timeline(pe: ProcessingElement) -> _ResourceTimeline:
            return timelines.setdefault(pe.name, _ResourceTimeline())

        # Pre-reserve the intervals of locked processes and broadcasts so that
        # unlocked activities are placed around them.
        for name, start in locked_starts.items():
            if name not in active_set:
                continue
            pe = pes[name]
            if pe is not None and pe.executes_sequentially:
                timeline(pe).reserve(start, start + durations[name])
        for task in locked_broadcasts.values():
            if task.pe is not None and task.pe.executes_sequentially:
                timeline(task.pe).reserve(task.start, task.end)

        scheduled: Dict[str, ScheduledTask] = {}
        broadcasts: Dict[Condition, ScheduledTask] = {}
        determination: Dict[Condition, float] = {}
        disjunction_pes: Dict[Condition, Optional[ProcessingElement]] = {}
        pending_broadcasts: List[Tuple[float, Condition, Optional[ProcessingElement]]] = []

        def dispatch_key(name: str) -> Tuple[float, float, str]:
            hint = order_hint.get(name, float("inf")) if order_hint else float("inf")
            return (hint, -priorities.get(name, 0.0), name)

        def schedule_broadcast(
            condition: Condition, ready: float, origin: Optional[ProcessingElement]
        ) -> None:
            locked = locked_broadcasts.get(condition)
            if locked is not None:
                broadcasts[condition] = locked
                return
            tau0 = self._architecture.condition_broadcast_time
            buses = self._architecture.broadcast_buses()
            if not buses or len(self._architecture.processors) <= 1:
                # A single-processor system (or one without buses) needs no
                # broadcast: the value is immediately known everywhere.
                broadcasts[condition] = ScheduledTask(
                    f"cond:{condition}", ready, 0.0, None, condition
                )
                return
            best: Optional[Tuple[float, ProcessingElement]] = None
            for bus in buses:
                start = timeline(bus).earliest_slot(ready, tau0)
                if best is None or start < best[0] - _EPSILON:
                    best = (start, bus)
            assert best is not None
            start, bus = best
            timeline(bus).reserve(start, start + tau0)
            broadcasts[condition] = ScheduledTask(
                f"cond:{condition}", start, tau0, bus, condition
            )

        remaining = set(active)
        progress_guard = 0
        limit = 4 * (len(active) + 1)
        while remaining:
            progress_guard += 1
            if progress_guard > limit:
                raise SchedulingError(
                    f"scheduler failed to make progress on path {path.label}"
                )
            # Broadcasts are dispatched as soon as their condition is computed.
            while pending_broadcasts:
                pending_broadcasts.sort()
                ready, condition, origin = pending_broadcasts.pop(0)
                schedule_broadcast(condition, ready, origin)

            candidates = [
                name
                for name in remaining
                if all(pred in scheduled for pred in predecessors[name])
            ]
            if not candidates:
                raise SchedulingError(
                    f"no dispatchable process on path {path.label}; "
                    "the subgraph has a dependency cycle or missing processes"
                )
            locked_candidates = [c for c in candidates if c in locked_starts]
            if locked_candidates:
                name = min(locked_candidates, key=lambda c: (locked_starts[c], c))
                start = locked_starts[name]
            else:
                name = min(candidates, key=dispatch_key)
                data_ready = max(
                    (scheduled[pred].end for pred in predecessors[name]), default=0.0
                )
                pe = pes[name]
                # Requirement 4 of the paper: the run-time scheduler may only
                # activate a process once the conditions its guard depends on
                # are known on the executing processing element.  Delay the
                # start until every such condition value has reached ``pe``.
                knowledge_ready = self._guard_knowledge_time(
                    name, pe, determination, disjunction_pes, broadcasts
                )
                data_ready = max(data_ready, knowledge_ready)
                if pe is None:
                    start = data_ready
                elif pe.executes_sequentially:
                    start = timeline(pe).earliest_slot(data_ready, durations[name])
                    timeline(pe).reserve(start, start + durations[name])
                else:
                    start = data_ready
            task = ScheduledTask(name, start, durations[name], pes[name])
            scheduled[name] = task
            remaining.discard(name)
            progress_guard = 0

            condition = self._disjunctions.get(name)
            if condition is not None:
                determination[condition] = task.end
                disjunction_pes[condition] = pes[name]
                pending_broadcasts.append((task.end, condition, pes[name]))

        while pending_broadcasts:
            pending_broadcasts.sort()
            ready, condition, origin = pending_broadcasts.pop(0)
            schedule_broadcast(condition, ready, origin)

        return PathSchedule(path, scheduled, broadcasts, determination, disjunction_pes)

    def schedule_all(
        self, paths: List[AlternativePath]
    ) -> Dict[AlternativePath, PathSchedule]:
        """Schedule every alternative path with default priorities."""
        return {path: self.schedule(path) for path in paths}

    # -- internal helpers ---------------------------------------------------------

    def _guard_knowledge_time(
        self,
        name: str,
        pe: Optional[ProcessingElement],
        determination: Dict[Condition, float],
        disjunction_pes: Dict[Condition, Optional[ProcessingElement]],
        broadcasts: Dict[Condition, ScheduledTask],
    ) -> float:
        """Earliest time the guard-relevant condition values are known on ``pe``."""
        guard = self._guards.get(name)
        if guard is None or guard.is_true():
            return 0.0
        ready = 0.0
        for condition in guard.conditions:
            if condition not in determination:
                continue
            origin = disjunction_pes.get(condition)
            if pe is not None and origin is not None and pe == origin:
                known = determination[condition]
            else:
                broadcast = broadcasts.get(condition)
                known = broadcast.end if broadcast is not None else determination[condition]
            ready = max(ready, known)
        return ready
