"""List scheduling of one alternative path on the target architecture.

This module implements the per-path scheduler the merging algorithm builds on
(the paper delegates it to reference [5] and only states that it is a list
scheduling heuristic).  The same dispatch engine serves two purposes:

* producing the (near) optimal schedule of each alternative path, with
  partial-critical-path priorities; and
* re-adjusting a path's schedule during table generation, where some
  activation times are *locked* to previously fixed values and the remaining
  (unlocked) processes are moved to the earliest feasible moment while keeping
  their original relative order on each non-hardware processing element.

The resource model follows the paper: a programmable processor executes one
process at a time, a bus carries one transfer at a time, a hardware processor
executes processes in parallel, and computation overlaps with communication.
After a disjunction process terminates, the value of its condition is
broadcast on the first available bus connected to all processors
(duration ``tau0``).

The dispatch engine is incremental: ready processes live in priority heaps
(so each dispatch decision is O(log n) instead of a rescan of every remaining
process), resource timelines keep their busy intervals sorted with
``bisect.insort`` and binary-search the first interval that can interfere
with a slot query, and the per-path dependency structure (active set,
durations, predecessor/successor maps, critical-path priorities) is computed
once and reused across the many re-adjustment calls the schedule merger
makes for the same path.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from typing import Dict, List, Optional, Tuple

from ..architecture.architecture import Architecture
from ..architecture.mapping import Mapping
from ..architecture.processing_element import ProcessingElement
from ..conditions import Condition
from ..graph.cpg import ConditionalProcessGraph
from ..graph.paths import AlternativePath
from .priorities import PriorityFunction, critical_path_priorities
from .schedule import PathSchedule, ScheduledTask

_EPSILON = 1e-9
_INFINITY = float("inf")


class SchedulingError(RuntimeError):
    """Raised when a path cannot be scheduled (circular or unmapped processes)."""


class _ResourceTimeline:
    """Occupied intervals of one sequential processing element.

    Intervals are kept sorted by insertion (``bisect.insort``); slot queries
    binary-search the first interval that could still overlap the requested
    start instead of scanning from the beginning.  ``_max_length`` bounds how
    far before the requested time an interval may begin and still reach it,
    which makes the binary-searched lower bound exact.
    """

    __slots__ = ("_intervals", "_max_length")

    def __init__(self) -> None:
        self._intervals: List[Tuple[float, float]] = []
        self._max_length = 0.0

    def reserve(self, start: float, end: float) -> None:
        if end - start <= _EPSILON:
            return
        insort(self._intervals, (start, end))
        if end - start > self._max_length:
            self._max_length = end - start

    def earliest_slot(self, ready: float, duration: float) -> float:
        """Earliest start >= ready such that [start, start+duration) is free."""
        if duration <= _EPSILON:
            return ready
        intervals = self._intervals
        start = ready
        # Any interval starting before ready - max_length has already ended by
        # ``ready`` and can never constrain the slot; skip it wholesale.
        index = bisect_left(intervals, (ready - self._max_length,))
        for position in range(index, len(intervals)):
            busy_start, busy_end = intervals[position]
            if busy_end <= start + _EPSILON:
                continue
            if busy_start >= start + duration - _EPSILON:
                break
            start = max(start, busy_end)
        return start

    def intervals(self) -> List[Tuple[float, float]]:
        return list(self._intervals)


class _PathContext:
    """Per-path scheduling structure, computed once and reused across calls."""

    __slots__ = (
        "active",
        "active_set",
        "durations",
        "pes",
        "predecessors",
        "successors",
        "base_indegree",
        "default_priorities",
    )

    def __init__(self) -> None:
        self.active: Tuple[str, ...] = ()
        self.active_set: frozenset = frozenset()
        self.durations: Dict[str, float] = {}
        self.pes: Dict[str, Optional[ProcessingElement]] = {}
        self.predecessors: Dict[str, Tuple[str, ...]] = {}
        self.successors: Dict[str, Tuple[str, ...]] = {}
        self.base_indegree: Dict[str, int] = {}
        self.default_priorities: Optional[Dict[str, float]] = None


class PathListScheduler:
    """List scheduler for a single alternative path.

    Parameters
    ----------
    graph:
        The expanded conditional process graph (communication processes
        inserted).
    mapping:
        Mapping of every non-dummy process to its processing element.
    architecture:
        The target architecture (provides buses and ``tau0``).
    priority_function:
        The priority function used when :meth:`schedule` is called without
        explicit ``priorities`` (default: partial critical path).  Injectable
        so the design-space explorer can switch among the registered
        functions without touching the dispatch engine.
    priority_bias:
        Optional per-process additive perturbation applied on top of the
        computed default priorities (an explorer move; absent processes get
        bias 0).

    The scheduler caches the dependency structure and default priorities of
    every path it sees, keyed on the path's label and active set; it assumes
    the graph, the mapping and the priority configuration do not change
    between calls (build a new scheduler after remapping).
    """

    def __init__(
        self,
        graph: ConditionalProcessGraph,
        mapping: Mapping,
        architecture: Optional[Architecture] = None,
        priority_function: Optional[PriorityFunction] = None,
        priority_bias: Optional[Dict[str, float]] = None,
    ) -> None:
        self._graph = graph
        self._mapping = mapping
        self._architecture = architecture or mapping.architecture
        self._priority_function = priority_function or critical_path_priorities
        self._priority_bias = dict(priority_bias or {})
        self._disjunctions = graph.disjunction_processes()
        self._guards = graph.guards()
        self._path_cache: Dict[tuple, _PathContext] = {}

    # -- public API -------------------------------------------------------------

    def _context_for(self, path: AlternativePath) -> _PathContext:
        key = (path.label, path.active_processes)
        context = self._path_cache.get(key)
        if context is not None:
            return context
        context = _PathContext()
        context.active = tuple(path.active_processes)
        context.active_set = frozenset(context.active)
        for name in context.active:
            process = self._graph[name]
            pe = None if process.is_dummy else self._mapping.get(name)
            if pe is None and not process.is_dummy:
                raise SchedulingError(f"process {name!r} is not mapped")
            context.pes[name] = pe
            context.durations[name] = process.duration_on(pe)
        successors: Dict[str, List[str]] = {name: [] for name in context.active}
        for name in context.active:
            preds = tuple(
                pred
                for pred in self._graph.active_predecessors(name, path.assignment)
                if pred in context.active_set
            )
            context.predecessors[name] = preds
            context.base_indegree[name] = len(preds)
            for pred in preds:
                successors[pred].append(name)
        context.successors = {name: tuple(succ) for name, succ in successors.items()}
        self._path_cache[key] = context
        return context

    def export_context(self, path: AlternativePath) -> Optional[_PathContext]:
        """The cached per-path structure of ``path``, if this scheduler built it.

        Together with :meth:`adopt_context` this lets the design-space
        explorer's incremental evaluator reuse the dependency structure,
        durations and default priorities of a path across scheduler
        instances, instead of rebuilding them per candidate.
        """
        return self._path_cache.get((path.label, path.active_processes))

    def adopt_context(self, path: AlternativePath, context: _PathContext) -> None:
        """Seed the per-path cache with a context built by another scheduler.

        The caller guarantees the context matches this scheduler's view of
        the path: same active processes, same durations on the same mapped
        processing elements, same restricted edge structure and the same
        priority configuration.  (The incremental evaluator derives that
        guarantee from its sub-fingerprint keys; a mismatched adoption would
        silently produce wrong schedules.)
        """
        self._path_cache[(path.label, path.active_processes)] = context

    def schedule(
        self,
        path: AlternativePath,
        *,
        priorities: Optional[Dict[str, float]] = None,
        locked_starts: Optional[Dict[str, float]] = None,
        locked_broadcasts: Optional[Dict[Condition, ScheduledTask]] = None,
        order_hint: Optional[Dict[str, float]] = None,
    ) -> PathSchedule:
        """Schedule one alternative path.

        ``locked_starts`` pins processes to previously fixed activation times
        (schedule adjustment during merging); ``locked_broadcasts`` does the
        same for condition broadcasts.  ``order_hint`` gives the original start
        times used to preserve the relative order of unlocked processes; when
        omitted, partial-critical-path priorities decide the dispatch order.
        """
        locked_starts = dict(locked_starts or {})
        locked_broadcasts = dict(locked_broadcasts or {})
        context = self._context_for(path)
        if priorities is None:
            if context.default_priorities is None:
                computed = self._priority_function(self._graph, path, self._mapping)
                if self._priority_bias:
                    computed = {
                        name: value + self._priority_bias.get(name, 0.0)
                        for name, value in computed.items()
                    }
                context.default_priorities = computed
            priorities = context.default_priorities

        active = context.active
        active_set = context.active_set
        durations = context.durations
        pes = context.pes
        predecessors = context.predecessors

        timelines: Dict[str, _ResourceTimeline] = {}

        def timeline(pe: ProcessingElement) -> _ResourceTimeline:
            return timelines.setdefault(pe.name, _ResourceTimeline())

        # Pre-reserve the intervals of locked processes and broadcasts so that
        # unlocked activities are placed around them.
        for name, start in locked_starts.items():
            if name not in active_set:
                continue
            pe = pes[name]
            if pe is not None and pe.executes_sequentially:
                timeline(pe).reserve(start, start + durations[name])
        for task in locked_broadcasts.values():
            if task.pe is not None and task.pe.executes_sequentially:
                timeline(task.pe).reserve(task.start, task.end)

        scheduled: Dict[str, ScheduledTask] = {}
        broadcasts: Dict[Condition, ScheduledTask] = {}
        determination: Dict[Condition, float] = {}
        disjunction_pes: Dict[Condition, Optional[ProcessingElement]] = {}
        pending_broadcasts: List[
            Tuple[float, Condition, Optional[ProcessingElement]]
        ] = []

        def schedule_broadcast(
            condition: Condition, ready: float, origin: Optional[ProcessingElement]
        ) -> None:
            locked = locked_broadcasts.get(condition)
            if locked is not None:
                broadcasts[condition] = locked
                return
            tau0 = self._architecture.condition_broadcast_time
            buses = self._architecture.broadcast_buses()
            if not buses or len(self._architecture.processors) <= 1:
                # A single-processor system (or one without buses) needs no
                # broadcast: the value is immediately known everywhere.
                broadcasts[condition] = ScheduledTask(
                    f"cond:{condition}", ready, 0.0, None, condition
                )
                return
            best: Optional[Tuple[float, ProcessingElement]] = None
            for bus in buses:
                start = timeline(bus).earliest_slot(ready, tau0)
                if best is None or start < best[0] - _EPSILON:
                    best = (start, bus)
            assert best is not None
            start, bus = best
            timeline(bus).reserve(start, start + tau0)
            broadcasts[condition] = ScheduledTask(
                f"cond:{condition}", start, tau0, bus, condition
            )

        # Ready processes are kept in two heaps: processes with a locked
        # activation time, keyed by (locked start, name), and free processes,
        # keyed by the dispatch priority.  A ready locked process is always
        # dispatched before any free one, matching the paper's adjustment
        # rule; within each class the heap reproduces the order a full scan
        # of the ready set would have chosen.
        indegree = dict(context.base_indegree)
        ready_locked: List[Tuple[float, str]] = []
        ready_free: List[Tuple[float, float, str]] = []

        def push_ready(name: str) -> None:
            if name in locked_starts:
                heapq.heappush(ready_locked, (locked_starts[name], name))
            else:
                hint = order_hint.get(name, _INFINITY) if order_hint else _INFINITY
                heapq.heappush(
                    ready_free, (hint, -priorities.get(name, 0.0), name)
                )

        for name in active:
            if indegree[name] == 0:
                push_ready(name)

        remaining = len(active)
        while remaining:
            # Broadcasts are dispatched as soon as their condition is computed.
            while pending_broadcasts:
                ready, condition, origin = heapq.heappop(pending_broadcasts)
                schedule_broadcast(condition, ready, origin)

            if ready_locked:
                _, name = heapq.heappop(ready_locked)
                start = locked_starts[name]
            elif ready_free:
                _, _, name = heapq.heappop(ready_free)
                data_ready = max(
                    (scheduled[pred].end for pred in predecessors[name]), default=0.0
                )
                pe = pes[name]
                # Requirement 4 of the paper: the run-time scheduler may only
                # activate a process once the conditions its guard depends on
                # are known on the executing processing element.  Delay the
                # start until every such condition value has reached ``pe``.
                knowledge_ready = self._guard_knowledge_time(
                    name, pe, determination, disjunction_pes, broadcasts
                )
                data_ready = max(data_ready, knowledge_ready)
                if pe is None:
                    start = data_ready
                elif pe.executes_sequentially:
                    start = timeline(pe).earliest_slot(data_ready, durations[name])
                    timeline(pe).reserve(start, start + durations[name])
                else:
                    start = data_ready
            else:
                raise SchedulingError(
                    f"no dispatchable process on path {path.label}; "
                    "the subgraph has a dependency cycle or missing processes"
                )
            task = ScheduledTask(name, start, durations[name], pes[name])
            scheduled[name] = task
            remaining -= 1
            for successor in context.successors[name]:
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    push_ready(successor)

            condition = self._disjunctions.get(name)
            if condition is not None:
                determination[condition] = task.end
                disjunction_pes[condition] = pes[name]
                heapq.heappush(
                    pending_broadcasts, (task.end, condition, pes[name])
                )

        while pending_broadcasts:
            ready, condition, origin = heapq.heappop(pending_broadcasts)
            schedule_broadcast(condition, ready, origin)

        return PathSchedule(path, scheduled, broadcasts, determination, disjunction_pes)

    def schedule_all(
        self, paths: List[AlternativePath]
    ) -> Dict[AlternativePath, PathSchedule]:
        """Schedule every alternative path with default priorities."""
        return {path: self.schedule(path) for path in paths}

    # -- internal helpers ---------------------------------------------------------

    def _guard_knowledge_time(
        self,
        name: str,
        pe: Optional[ProcessingElement],
        determination: Dict[Condition, float],
        disjunction_pes: Dict[Condition, Optional[ProcessingElement]],
        broadcasts: Dict[Condition, ScheduledTask],
    ) -> float:
        """Earliest time the guard-relevant condition values are known on ``pe``."""
        guard = self._guards.get(name)
        if guard is None or guard.is_true():
            return 0.0
        ready = 0.0
        for condition in guard.conditions:
            if condition not in determination:
                continue
            origin = disjunction_pes.get(condition)
            if pe is not None and origin is not None and pe == origin:
                known = determination[condition]
            else:
                broadcast = broadcasts.get(condition)
                known = broadcast.end if broadcast is not None else determination[condition]
            ready = max(ready, known)
        return ready
