"""Schedule merging: generation of the global schedule table.

This is the core contribution of the paper (Section 5).  Starting from the
(near) optimal schedules of every alternative path, the merger walks the
binary decision tree of condition values in depth-first order and
progressively fills the schedule table:

* at every tree node, priority is given to the reachable path with the largest
  delay — its schedule is followed and its activation times are fixed in the
  table;
* when a back-step selects a new path, the new path's schedule is *adjusted*:
  processes whose activation time was already fixed in a column that depends
  only on conditions determined before the branching node are locked to that
  time, and the remaining (unlocked) processes are rescheduled to the earliest
  feasible moment while keeping their original relative order;
* a placement that would violate the determinism requirement (the same process
  with different activation times under non-exclusive columns) is a *conflict*;
  following Theorem 2 of the paper the process is moved to the activation time
  of one of the conflicting columns (and, as a safety net beyond the paper,
  delayed until the distinguishing condition is known on its processing
  element).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..architecture.architecture import Architecture
from ..architecture.mapping import Mapping
from ..architecture.processing_element import ProcessingElement
from ..conditions import (
    DEFAULT_UNIVERSE,
    Condition,
    Conjunction,
    masks_from_assignment,
)
from ..graph.cpg import ConditionalProcessGraph
from ..graph.paths import AlternativePath, PathEnumerator
from .list_scheduler import PathListScheduler
from .schedule import PathSchedule, ScheduledTask
from .schedule_table import ScheduleTable, TableEntry
from .trace import DecisionNode, MergeTrace

_EPSILON = 1e-9


class MergeConflictError(RuntimeError):
    """Raised when a table conflict cannot be resolved (should not happen)."""


class _SegmentColumns:
    """Per-segment memo of the "conditions known on PE ``p`` at ``t``" columns.

    Within one placement walk the known assignment and the current schedule
    are fixed, so per processing element the knowledge times of the known
    conditions form one sorted timeline.  A column query then binary-searches
    that timeline and returns a prefix-OR mask pair instead of re-folding
    every known condition per placed item (the masks are cumulative, so ties
    in knowledge time OR together regardless of order — exactly what the
    per-condition loop produced).
    """

    __slots__ = ("_known", "_current", "_by_pe")

    def __init__(
        self, known: Dict[Condition, bool], current: PathSchedule
    ) -> None:
        self._known = known
        self._current = current
        self._by_pe: Dict[Optional[str], Tuple[List[float], List[Tuple[int, int]], Dict[int, Conjunction]]] = {}

    def _timeline(
        self, pe: Optional[ProcessingElement]
    ) -> Tuple[List[float], List[Tuple[int, int]], Dict[int, Conjunction]]:
        key = pe.name if pe is not None else None
        entry = self._by_pe.get(key)
        if entry is None:
            bit_of = DEFAULT_UNIVERSE.bit_of
            events = []
            for condition, value in self._known.items():
                if condition not in self._current.determination_times:
                    continue
                time = self._current.condition_known_time(condition, pe)
                bit = bit_of(condition)
                events.append((time, bit if value else 0, 0 if value else bit))
            events.sort(key=lambda event: event[0])
            times = [event[0] for event in events]
            masks: List[Tuple[int, int]] = []
            pos = neg = 0
            for _, pos_bit, neg_bit in events:
                pos |= pos_bit
                neg |= neg_bit
                masks.append((pos, neg))
            entry = (times, masks, {})
            self._by_pe[key] = entry
        return entry

    def column(self, pe: Optional[ProcessingElement], start: float) -> Conjunction:
        """Conjunction of the condition values known on ``pe`` at ``start``."""
        times, masks, cache = self._timeline(pe)
        index = bisect_right(times, start + _EPSILON)
        column = cache.get(index)
        if column is None:
            pos, neg = masks[index - 1] if index else (0, 0)
            column = Conjunction.from_masks(pos, neg)
            cache[index] = column
        return column


@dataclass
class MergeResult:
    """Everything produced by one run of the schedule merger."""

    table: ScheduleTable
    path_schedules: Dict[Conjunction, PathSchedule]
    trace: MergeTrace
    delta_m: float
    delta_max: float
    paths: List[AlternativePath] = field(default_factory=list)
    #: Completion time of every alternative path executed from the table,
    #: keyed by path label.  ``delta_max`` is their maximum; keeping the whole
    #: map lets consumers (the explorer's mean-path-delay objective) reuse the
    #: per-path table walks the merger already paid for.
    table_path_delays: Dict[Conjunction, float] = field(default_factory=dict)

    @property
    def delay_increase(self) -> float:
        """Absolute increase of the worst-case delay over the ideal ``delta_M``."""
        return self.delta_max - self.delta_m

    @property
    def delay_increase_percent(self) -> float:
        """Percentage increase of ``delta_max`` over ``delta_M`` (Fig. 5 metric)."""
        if self.delta_m <= 0:
            return 0.0
        return 100.0 * (self.delta_max - self.delta_m) / self.delta_m


class ScheduleMerger:
    """Generates a schedule table from the per-path schedules of a CPG."""

    def __init__(
        self,
        graph: ConditionalProcessGraph,
        mapping: Mapping,
        architecture: Optional[Architecture] = None,
        scheduler: Optional[PathListScheduler] = None,
    ) -> None:
        self._graph = graph
        self._mapping = mapping
        self._architecture = architecture or mapping.architecture
        self._scheduler = scheduler or PathListScheduler(
            graph, mapping, self._architecture
        )
        self._guards = graph.guards()
        # Dummy processes never get table entries; the placement walk checks
        # this per item, so resolve it once against a name set instead of a
        # graph probe plus attribute load per check.
        self._dummy_names = frozenset(
            process.name for process in graph.processes if process.is_dummy
        )

    # -- public API -----------------------------------------------------------------

    def merge(
        self,
        paths: Optional[List[AlternativePath]] = None,
        path_schedules: Optional[Dict[Conjunction, PathSchedule]] = None,
    ) -> MergeResult:
        """Run the table-generation algorithm and return the result."""
        if paths is None:
            paths = PathEnumerator(self._graph).paths()
        if not paths:
            raise ValueError("the graph has no alternative paths")
        if path_schedules is None:
            path_schedules = {
                path.label: self._scheduler.schedule(path) for path in paths
            }
        self._paths = list(paths)
        self._optimal = dict(path_schedules)
        # The order hint of a path (the start times of its optimal schedule)
        # never changes during merging; build each dict once instead of on
        # every re-adjustment.
        self._order_hints = {
            label: {name: task.start for name, task in schedule.tasks.items()}
            for label, schedule in self._optimal.items()
        }
        self._table = ScheduleTable(name=f"{self._graph.name}-table")
        # The optimal schedules never change after this point; resolve their
        # delays once instead of rescanning the task maps per back-step.
        self._optimal_delays = {
            label: sched.delay for label, sched in self._optimal.items()
        }
        self._trace = MergeTrace(path_delays=dict(self._optimal_delays))

        initial = max(self._paths, key=lambda p: self._optimal_delays[p.label])
        root = self._explore({}, self._optimal[initial.label].copy(), False, 0)
        self._trace.root = root

        delta_m = max(self._optimal_delays.values())
        table_path_delays = {}
        # Duck-typed: injected scheduler wrappers (e.g. the explorer's staged
        # scheduler) may not expose per-path contexts; fall back to the graph
        # probes inside ``delay_of_path`` then.
        export_context = getattr(self._scheduler, "export_context", None)
        for path in self._paths:
            context = None if export_context is None else export_context(path)
            table_path_delays[path.label] = self._table.delay_of_path(
                self._graph,
                self._mapping,
                path,
                durations=None if context is None else context.durations,
                dummies=self._dummy_names,
            )
        delta_max = max(table_path_delays.values())
        return MergeResult(
            table=self._table,
            path_schedules=dict(self._optimal),
            trace=self._trace,
            delta_m=delta_m,
            delta_max=delta_max,
            paths=list(self._paths),
            table_path_delays=table_path_delays,
        )

    # -- decision-tree exploration ------------------------------------------------------

    def _explore(
        self,
        known: Dict[Condition, bool],
        current: PathSchedule,
        back_step: bool,
        depth: int,
        start_item: int = 0,
    ) -> DecisionNode:
        node = DecisionNode(
            known=Conjunction.from_assignment(known),
            selected_path=current.path.label,
            entered_by_back_step=back_step,
            depth=depth,
        )
        # Placement of activation times, restarted whenever conflict handling
        # re-adjusts the current schedule (which may move later activities).
        # ``start_item`` skips the prefix of the item list an ancestor node
        # already settled for this branch: along one branch the known masks
        # only grow and table entries are only added, so an item placed or
        # found applicable at the parent stays settled in every descendant.
        resume = start_item
        for _ in range(len(current.tasks) + len(current.broadcasts) + 2):
            branch_condition, branch_time = self._next_branch(known, current)
            modified, current, resume = self._place_segment(
                known, current, branch_time, node, start_item
            )
            if not modified:
                break
            start_item = 0  # the schedule was re-adjusted: fresh item list
        else:
            raise MergeConflictError(
                "conflict handling failed to converge while merging schedules"
            )

        node.branch_condition = branch_condition
        node.branch_time = None if branch_condition is None else branch_time
        if branch_condition is None:
            return node

        # First branch (no back-step): the value taken by the current path.
        # The child continues with the same schedule (same item list), so it
        # resumes the placement walk where this node settled it.
        value = current.path.assignment[branch_condition]
        same_known = dict(known)
        same_known[branch_condition] = value
        node.children.append(
            self._explore(same_known, current, False, depth + 1, resume)
        )

        # Back-step: the opposite value; select the reachable path with the
        # largest delay and adjust its schedule to the already fixed times.
        other_known = dict(known)
        other_known[branch_condition] = not value
        reachable = [
            path
            for path in self._paths
            if path.label.consistent_with_partial(other_known)
        ]
        if reachable:
            self._trace.back_steps += 1
            new_path = max(reachable, key=lambda p: self._optimal_delays[p.label])
            adjusted, locked_count = self._adjust(new_path, other_known)
            self._trace.adjustments += 1
            child = self._explore(other_known, adjusted, True, depth + 1)
            child.locked_processes = locked_count
            node.children.append(child)
        return node

    def _next_branch(
        self, known: Dict[Condition, bool], current: PathSchedule
    ) -> Tuple[Optional[Condition], float]:
        """The next condition determined on the current path and its time."""
        pending = [
            (time, condition)
            for condition, time in current.determination_times.items()
            if condition not in known
        ]
        if not pending:
            return None, float("inf")
        time, condition = min(pending, key=lambda item: (item[0], item[1].name))
        return condition, time

    # -- placement of one segment -----------------------------------------------------

    def _place_segment(
        self,
        known: Dict[Condition, bool],
        current: PathSchedule,
        branch_time: float,
        node: DecisionNode,
        start_index: int = 0,
    ) -> Tuple[bool, PathSchedule, int]:
        """Place activation times with start < branch_time into the table.

        Returns ``(True, new_schedule, 0)`` when conflict handling modified
        the current schedule (the caller restarts the walk on the fresh item
        list), ``(False, schedule, settled)`` otherwise, where ``settled`` is
        the length of the leading item prefix now conclusively handled for
        this branch — placed, already applicable, or a dummy.  Descendant
        nodes resume the walk there; a broadcast deferred because its
        condition is not yet known (it is placed in a deeper segment) stops
        the settled prefix from advancing past it.
        """
        known_pos, known_neg = masks_from_assignment(known)
        items = current.all_items_in_order()
        columns = _SegmentColumns(known, current)
        settled = start_index
        conclusive = True
        for index in range(start_index, len(items)):
            item = items[index]
            if item.start >= branch_time - _EPSILON:
                break
            if item.is_broadcast:
                modified, current, done = self._place_broadcast(
                    item, known, known_pos, known_neg, current
                )
            else:
                modified, current, done = self._place_process(
                    item, known, known_pos, known_neg, current, node, columns
                )
            if modified:
                return True, current, 0
            if conclusive and done:
                settled = index + 1
            else:
                conclusive = False
        return False, current, settled

    def _place_process(
        self,
        task: ScheduledTask,
        known: Dict[Condition, bool],
        known_pos: int,
        known_neg: int,
        current: PathSchedule,
        node: DecisionNode,
        columns: _SegmentColumns,
    ) -> Tuple[bool, PathSchedule, bool]:
        name = task.name
        if name in self._dummy_names:
            return False, current, True
        if self._table.applicable_process_entry(name, known_pos, known_neg) is not None:
            return False, current, True
        pe = self._mapping.get(name)
        column = columns.column(pe, task.start)
        conflicts = self._table.conflicting_process_entries(name, column, task.start)
        if not conflicts:
            self._table.add_process_entry(name, column, task.start, pe)
            return False, current, True
        node.conflicts_resolved += 1
        self._trace.conflicts_resolved += 1
        new_current = self._resolve_process_conflict(name, conflicts, known, current)
        return True, new_current, False

    def _place_broadcast(
        self,
        task: ScheduledTask,
        known: Dict[Condition, bool],
        known_pos: int,
        known_neg: int,
        current: PathSchedule,
    ) -> Tuple[bool, PathSchedule, bool]:
        condition = task.condition
        assert condition is not None
        if condition not in known:
            # The broadcast of the condition about to be branched on is placed
            # in the deeper segments, once the condition is part of ``known``
            # — not settled: descendants must revisit this item.
            return False, current, False
        if (
            self._table.applicable_condition_entry(condition, known_pos, known_neg)
            is not None
        ):
            return False, current, True
        column = self._column_for(
            task.pe, task.start, known, current, exclude=condition
        )
        conflicts = self._table.conflicting_condition_entries(
            condition, column, task.start
        )
        if not conflicts:
            self._table.add_condition_entry(condition, column, task.start, task.pe)
            return False, current, True
        # Move the broadcast to the previously fixed time (Theorem 2 applied to
        # the broadcast row) and re-adjust the current schedule around it.
        self._trace.conflicts_resolved += 1
        target = min(conflicts, key=lambda e: e.start)
        forced = ScheduledTask(
            task.name, target.start, task.duration, target.pe or task.pe, condition
        )
        new_current = self._readjust(
            current, extra_locked_broadcasts={condition: forced}
        )
        return True, new_current, False

    # -- columns, locks and conflicts --------------------------------------------------

    def _column_for(
        self,
        pe: Optional[ProcessingElement],
        start: float,
        known: Dict[Condition, bool],
        current: PathSchedule,
        exclude: Optional[Condition] = None,
    ) -> Conjunction:
        """Conjunction of the condition values known on ``pe`` at ``start``."""
        pos = neg = 0
        bit_of = DEFAULT_UNIVERSE.bit_of
        for condition, value in known.items():
            if exclude is not None and condition == exclude:
                continue
            if condition not in current.determination_times:
                continue
            if current.condition_known_time(condition, pe) <= start + _EPSILON:
                if value:
                    pos |= bit_of(condition)
                else:
                    neg |= bit_of(condition)
        return Conjunction.from_masks(pos, neg)

    def _locks_from_table(
        self, known: Dict[Condition, bool]
    ) -> Tuple[Dict[str, float], Dict[Condition, ScheduledTask]]:
        """Previously fixed activation times that apply under ``known``.

        One pass over the table's mask index: a column applies when its masks
        are submasks of the known assignment's masks.
        """
        pos, neg = masks_from_assignment(known)
        process_entries, condition_entries = self._table.applicable_locks(pos, neg)
        locked = {name: entry.start for name, entry in process_entries.items()}
        locked_broadcasts: Dict[Condition, ScheduledTask] = {}
        tau0 = self._architecture.condition_broadcast_time
        for condition, entry in condition_entries.items():
            duration = tau0 if entry.pe is not None else 0.0
            locked_broadcasts[condition] = ScheduledTask(
                f"cond:{condition}", entry.start, duration, entry.pe, condition
            )
        return locked, locked_broadcasts

    def _adjust(
        self, path: AlternativePath, known: Dict[Condition, bool]
    ) -> Tuple[PathSchedule, int]:
        """Adjust a newly selected path's schedule to the already fixed times."""
        locked, locked_broadcasts = self._locks_from_table(known)
        active = set(path.active_processes)
        locked = {
            name: start for name, start in locked.items() if name in active
        }
        locked_broadcasts = {
            condition: task
            for condition, task in locked_broadcasts.items()
            if condition in self._optimal[path.label].determination_times
        }
        adjusted = self._scheduler.schedule(
            path,
            locked_starts=locked,
            locked_broadcasts=locked_broadcasts,
            order_hint=self._order_hints[path.label],
        )
        return adjusted, len(locked)

    def _readjust(
        self,
        current: PathSchedule,
        extra_locked: Optional[Dict[str, float]] = None,
        extra_locked_broadcasts: Optional[Dict[Condition, ScheduledTask]] = None,
    ) -> PathSchedule:
        """Re-run the adjustment of the current path with additional locks."""
        known = dict(current.path.assignment)
        # Locks must reflect what has been placed so far for this tree branch;
        # using the full path assignment keeps exactly the entries consistent
        # with the path, which is a superset of the entries placed so far and
        # therefore safe (they will be placed later at the same times).
        locked, locked_broadcasts = self._locks_from_table(known)
        active = set(current.path.active_processes)
        locked = {
            name: start
            for name, start in locked.items()
            if name in active
        }
        if extra_locked:
            locked.update(extra_locked)
        if extra_locked_broadcasts:
            locked_broadcasts.update(extra_locked_broadcasts)
        return self._scheduler.schedule(
            current.path,
            locked_starts=locked,
            locked_broadcasts=locked_broadcasts,
            order_hint=self._order_hints[current.path.label],
        )

    def _resolve_process_conflict(
        self,
        name: str,
        conflicts: List[TableEntry],
        known: Dict[Condition, bool],
        current: PathSchedule,
    ) -> PathSchedule:
        """Move the process to a conflict-free activation time (Theorem 2)."""
        pe = self._mapping.get(name)
        candidate_times = sorted({entry.start for entry in conflicts})

        # Cheap pre-screening: the column a candidate time would get depends on
        # the condition-knowledge times, which re-adjusting around one moved
        # process almost never changes.  Try the candidates against the current
        # schedule first and only pay for a full re-adjustment on the best one;
        # the per-candidate re-adjustment loop below remains as the fallback.
        for candidate in candidate_times:
            column = self._column_for(pe, candidate, known, current)
            if self._table.conflicting_process_entries(name, column, candidate):
                continue
            adjusted = self._readjust(current, extra_locked={name: candidate})
            column = self._column_for(pe, candidate, known, adjusted)
            if not self._table.conflicting_process_entries(name, column, candidate):
                self._table.add_process_entry(name, column, candidate, pe)
                return adjusted
            break

        for candidate in candidate_times:
            adjusted = self._readjust(current, extra_locked={name: candidate})
            column = self._column_for(pe, candidate, known, adjusted)
            if not self._table.conflicting_process_entries(name, column, candidate):
                self._table.add_process_entry(name, column, candidate, pe)
                return adjusted

        # Safety net beyond Theorem 2: delay the process until some condition
        # distinguishing it from every conflicting column is known on its
        # processing element, which makes the new column mutually exclusive
        # with all conflicting entries.
        fallback_times = sorted(
            {
                current.condition_known_time(condition, pe)
                for condition in known
                if condition in current.determination_times
            }
        )
        for candidate in fallback_times:
            if candidate <= max(candidate_times) + _EPSILON:
                continue
            adjusted = self._readjust(current, extra_locked={name: candidate})
            column = self._column_for(pe, candidate, known, adjusted)
            if not self._table.conflicting_process_entries(name, column, candidate):
                self._table.add_process_entry(name, column, candidate, pe)
                return adjusted

        raise MergeConflictError(
            f"could not resolve the table conflict for process {name!r} "
            f"(conflicting times {candidate_times})"
        )


def merge_schedules(
    graph: ConditionalProcessGraph,
    mapping: Mapping,
    architecture: Optional[Architecture] = None,
) -> MergeResult:
    """Convenience wrapper: enumerate paths, schedule them and merge."""
    merger = ScheduleMerger(graph, mapping, architecture)
    return merger.merge()
