"""Priority functions for list scheduling.

The per-path scheduler of the paper (reference [5]) is a list scheduler; the
quality of a list schedule depends on the priority assigned to each ready
process.  The classic choice — and the one used here by default — is the
*partial critical path*: the length of the longest chain of execution times
from a process to the sink within the active subgraph.  Processes on the
critical path are dispatched first.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..architecture.mapping import Mapping
from ..graph.cpg import ConditionalProcessGraph
from ..graph.paths import AlternativePath

#: Uniform signature of an injectable priority function: given the expanded
#: graph, one alternative path and the mapping, produce the dispatch priority
#: of every process active on the path (larger = dispatched first).
PriorityFunction = Callable[
    [ConditionalProcessGraph, AlternativePath, Mapping], Dict[str, float]
]


def critical_path_priorities(
    graph: ConditionalProcessGraph,
    path: AlternativePath,
    mapping: Mapping,
) -> Dict[str, float]:
    """Length of the longest execution chain from each active process to the sink.

    The length includes the process' own execution time on its mapped
    processing element.  Only processes active on ``path`` are considered.
    """
    active = set(path.active_processes)
    priorities: Dict[str, float] = {}
    successor_map = graph.successor_map()
    mapping_get = mapping.get
    priorities_get = priorities.get
    for name in reversed(graph.topological_order()):
        if name not in active:
            continue
        longest_successor = 0.0
        for successor in successor_map[name]:
            if successor in active:
                value = priorities_get(successor)
                if value is not None and value > longest_successor:
                    longest_successor = value
        priorities[name] = (
            graph[name].duration_on(mapping_get(name)) + longest_successor
        )
    return priorities


def upward_rank_priorities(
    graph: ConditionalProcessGraph,
    path: AlternativePath,
    mapping: Mapping,
) -> Dict[str, float]:
    """HEFT-style upward rank: like the critical path but averaging over speeds.

    With a single speed per mapped processing element this coincides with
    :func:`critical_path_priorities`; it is provided as an alternative priority
    function for ablation experiments.
    """
    return critical_path_priorities(graph, path, mapping)


def static_order_priorities(
    path: AlternativePath, order: Optional[Dict[str, float]] = None
) -> Dict[str, float]:
    """Priorities that reproduce a given order (larger value = dispatched first).

    Used by the schedule-adjustment step of the merging algorithm, which must
    keep the relative order of unlocked processes as in the original per-path
    schedule.

    Not what the ``"static_order"`` registry entry resolves to: this function
    needs a caller-supplied order, so the registry binds that name to
    :func:`topological_order_priorities` (the graph's own static order).
    """
    if order is None:
        return {name: 0.0 for name in path.active_processes}
    largest = max(order.values(), default=0.0)
    return {
        name: largest - order.get(name, largest) for name in path.active_processes
    }


def topological_order_priorities(
    graph: ConditionalProcessGraph,
    path: AlternativePath,
    mapping: Mapping,
) -> Dict[str, float]:
    """Priorities that dispatch ready processes in topological order.

    The simplest member of the registry: earlier processes in the graph's
    topological order get larger priorities, so ties between ready processes
    are broken by graph position instead of path length.  Mainly useful as a
    cheap ablation point for the design-space explorer.
    """
    position = {name: index for index, name in enumerate(graph.topological_order())}
    total = float(len(position))
    return {name: total - position[name] for name in path.active_processes}


#: Registry of the named priority functions the design-space explorer (and any
#: other caller) can switch between.  All entries share the
#: :data:`PriorityFunction` signature; :func:`static_order_priorities` is not
#: listed because it reproduces a *given* order rather than computing one.
PRIORITY_FUNCTIONS: Dict[str, PriorityFunction] = {
    "critical_path": critical_path_priorities,
    "upward_rank": upward_rank_priorities,
    "static_order": topological_order_priorities,
}

#: Registered priority functions whose output for one alternative path depends
#: only on *path-local* state: the path's active processes, their durations on
#: their mapped processing elements and the path-restricted edge structure.
#: ``critical_path`` and ``upward_rank`` qualify — they walk only the active
#: subgraph.  ``static_order`` does **not**: it ranks processes by their
#: position in the topological order of the *whole* expanded graph, so a
#: change anywhere in the graph (e.g. a communication process appearing on an
#: unrelated edge) may shift its priorities.  The explorer's incremental
#: evaluator uses this set to decide whether a memoized per-path schedule can
#: be keyed on the path's sub-fingerprint alone or must also be keyed on the
#: whole expansion; unregistered (user-supplied) functions are conservatively
#: treated as non-local.
PATH_LOCAL_PRIORITY_FUNCTIONS: frozenset = frozenset(
    {"critical_path", "upward_rank"}
)


def priority_function(name: str) -> PriorityFunction:
    """Look up a registered priority function by name."""
    try:
        return PRIORITY_FUNCTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown priority function {name!r}; "
            f"choose from {sorted(PRIORITY_FUNCTIONS)}"
        ) from None
