"""Schedules of individual alternative paths.

The schedule of one alternative path assigns a start time to every process
activated on that path (including communication processes) and to the
condition-broadcast transfers triggered by the disjunction processes of the
path.  These per-path schedules are the input of the schedule-merging
algorithm that produces the global schedule table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..architecture.processing_element import ProcessingElement
from ..conditions import Condition
from ..graph.paths import AlternativePath


@dataclass(frozen=True)
class ScheduledTask:
    """One scheduled activity: a process execution or a condition broadcast."""

    name: str
    start: float
    duration: float
    pe: Optional[ProcessingElement] = None
    condition: Optional[Condition] = field(default=None)

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"negative start time for {self.name!r}")
        if self.duration < 0:
            raise ValueError(f"negative duration for {self.name!r}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def is_broadcast(self) -> bool:
        return self.condition is not None

    def moved_to(self, start: float) -> "ScheduledTask":
        """Return a copy of this task starting at a different time."""
        return ScheduledTask(self.name, start, self.duration, self.pe, self.condition)

    def __str__(self) -> str:
        where = self.pe.name if self.pe is not None else "-"
        return f"{self.name}@{self.start:g}+{self.duration:g} on {where}"


class PathSchedule:
    """The schedule of one alternative path.

    Attributes
    ----------
    path:
        The alternative path this schedule belongs to.
    tasks:
        Scheduled process executions, keyed by process name.
    broadcasts:
        Scheduled condition broadcasts, keyed by condition.
    determination_times:
        The moment each condition value is computed (the finish time of its
        disjunction process) on this path.
    disjunction_pes:
        The processing element that executes each condition's disjunction
        process on this path.
    """

    def __init__(
        self,
        path: AlternativePath,
        tasks: Dict[str, ScheduledTask],
        broadcasts: Dict[Condition, ScheduledTask],
        determination_times: Dict[Condition, float],
        disjunction_pes: Dict[Condition, Optional[ProcessingElement]],
    ) -> None:
        self.path = path
        self.tasks = dict(tasks)
        self.broadcasts = dict(broadcasts)
        self.determination_times = dict(determination_times)
        self.disjunction_pes = dict(disjunction_pes)
        self._items_cache: Optional[
            Tuple[Tuple[ScheduledTask, ...], List[ScheduledTask]]
        ] = None

    # -- basic queries --------------------------------------------------------

    @property
    def delay(self) -> float:
        """The delay of the path: the activation time of the sink process."""
        if not self.tasks:
            return 0.0
        return max(task.end for task in self.tasks.values())

    def start_of(self, process_name: str) -> float:
        return self.tasks[process_name].start

    def end_of(self, process_name: str) -> float:
        return self.tasks[process_name].end

    def __contains__(self, process_name: str) -> bool:
        return process_name in self.tasks

    def __iter__(self) -> Iterator[ScheduledTask]:
        return iter(self.tasks_in_order())

    def tasks_in_order(self) -> List[ScheduledTask]:
        """All process tasks sorted by start time (name breaks ties)."""
        return sorted(self.tasks.values(), key=lambda t: (t.start, t.name))

    def all_items_in_order(self) -> List[ScheduledTask]:
        """Process tasks and broadcasts interleaved by start time.

        The sorted view is cached against a snapshot of the current items
        (the merger walks it on every placement restart, always unchanged);
        mutating ``tasks`` or ``broadcasts`` invalidates it on the next call.
        """
        snapshot = tuple(self.tasks.values()) + tuple(self.broadcasts.values())
        if self._items_cache is None or self._items_cache[0] != snapshot:
            self._items_cache = (
                snapshot,
                sorted(snapshot, key=lambda t: (t.start, t.is_broadcast, t.name)),
            )
        return list(self._items_cache[1])

    def tasks_on(self, pe: ProcessingElement) -> List[ScheduledTask]:
        """All activities (processes and broadcasts) scheduled on one element."""
        items = [t for t in self.tasks.values() if t.pe == pe]
        items += [t for t in self.broadcasts.values() if t.pe == pe]
        return sorted(items, key=lambda t: (t.start, t.name))

    # -- condition knowledge ----------------------------------------------------

    def condition_known_time(
        self, condition: Condition, pe: Optional[ProcessingElement]
    ) -> float:
        """When the value of ``condition`` becomes usable on ``pe``.

        The value is available on the processor that executed the disjunction
        process from the moment the process terminates; every other processing
        element learns it when the broadcast completes.
        """
        if condition not in self.determination_times:
            raise KeyError(f"condition {condition} is not determined on this path")
        determined = self.determination_times[condition]
        origin = self.disjunction_pes.get(condition)
        if pe is not None and origin is not None and pe == origin:
            return determined
        broadcast = self.broadcasts.get(condition)
        if broadcast is None:
            return determined
        return broadcast.end

    def conditions_known_at(
        self,
        pe: Optional[ProcessingElement],
        time: float,
        restrict_to: Optional[Iterable[Condition]] = None,
    ) -> Tuple[Condition, ...]:
        """Conditions whose value is usable on ``pe`` at ``time`` (sorted)."""
        allowed = (
            set(restrict_to) if restrict_to is not None else set(self.determination_times)
        )
        known = [
            condition
            for condition in self.determination_times
            if condition in allowed
            and self.condition_known_time(condition, pe) <= time
        ]
        return tuple(sorted(known))

    # -- resource view ----------------------------------------------------------

    def busy_intervals(self) -> Dict[str, List[Tuple[float, float]]]:
        """Occupied intervals per sequential processing element (sorted)."""
        intervals: Dict[str, List[Tuple[float, float]]] = {}
        for task in list(self.tasks.values()) + list(self.broadcasts.values()):
            if task.pe is None or not task.pe.executes_sequentially:
                continue
            intervals.setdefault(task.pe.name, []).append((task.start, task.end))
        for slots in intervals.values():
            slots.sort()
        return intervals

    def validate_resources(self) -> None:
        """Assert that no two activities overlap on a sequential element."""
        for pe_name, slots in self.busy_intervals().items():
            for (start_a, end_a), (start_b, _end_b) in zip(slots, slots[1:]):
                if start_b < end_a - 1e-9:
                    raise ValueError(
                        f"overlapping activities on {pe_name}: "
                        f"[{start_a:g}, {end_a:g}) and starting {start_b:g}"
                    )

    def copy(self) -> "PathSchedule":
        return PathSchedule(
            self.path,
            dict(self.tasks),
            dict(self.broadcasts),
            dict(self.determination_times),
            dict(self.disjunction_pes),
        )

    def __eq__(self, other: object) -> bool:
        """Value equality including iteration order of the task/broadcast dicts.

        The dicts' insertion order is observable (the flat converters pack in
        it), so two schedules with the same mappings in different orders do
        not compare equal.
        """
        if not isinstance(other, PathSchedule):
            return NotImplemented
        return (
            self.path == other.path
            and tuple(self.tasks.items()) == tuple(other.tasks.items())
            and tuple(self.broadcasts.items()) == tuple(other.broadcasts.items())
            and tuple(self.determination_times.items())
            == tuple(other.determination_times.items())
            and tuple(self.disjunction_pes.items())
            == tuple(other.disjunction_pes.items())
        )

    __hash__ = object.__hash__

    def __repr__(self) -> str:
        return (
            f"PathSchedule(path={self.path.label}, processes={len(self.tasks)}, "
            f"delay={self.delay:g})"
        )
