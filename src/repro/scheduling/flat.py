"""Flat (packed) array forms of :class:`PathSchedule` and :class:`ScheduleTable`.

The evaluate/merge hot path spends most of its time walking Python objects:
``ScheduledTask`` dataclasses, ``TableEntry`` lists, dict-of-mask columns.
This module defines the *packed* counterparts — parallel ``array('q')``
columns plus tuple-of-object palettes — together with lossless converters:

* times (start, duration, determination) are floats; they are packed by
  reinterpreting their IEEE-754 double bit pattern as a signed 64-bit
  integer (:func:`pack_time` / :func:`unpack_time`), which is exact for
  every representable float, so ``from_flat(to_flat(x)) == x`` holds
  bit-for-bit;
* column expressions are already bitmask pairs over the condition universe
  (:class:`~repro.conditions.Conjunction`), so they pack as two ``array('q')``
  columns of ``pos_mask`` / ``neg_mask`` integers;
* non-numeric values (process names, processing elements, conditions, the
  path) live in small palettes, referenced by index (``-1`` means absent).

Table entries are packed in *global insertion order* (the order the merger
added them), because the table's lock queries break ties by insertion
sequence: replaying the same order on :func:`table_from_flat` rebuilds the
row lists, the mask index and the sequence counter identically.

The flat forms are the transport/packing layer of the kernel; the hot loops
themselves (the list scheduler's dispatch loop, the merger's table scans)
operate on the same packed-int representation maintained incrementally
inside :class:`ScheduleTable` and the scheduler's path context.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from struct import Struct
from typing import Dict, Optional, Tuple

from ..architecture.processing_element import ProcessingElement
from ..conditions import Condition, Conjunction
from ..graph.paths import AlternativePath
from .schedule import PathSchedule, ScheduledTask
from .schedule_table import ScheduleTable

_DOUBLE = Struct("<d")
_INT64 = Struct("<q")


def pack_time(value: float) -> int:
    """The IEEE-754 bit pattern of a float, as a signed 64-bit integer.

    Exact for every representable double (including inf and nan payloads);
    for the non-negative times the schedulers produce, integer order equals
    float order, so packed columns sort and compare like their sources.
    """
    return _INT64.unpack(_DOUBLE.pack(value))[0]


def unpack_time(bits: int) -> float:
    """Inverse of :func:`pack_time` (bit-exact)."""
    return _DOUBLE.unpack(_INT64.pack(bits))[0]


def _palette_index(palette: list, seen: dict, value) -> int:
    """Index of ``value`` in the palette, appending it on first sight."""
    if value is None:
        return -1
    key = id(value)
    index = seen.get(key)
    if index is None:
        index = len(palette)
        palette.append(value)
        seen[key] = index
    return index


@dataclass(frozen=True)
class FlatPathSchedule:
    """One path schedule as parallel packed columns.

    Process tasks and condition broadcasts each get a block of parallel
    columns (name/condition palette index, start bits, duration bits, PE
    palette index); determination times and disjunction PEs pack the same
    way.  Column order is the source dict's insertion order, so the
    round-trip through :func:`schedule_from_flat` reproduces the original
    ``PathSchedule`` exactly, iteration order included.
    """

    path: AlternativePath
    #: Shared palette of processing elements; ``-1`` indexes mean "no PE".
    pes: Tuple[Optional[ProcessingElement], ...]
    #: Process-task columns, parallel by position.
    task_names: Tuple[str, ...]
    task_starts: array
    task_durations: array
    task_pes: array
    #: Conditions of tasks that carry one (rare outside broadcasts); -1 = none.
    task_conditions: array
    #: Broadcast columns, parallel by position.
    broadcast_conditions: Tuple[Condition, ...]
    broadcast_names: Tuple[str, ...]
    broadcast_starts: array
    broadcast_durations: array
    broadcast_pes: array
    #: Determination columns (condition palette shared with broadcasts is not
    #: assumed: determinations may cover conditions without a broadcast).
    determination_conditions: Tuple[Condition, ...]
    determination_times: array
    #: Disjunction-PE columns.
    disjunction_conditions: Tuple[Condition, ...]
    disjunction_pes: array
    #: Palette backing ``task_conditions`` (usually empty).
    conditions: Tuple[Condition, ...] = field(default=())


def schedule_to_flat(schedule: PathSchedule) -> FlatPathSchedule:
    """Pack a :class:`PathSchedule` into parallel ``array('q')`` columns."""
    pes: list = []
    pe_seen: dict = {}
    conditions: list = []
    condition_seen: dict = {}
    pack = pack_time

    task_names = []
    task_starts = array("q")
    task_durations = array("q")
    task_pes = array("q")
    task_conditions = array("q")
    for name, task in schedule.tasks.items():
        task_names.append(name)
        task_starts.append(pack(task.start))
        task_durations.append(pack(task.duration))
        task_pes.append(_palette_index(pes, pe_seen, task.pe))
        task_conditions.append(
            _palette_index(conditions, condition_seen, task.condition)
        )

    broadcast_conditions = []
    broadcast_names = []
    broadcast_starts = array("q")
    broadcast_durations = array("q")
    broadcast_pes = array("q")
    for condition, task in schedule.broadcasts.items():
        broadcast_conditions.append(condition)
        broadcast_names.append(task.name)
        broadcast_starts.append(pack(task.start))
        broadcast_durations.append(pack(task.duration))
        broadcast_pes.append(_palette_index(pes, pe_seen, task.pe))

    determination_conditions = tuple(schedule.determination_times)
    determination_times = array(
        "q", (pack(time) for time in schedule.determination_times.values())
    )
    disjunction_conditions = tuple(schedule.disjunction_pes)
    disjunction_pes = array(
        "q",
        (
            _palette_index(pes, pe_seen, pe)
            for pe in schedule.disjunction_pes.values()
        ),
    )

    return FlatPathSchedule(
        path=schedule.path,
        pes=tuple(pes),
        task_names=tuple(task_names),
        task_starts=task_starts,
        task_durations=task_durations,
        task_pes=task_pes,
        task_conditions=task_conditions,
        broadcast_conditions=tuple(broadcast_conditions),
        broadcast_names=tuple(broadcast_names),
        broadcast_starts=broadcast_starts,
        broadcast_durations=broadcast_durations,
        broadcast_pes=broadcast_pes,
        determination_conditions=determination_conditions,
        determination_times=determination_times,
        disjunction_conditions=disjunction_conditions,
        disjunction_pes=disjunction_pes,
        conditions=tuple(conditions),
    )


def schedule_from_flat(flat: FlatPathSchedule) -> PathSchedule:
    """Rebuild the :class:`PathSchedule` a flat form was packed from."""
    pes = flat.pes
    conditions = flat.conditions
    unpack = unpack_time

    tasks: Dict[str, ScheduledTask] = {}
    for position, name in enumerate(flat.task_names):
        pe_index = flat.task_pes[position]
        condition_index = flat.task_conditions[position]
        tasks[name] = ScheduledTask(
            name,
            unpack(flat.task_starts[position]),
            unpack(flat.task_durations[position]),
            pes[pe_index] if pe_index >= 0 else None,
            conditions[condition_index] if condition_index >= 0 else None,
        )

    broadcasts: Dict[Condition, ScheduledTask] = {}
    for position, condition in enumerate(flat.broadcast_conditions):
        pe_index = flat.broadcast_pes[position]
        broadcasts[condition] = ScheduledTask(
            flat.broadcast_names[position],
            unpack(flat.broadcast_starts[position]),
            unpack(flat.broadcast_durations[position]),
            pes[pe_index] if pe_index >= 0 else None,
            condition,
        )

    determination_times = {
        condition: unpack(flat.determination_times[position])
        for position, condition in enumerate(flat.determination_conditions)
    }
    disjunction_pes = {
        condition: (
            pes[flat.disjunction_pes[position]]
            if flat.disjunction_pes[position] >= 0
            else None
        )
        for position, condition in enumerate(flat.disjunction_conditions)
    }
    return PathSchedule(
        flat.path, tasks, broadcasts, determination_times, disjunction_pes
    )


@dataclass(frozen=True)
class FlatScheduleTable:
    """One schedule table as packed entry columns in global insertion order.

    Each position is one table entry: its row (an index into the process-name
    or condition palette, signalled by ``row_kinds``), its column expression
    as a ``pos_mask``/``neg_mask`` integer pair, its start-time bits and its
    PE palette index.  Replaying the positions in order through the table's
    ``add_*_entry`` API rebuilds row lists, the mask index and the insertion
    sequence identically — the tie-break order of lock queries survives the
    round trip.
    """

    name: str
    process_names: Tuple[str, ...]
    conditions: Tuple[Condition, ...]
    pes: Tuple[Optional[ProcessingElement], ...]
    #: 0 = process row, 1 = condition row, parallel with the other columns.
    row_kinds: array
    row_keys: array
    pos_masks: array
    neg_masks: array
    starts: array
    entry_pes: array


def table_to_flat(table: ScheduleTable) -> FlatScheduleTable:
    """Pack a :class:`ScheduleTable` into parallel ``array('q')`` columns."""
    process_names: list = []
    process_seen: dict = {}
    conditions: list = []
    condition_seen: dict = {}
    pes: list = []
    pe_seen: dict = {}
    pack = pack_time

    row_kinds = array("q")
    row_keys = array("q")
    pos_masks = array("q")
    neg_masks = array("q")
    starts = array("q")
    entry_pes = array("q")
    for is_condition, key, entry in table.entries_in_order():
        row_kinds.append(1 if is_condition else 0)
        if is_condition:
            index = condition_seen.get(key)
            if index is None:
                index = len(conditions)
                conditions.append(key)
                condition_seen[key] = index
        else:
            index = process_seen.get(key)
            if index is None:
                index = len(process_names)
                process_names.append(key)
                process_seen[key] = index
        row_keys.append(index)
        column = entry.column
        pos_masks.append(column.pos_mask)
        neg_masks.append(column.neg_mask)
        starts.append(pack(entry.start))
        entry_pes.append(_palette_index(pes, pe_seen, entry.pe))

    return FlatScheduleTable(
        name=table.name,
        process_names=tuple(process_names),
        conditions=tuple(conditions),
        pes=tuple(pes),
        row_kinds=row_kinds,
        row_keys=row_keys,
        pos_masks=pos_masks,
        neg_masks=neg_masks,
        starts=starts,
        entry_pes=entry_pes,
    )


def table_from_flat(flat: FlatScheduleTable) -> ScheduleTable:
    """Rebuild the :class:`ScheduleTable` a flat form was packed from."""
    table = ScheduleTable(name=flat.name)
    unpack = unpack_time
    for position in range(len(flat.row_kinds)):
        column = Conjunction.from_masks(
            flat.pos_masks[position], flat.neg_masks[position]
        )
        start = unpack(flat.starts[position])
        pe_index = flat.entry_pes[position]
        pe = flat.pes[pe_index] if pe_index >= 0 else None
        if flat.row_kinds[position]:
            table.add_condition_entry(
                flat.conditions[flat.row_keys[position]], column, start, pe
            )
        else:
            table.add_process_entry(
                flat.process_names[flat.row_keys[position]], column, start, pe
            )
    return table


__all__ = [
    "FlatPathSchedule",
    "FlatScheduleTable",
    "pack_time",
    "unpack_time",
    "schedule_from_flat",
    "schedule_to_flat",
    "table_from_flat",
    "table_to_flat",
]
