"""Counters, gauges and histograms with mergeable snapshots.

The runtime's existing statistics (:class:`~repro.exploration.CacheStats`,
:class:`~repro.exploration.StageStats`,
:class:`~repro.exploration.ResilienceStats`) are purpose-built frozen
dataclasses; this module adds the *generic* layer underneath them — a
:class:`MetricsRegistry` any instrumented component can write named metrics
into, and a frozen :class:`MetricsSnapshot` whose :meth:`~MetricsSnapshot.merge`
folds per-worker registries into one view (counters sum, gauges keep the
maximum, histograms combine count/total/min/max).  That merge is what lets
pool workers each keep a private registry and still report one coherent
per-run profile.

Metric naming convention (dotted, lowercase; the full list is documented in
``docs/observability.md``):

* ``stage.<stage>.seconds`` — histograms of per-stage wall time
  (``expansion``, ``path_schedule``, ``merge``, ``merge_readjust``);
* ``evaluate.seconds`` — histogram of whole-candidate evaluation latency;
* ``engine.<engine>.cycle.seconds`` — histogram of cycle/generation wall
  time per engine;
* ``cache.hits`` / ``cache.misses`` — whole-candidate cache counters;
* ``pool.*`` — queue depth gauge, per-unit latency histogram and the
  resilience counters (retries, timeouts, worker_restarts, quarantined,
  injected, degraded).

The disabled default is simply ``metrics=None`` at every instrumentation
site: one ``is not None`` check and nothing else, so the disabled path costs
~zero (the BENCH_core ``incremental``/``resilience`` records gate this).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional


@dataclass(frozen=True)
class HistogramStats:
    """Frozen summary of one histogram: count, total, min, max (and mean)."""

    count: int = 0
    total: float = 0.0
    minimum: float = 0.0
    maximum: float = 0.0

    @property
    def mean(self) -> float:
        """The arithmetic mean of the observed values (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def combined(self, other: "HistogramStats") -> "HistogramStats":
        """The summary of both histograms' observations pooled together."""
        if not other.count:
            return self
        if not self.count:
            return other
        return HistogramStats(
            count=self.count + other.count,
            total=self.total + other.total,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """A frozen, mergeable view of one registry's metrics.

    ``merge`` is associative and commutative, so per-worker snapshots fold
    in any order: counters sum, gauges keep the maximum (the convention that
    makes high-water marks like queue depth meaningful across workers) and
    histograms pool their observations.
    """

    counters: Mapping[str, float] = field(default_factory=dict)
    gauges: Mapping[str, float] = field(default_factory=dict)
    histograms: Mapping[str, HistogramStats] = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Fold another snapshot into this one; returns a new snapshot."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0.0) + value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            gauges[name] = max(gauges.get(name, value), value)
        histograms = dict(self.histograms)
        for name, stats in other.histograms.items():
            mine = histograms.get(name)
            histograms[name] = stats if mine is None else mine.combined(stats)
        return MetricsSnapshot(
            counters=counters, gauges=gauges, histograms=histograms
        )

    def stage_seconds(self) -> Dict[str, float]:
        """Total wall-clock seconds per pipeline stage, from the histograms.

        Extracts every ``stage.<name>.seconds`` histogram into a plain
        ``{stage name: total seconds}`` dict — the breakdown surfaced in
        :class:`~repro.exploration.ExplorationResult` and the CLI's
        ``--metrics`` output.  Empty when nothing was timed.
        """
        breakdown: Dict[str, float] = {}
        for name, stats in self.histograms.items():
            if name.startswith("stage.") and name.endswith(".seconds"):
                stage = name[len("stage.") : -len(".seconds")]
                breakdown[stage] = stats.total
        return breakdown


class MetricsRegistry:
    """Thread-safe named counters, gauges and histograms.

    One registry serves a whole run; components write with :meth:`count`,
    :meth:`gauge` and :meth:`observe`, and readers take frozen
    :meth:`snapshot` views.  Writes take one lock — the instrumented sites
    are per-cycle/per-evaluation, not per-inner-loop, so contention is not a
    concern; the *disabled* path never reaches the registry at all
    (``metrics=None`` guards at every site).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, HistogramStats] = {}

    def count(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` (default 1) to the named counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge (merges keep the maximum across workers)."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named histogram."""
        with self._lock:
            stats = self._histograms.get(name)
            if stats is None:
                self._histograms[name] = HistogramStats(
                    count=1, total=value, minimum=value, maximum=value
                )
            else:
                self._histograms[name] = HistogramStats(
                    count=stats.count + 1,
                    total=stats.total + value,
                    minimum=min(stats.minimum, value),
                    maximum=max(stats.maximum, value),
                )

    def snapshot(self) -> MetricsSnapshot:
        """A frozen copy of the current counters, gauges and histograms."""
        with self._lock:
            return MetricsSnapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                histograms=dict(self._histograms),
            )


def merge_snapshots(*snapshots: Optional[MetricsSnapshot]) -> MetricsSnapshot:
    """Fold any number of (possibly None) snapshots into one view."""
    merged = MetricsSnapshot()
    for snapshot in snapshots:
        if snapshot is not None:
            merged = merged.merge(snapshot)
    return merged
