"""Observability: structured tracing, metrics and profiling hooks.

The exploration runtime reports *what* happened (cache hit rates, fault
counters, trajectories) but — before this package — not *where wall-clock
time goes*.  This package is the missing timing spine, mirroring how the
source paper itself argues (measured schedule-table generation time):

* :class:`Tracer` — structured span/event records with run ids, monotonic
  timestamps and parent-span nesting, emitted to a :class:`JsonlSink` (the
  ``repro-cpg explore --trace FILE`` format) or an in-memory
  :class:`RingBufferSink`; the disabled default (:data:`NULL_TRACER`) costs
  one attribute access and allocates nothing;
* :class:`MetricsRegistry` — named counters, gauges and histograms whose
  frozen :class:`MetricsSnapshot` views merge, so per-worker metrics fold
  into one run-level profile;
* :func:`aggregate_trace` / :func:`format_trace_report` — the
  ``repro-cpg trace-report`` aggregation from a raw trace to the per-stage /
  per-engine wall-time tables that seed the evaluator-flattening work.

Everything here is dependency-free and imports nothing from the rest of
``repro`` (except the table formatter, lazily), so any layer — graph,
scheduling, exploration, CLI — can instrument itself without import cycles.
See ``docs/observability.md`` for the record schema and the metric-name
catalogue.
"""

from .metrics import (
    HistogramStats,
    MetricsRegistry,
    MetricsSnapshot,
    merge_snapshots,
)
from .report import (
    StageProfile,
    TraceReport,
    aggregate_trace,
    format_trace_report,
)
from .trace import (
    NULL_TRACER,
    RECORD_KEYS,
    TRACE_SCHEMA_VERSION,
    JsonlSink,
    NullTracer,
    RingBufferSink,
    Span,
    TraceError,
    Tracer,
    iter_spans,
    read_trace,
    tracer_or_null,
    validate_record,
)

__all__ = [
    "HistogramStats",
    "JsonlSink",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_TRACER",
    "NullTracer",
    "RECORD_KEYS",
    "RingBufferSink",
    "Span",
    "StageProfile",
    "TRACE_SCHEMA_VERSION",
    "TraceError",
    "TraceReport",
    "Tracer",
    "aggregate_trace",
    "format_trace_report",
    "iter_spans",
    "merge_snapshots",
    "read_trace",
    "tracer_or_null",
    "validate_record",
]
