"""Structured tracing: spans and events over a strict, append-only schema.

The exploration runtime knows its *hit rates* (whole-candidate cache, stage
caches) but, before this module, not where wall-clock time goes.  A
:class:`Tracer` records that as a flat stream of JSON-compatible dicts — one
record per closed *span* (a named, timed region: an engine run, a search
cycle, a pipeline stage) or per *event* (a point occurrence: a retry, an
injected fault, a pool respawn) — that ``repro-cpg trace-report`` aggregates
into the per-stage/per-engine time profile seeding the evaluator-flattening
work (ROADMAP item 5).

Schema (version :data:`TRACE_SCHEMA_VERSION`)
---------------------------------------------
Every record is a flat dict with exactly these keys:

``type``
    ``"span"`` or ``"event"``.
``run``
    The tracer's run id (one id per :class:`Tracer`), so merged trace files
    stay attributable.
``seq``
    A per-tracer monotonic sequence number.  Records are emitted when a span
    *closes*, so children precede their parents in the stream; ``seq``
    restores emission order after any merge.
``id`` / ``parent``
    The record's span id and the id of the enclosing span (``None`` at top
    level).  Events carry their own id too, so they are addressable.
``name``
    The span/stage/event name (e.g. ``"engine"``, ``"stage.expansion"``,
    ``"resilience.retry"``).
``t0``
    Start time on the monotonic ``time.perf_counter`` clock, relative to the
    tracer's creation.  Monotonic and subtraction-safe within one run;
    *not* a wall-clock timestamp.
``dt``
    Span duration in seconds (``0.0`` for events).
``attrs``
    A flat dict of JSON-scalar attributes (engine name, cycle number, cache
    hit flags, error text…).

Disabled-path cost
------------------
The default tracer is the module-level :data:`NULL_TRACER` singleton: its
``span()`` returns one shared no-op context manager and ``event()`` returns
immediately, so instrumented code paths pay one attribute call and no
allocation when tracing is off (guarded by ``Tracer.enabled`` where even
that matters).  Hot inner loops additionally take ``tracer=None`` and skip
instrumentation entirely.

Nesting uses a per-thread span stack (``threading.local``), so spans opened
by thread-pool workers nest within their own thread and never corrupt the
coordinator's stack.  Closing a span pops every span opened above it first
(emitting them), so an early ``break`` out of an instrumented loop cannot
leak open spans.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

#: Version tag of the trace record schema documented in the module docstring.
TRACE_SCHEMA_VERSION = 1

#: The exact key set of every trace record (strict: no extras, none missing).
RECORD_KEYS = ("type", "run", "seq", "id", "parent", "name", "t0", "dt", "attrs")

_SCALAR_TYPES = (str, int, float, bool, type(None))


class TraceError(ValueError):
    """A trace record or trace file violates the schema."""


def validate_record(record: Any) -> Dict[str, Any]:
    """Check one record against the strict schema; return it or raise.

    Raises :class:`TraceError` naming the first violation: wrong container
    type, missing/unknown keys, wrong field types, negative times, or
    non-scalar attribute values.
    """
    if not isinstance(record, dict):
        raise TraceError(f"trace record is not an object: {record!r}")
    missing = [key for key in RECORD_KEYS if key not in record]
    if missing:
        raise TraceError(f"trace record missing keys {missing}: {record!r}")
    unknown = [key for key in record if key not in RECORD_KEYS]
    if unknown:
        raise TraceError(f"trace record has unknown keys {unknown}: {record!r}")
    if record["type"] not in ("span", "event"):
        raise TraceError(f"unknown record type {record['type']!r}")
    if not isinstance(record["run"], str) or not record["run"]:
        raise TraceError(f"run id must be a non-empty string: {record['run']!r}")
    for key in ("seq", "id"):
        if not isinstance(record[key], int) or isinstance(record[key], bool):
            raise TraceError(f"{key} must be an integer: {record[key]!r}")
    parent = record["parent"]
    if parent is not None and (not isinstance(parent, int) or isinstance(parent, bool)):
        raise TraceError(f"parent must be an integer or null: {parent!r}")
    if not isinstance(record["name"], str) or not record["name"]:
        raise TraceError(f"name must be a non-empty string: {record['name']!r}")
    for key in ("t0", "dt"):
        value = record[key]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TraceError(f"{key} must be a number: {value!r}")
        if value < 0:
            raise TraceError(f"{key} must be non-negative: {value!r}")
    attrs = record["attrs"]
    if not isinstance(attrs, dict):
        raise TraceError(f"attrs must be an object: {attrs!r}")
    for key, value in attrs.items():
        if not isinstance(key, str):
            raise TraceError(f"attr keys must be strings: {key!r}")
        if not isinstance(value, _SCALAR_TYPES):
            raise TraceError(
                f"attr {key!r} must be a JSON scalar, got {type(value).__name__}"
            )
    return record


class JsonlSink:
    """Appends one JSON object per line to a file (the on-disk trace format).

    The file is opened lazily on the first record and flushed per record, so
    a crashed run still leaves a readable prefix.  Use as a context manager
    or call :meth:`close`.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        self._handle = None

    @property
    def path(self) -> Path:
        """Where the trace is written."""
        return self._path

    def emit(self, record: Dict[str, Any]) -> None:
        """Write one record as a JSON line."""
        if self._handle is None:
            self._handle = self._path.open("w", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class RingBufferSink:
    """Keeps the most recent ``capacity`` records in memory.

    The in-process sink for tests and for always-on tracing with bounded
    memory (the future ``serve`` endpoint can expose the ring as its recent
    activity feed).
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._records: List[Dict[str, Any]] = []

    @property
    def records(self) -> List[Dict[str, Any]]:
        """The retained records, oldest first."""
        return list(self._records)

    def emit(self, record: Dict[str, Any]) -> None:
        """Retain one record, evicting the oldest past capacity."""
        self._records.append(record)
        if len(self._records) > self._capacity:
            del self._records[0 : len(self._records) - self._capacity]

    def close(self) -> None:
        """No-op (records stay readable after closing)."""


class Span:
    """One open, timed region; created by :meth:`Tracer.span`.

    Usable as a context manager or closed explicitly with :meth:`close`
    (loop bodies with ``break`` statements close explicitly; closing pops
    and emits any still-open child spans first, so early exits cannot leak).
    """

    __slots__ = ("_tracer", "span_id", "name", "attrs", "_t0", "_closed")

    def __init__(self, tracer: "Tracer", span_id: int, name: str, attrs: Dict) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.name = name
        self.attrs = attrs
        self._t0 = time.perf_counter()
        self._closed = False

    def close(self, **attrs: Any) -> float:
        """Close the span (and any open descendants); return its duration.

        Keyword arguments are added to the span's attributes — use them for
        outcomes known only at the end (``feasible=...``, ``hit=...``).
        """
        if self._closed:
            return 0.0
        self._closed = True
        if attrs:
            self.attrs.update(attrs)
        return self._tracer._close_span(self, time.perf_counter())

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _NullSpan:
    """The shared no-op span of :data:`NULL_TRACER` (never allocated twice)."""

    __slots__ = ()

    def close(self, **attrs: Any) -> float:
        """No-op; returns 0.0 (callers time independently when they care)."""
        return 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a constant-time no-op.

    ``span()`` always returns the one module-level :data:`_NULL_SPAN`
    instance — no allocation on the disabled path, which tests assert by
    identity (``tracer.span("a") is tracer.span("b")``).
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        """Return the shared no-op span."""
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        """Discard the event."""

    def close(self) -> None:
        """No-op."""


#: The process-wide disabled tracer; instrumented layers default to it.
NULL_TRACER = NullTracer()


class Tracer:
    """Emits schema-valid span/event records to a sink.

    Parameters
    ----------
    sink:
        A :class:`JsonlSink`, :class:`RingBufferSink`, or anything with an
        ``emit(record)`` method.
    run_id:
        Identifier stamped on every record.  Defaults to ``"run"``; callers
        that merge traces from several runs should pass something unique
        (the CLI stamps the problem seed).

    Span nesting follows a per-thread stack: ``span()`` pushes, closing pops
    (including any spans left open above — see :meth:`Span.close`).  ``seq``
    numbers are allocated under a lock, so records from thread-mode workers
    interleave without ever colliding.
    """

    enabled = True

    def __init__(self, sink, run_id: str = "run") -> None:
        self._sink = sink
        self._run_id = run_id
        self._origin = time.perf_counter()
        self._lock = threading.Lock()
        self._next_id = 0
        self._next_seq = 0
        self._local = threading.local()

    @property
    def run_id(self) -> str:
        """The id stamped on every record of this tracer."""
        return self._run_id

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _allocate_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    def _emit(self, record: Dict[str, Any]) -> None:
        with self._lock:
            record["seq"] = self._next_seq
            self._next_seq += 1
            self._sink.emit(record)

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a span nested under the current thread's innermost span."""
        span = Span(self, self._allocate_id(), name, attrs)
        self._stack().append(span)
        return span

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point event under the current thread's innermost span."""
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        self._emit({
            "type": "event",
            "run": self._run_id,
            "seq": 0,  # overwritten by _emit
            "id": self._allocate_id(),
            "parent": parent,
            "name": name,
            "t0": round(time.perf_counter() - self._origin, 9),
            "dt": 0.0,
            "attrs": attrs,
        })

    def _close_span(self, span: Span, ended: float) -> float:
        stack = self._stack()
        # Close (and emit) every span opened above the one being closed: an
        # early break out of an instrumented loop must not leak open spans.
        # Each close pops itself, so the enclosing spans stay on the stack
        # while their descendants emit (keeping parent ids correct).
        while stack and stack[-1] is not span:
            top = stack[-1]
            if top._closed:
                stack.pop()
            else:
                top.close()
        if stack:
            stack.pop()
        parent = stack[-1].span_id if stack else None
        t0 = span._t0 - self._origin
        duration = max(0.0, ended - span._t0)
        self._emit({
            "type": "span",
            "run": self._run_id,
            "seq": 0,  # overwritten by _emit
            "id": span.span_id,
            "parent": parent,
            "name": span.name,
            "t0": round(max(0.0, t0), 9),
            "dt": round(duration, 9),
            "attrs": span.attrs,
        })
        return duration

    def close(self) -> None:
        """Close any spans this thread left open, then the sink."""
        stack = self._stack()
        while stack:
            stack[-1].close()
        self._sink.close()


def read_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load and validate a JSONL trace file; return its records in file order.

    Raises :class:`TraceError` on the first malformed line or schema
    violation (with its line number), ``FileNotFoundError`` on a missing
    file.
    """
    records: List[Dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceError(
                    f"{path}:{line_number}: not valid JSON: {error}"
                ) from error
            try:
                records.append(validate_record(record))
            except TraceError as error:
                raise TraceError(f"{path}:{line_number}: {error}") from None
    return records


def iter_spans(records: List[Dict[str, Any]]) -> Iterator[Dict[str, Any]]:
    """Yield the span records of a validated record list."""
    for record in records:
        if record["type"] == "span":
            yield record


#: Union of the enabled and disabled tracer types, for annotations.
AnyTracer = Union[Tracer, NullTracer]


def tracer_or_null(tracer: Optional[AnyTracer]) -> AnyTracer:
    """Normalise an optional tracer to a guaranteed-callable one."""
    return tracer if tracer is not None else NULL_TRACER
