"""Trace aggregation: from a span/event stream to a time-profile table.

``repro-cpg trace-report FILE`` feeds a validated trace (see
:mod:`repro.observability.trace`) through :func:`aggregate_trace` and prints
the result: wall-clock totals per pipeline stage, the same broken down per
engine (stage spans are attributed to the nearest enclosing ``engine`` span
via the recorded parent ids), and a tally of point events (retries, injected
faults, respawns).  This is the profile ROADMAP item 5 asks for — it answers
"where does evaluation time actually go" per engine without re-running
anything.

Stage spans are named ``stage.<name>``; the canonical stage set is
``expansion`` (communication expansion + path enumeration),
``path_schedule`` (one optimal list schedule per alternative path),
``merge`` (schedule-table merging, wall time *including* re-adjustments) and
``merge_readjust`` (the locked re-scheduling requests the merger issues —
a sub-stage of ``merge``, reported separately but not added to totals
twice).  Spans emitted by a process-mode pool's workers never appear (the
workers are separate processes; see ``docs/observability.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

STAGE_PREFIX = "stage."

#: Stages whose time is already contained in another stage's span and must
#: not be double-counted in share-of-total columns.
SUBSTAGES = {"merge_readjust": "merge"}


@dataclass(frozen=True)
class StageProfile:
    """Aggregated wall time of one stage (or one stage within one engine)."""

    name: str
    count: int
    total_seconds: float

    @property
    def mean_seconds(self) -> float:
        """Mean span duration (0.0 when the stage never ran)."""
        return self.total_seconds / self.count if self.count else 0.0


@dataclass
class TraceReport:
    """Everything :func:`aggregate_trace` extracts from one trace.

    ``stages`` and ``per_engine`` hold :class:`StageProfile` aggregates —
    overall and per attributed engine; ``events`` counts point events by
    name; ``engines`` maps engine names to their total span time; ``spans``
    and ``records`` are the raw counts behind the headline line.
    """

    stages: Dict[str, StageProfile] = field(default_factory=dict)
    per_engine: Dict[Tuple[str, str], StageProfile] = field(default_factory=dict)
    events: Dict[str, int] = field(default_factory=dict)
    engines: Dict[str, float] = field(default_factory=dict)
    spans: int = 0
    records: int = 0

    @property
    def profiled_seconds(self) -> float:
        """Summed stage time, sub-stages excluded (no double counting)."""
        return sum(
            profile.total_seconds
            for name, profile in self.stages.items()
            if name not in SUBSTAGES
        )

    def stage_rows(self) -> List[List[object]]:
        """Table rows ``[stage, count, total s, mean ms, share]``, by time."""
        total = self.profiled_seconds
        rows = []
        for profile in sorted(
            self.stages.values(), key=lambda p: (-p.total_seconds, p.name)
        ):
            if profile.name in SUBSTAGES:
                share = f"(in {SUBSTAGES[profile.name]})"
            elif total > 0:
                share = f"{100.0 * profile.total_seconds / total:.1f}%"
            else:
                share = "-"
            rows.append([
                profile.name,
                profile.count,
                f"{profile.total_seconds:.4f}",
                f"{1000.0 * profile.mean_seconds:.3f}",
                share,
            ])
        return rows

    def engine_rows(self) -> List[List[object]]:
        """Table rows ``[engine, stage, count, total s, mean ms]``.

        Stage spans that no ``engine`` span encloses (e.g. the seed
        evaluation of a bare evaluator, or stages timed outside any engine)
        are grouped under ``-``.
        """
        rows = []
        for (engine, stage), profile in sorted(
            self.per_engine.items(),
            key=lambda item: (item[0][0], -item[1].total_seconds, item[0][1]),
        ):
            rows.append([
                engine,
                stage,
                profile.count,
                f"{profile.total_seconds:.4f}",
                f"{1000.0 * profile.mean_seconds:.3f}",
            ])
        return rows

    def event_rows(self) -> List[List[object]]:
        """Table rows ``[event, count]``, most frequent first."""
        return [
            [name, count]
            for name, count in sorted(
                self.events.items(), key=lambda item: (-item[1], item[0])
            )
        ]


def _engine_of(
    record: Dict, spans_by_id: Dict[int, Dict], cache: Dict[int, str]
) -> str:
    """The engine name of the nearest enclosing ``engine`` span, or ``-``."""
    chain = []
    parent = record["parent"]
    engine = "-"
    while parent is not None:
        cached = cache.get(parent)
        if cached is not None:
            engine = cached
            break
        node = spans_by_id.get(parent)
        if node is None:
            break
        chain.append(parent)
        if node["name"] == "engine":
            engine = str(node["attrs"].get("engine", "-"))
            break
        parent = node["parent"]
    for span_id in chain:
        cache[span_id] = engine
    return engine


def aggregate_trace(records: List[Dict]) -> TraceReport:
    """Aggregate validated trace records into a :class:`TraceReport`.

    Works on the output of :func:`repro.observability.read_trace` (or any
    list of schema-valid records, e.g. a ring buffer's).  Only ``stage.*``
    spans enter the stage tables; ``engine`` spans define the attribution
    scopes and the per-engine totals; every event is tallied by name.
    """
    report = TraceReport(records=len(records))
    spans_by_id = {
        record["id"]: record for record in records if record["type"] == "span"
    }
    report.spans = len(spans_by_id)
    totals: Dict[str, List[float]] = {}
    engine_totals: Dict[Tuple[str, str], List[float]] = {}
    engine_cache: Dict[int, str] = {}
    for record in records:
        if record["type"] == "event":
            report.events[record["name"]] = report.events.get(record["name"], 0) + 1
            continue
        name = record["name"]
        if name == "engine":
            engine = str(record["attrs"].get("engine", "-"))
            report.engines[engine] = report.engines.get(engine, 0.0) + record["dt"]
            continue
        if not name.startswith(STAGE_PREFIX):
            continue
        stage = name[len(STAGE_PREFIX):]
        bucket = totals.setdefault(stage, [0, 0.0])
        bucket[0] += 1
        bucket[1] += record["dt"]
        engine = _engine_of(record, spans_by_id, engine_cache)
        engine_bucket = engine_totals.setdefault((engine, stage), [0, 0.0])
        engine_bucket[0] += 1
        engine_bucket[1] += record["dt"]
    for stage, (count, seconds) in totals.items():
        report.stages[stage] = StageProfile(stage, int(count), seconds)
    for key, (count, seconds) in engine_totals.items():
        report.per_engine[key] = StageProfile(key[1], int(count), seconds)
    return report


def format_trace_report(report: TraceReport, source: Optional[str] = None) -> str:
    """Render a :class:`TraceReport` as the ``trace-report`` text output."""
    from ..analysis.reporting import format_table

    lines = []
    origin = f" ({source})" if source else ""
    lines.append(
        f"trace{origin}: {report.records} records, {report.spans} spans, "
        f"{sum(report.events.values())} events"
    )
    if report.engines:
        engines = ", ".join(
            f"{name} {seconds:.4f}s" for name, seconds in sorted(report.engines.items())
        )
        lines.append(f"engine spans: {engines}")
    if report.stages:
        lines.append("")
        lines.append(format_table(
            "per-stage wall time",
            ["stage", "count", "total s", "mean ms", "share"],
            report.stage_rows(),
        ))
    if report.per_engine:
        lines.append("")
        lines.append(format_table(
            "per-engine stage breakdown",
            ["engine", "stage", "count", "total s", "mean ms"],
            report.engine_rows(),
        ))
    if report.events:
        lines.append("")
        lines.append(format_table(
            "events", ["event", "count"], report.event_rows()
        ))
    return "\n".join(lines)
