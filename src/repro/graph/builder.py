"""Fluent builder for conditional process graphs.

The builder takes care of the polar structure (source and sink dummy
processes) so that users only describe the designer-visible processes and
their data/control dependencies:

>>> from repro.conditions import Condition
>>> from repro.graph import CPGBuilder
>>> C = Condition("C")
>>> builder = CPGBuilder("demo")
>>> _ = builder.process("P1", 2.0)
>>> _ = builder.process("P2", 3.0)
>>> _ = builder.process("P3", 1.0)
>>> _ = builder.edge("P1", "P2", condition=C.true())
>>> _ = builder.edge("P1", "P3", condition=C.false())
>>> graph = builder.build()
>>> len(graph.conditions)
1
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..conditions import Literal
from .cpg import ConditionalProcessGraph
from .edges import Edge
from .process import (
    Process,
    ordinary_process,
    sink_process,
    source_process,
)


class CPGBuilder:
    """Incrementally build a conditional process graph.

    The builder automatically adds the polar source and sink processes and, at
    :meth:`build` time, connects every process without predecessors to the
    source and every process without successors to the sink, then validates
    the result.
    """

    def __init__(
        self,
        name: str = "cpg",
        source_name: str = "source",
        sink_name: str = "sink",
    ) -> None:
        self._graph = ConditionalProcessGraph(name)
        self._source = source_process(source_name)
        self._sink = sink_process(sink_name)
        self._graph.add_process(self._source)
        self._graph.add_process(self._sink)
        self._built = False

    @property
    def source_name(self) -> str:
        return self._source.name

    @property
    def sink_name(self) -> str:
        return self._sink.name

    def process(
        self,
        name: str,
        execution_time: float,
        execution_times: Optional[Mapping[str, float]] = None,
        is_conjunction: bool = False,
    ) -> "CPGBuilder":
        """Add an ordinary process."""
        self._graph.add_process(
            ordinary_process(name, execution_time, execution_times, is_conjunction)
        )
        return self

    def add(self, process: Process) -> "CPGBuilder":
        """Add an already-constructed process node."""
        self._graph.add_process(process)
        return self

    def edge(
        self,
        src: str,
        dst: str,
        condition: Optional[Literal] = None,
        communication_time: float = 0.0,
    ) -> "CPGBuilder":
        """Add a (simple or conditional) edge between two processes."""
        self._graph.add_edge(Edge(src, dst, condition, communication_time))
        return self

    def chain(self, *names: str, communication_time: float = 0.0) -> "CPGBuilder":
        """Add simple edges forming a chain ``names[0] -> names[1] -> ...``."""
        for src, dst in zip(names, names[1:]):
            self.edge(src, dst, communication_time=communication_time)
        return self

    def build(self, validate: bool = True) -> ConditionalProcessGraph:
        """Finalise the graph: polarise, optionally validate, and return it."""
        if self._built:
            raise RuntimeError("build() may only be called once per builder")
        source = self._source.name
        sink = self._sink.name
        for process in self._graph.processes:
            if process.name in (source, sink):
                continue
            if not self._graph.predecessors(process.name):
                self._graph.connect(source, process.name)
            if not self._graph.successors(process.name):
                self._graph.connect(process.name, sink)
        if not self._graph.successors(source) and len(self._graph) > 2:
            raise RuntimeError("builder produced a source with no successors")
        if validate:
            self._graph.validate()
        self._built = True
        return self._graph


def build_chain_graph(
    name: str, execution_times: Dict[str, float]
) -> ConditionalProcessGraph:
    """Build a purely sequential graph from an ordered name -> time mapping."""
    builder = CPGBuilder(name)
    names = list(execution_times)
    for process_name in names:
        builder.process(process_name, execution_times[process_name])
    builder.chain(*names)
    return builder.build()
