"""Edges of a conditional process graph.

The paper distinguishes *simple* edges (plain dataflow, set ``ES``) from
*conditional* edges (set ``EC``) which carry a condition literal: the message
is transmitted only when the associated condition value holds.  A node with
conditional output edges is a *disjunction* node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..conditions import Literal


@dataclass(frozen=True)
class Edge:
    """A directed edge between two processes.

    Parameters
    ----------
    src, dst:
        Names of the source and destination processes.
    condition:
        ``None`` for a simple edge; a :class:`~repro.conditions.Literal` for a
        conditional edge (the transfer happens only when the literal holds).
    communication_time:
        Time needed to transfer the data when the two endpoint processes are
        mapped to different processors.  Ignored (no communication process is
        inserted) when both endpoints share a processor.
    """

    src: str
    dst: str
    condition: Optional[Literal] = None
    communication_time: float = 0.0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"self-loop edge on {self.src!r} is not allowed")
        if self.communication_time < 0:
            raise ValueError(
                f"negative communication time on edge {self.src}->{self.dst}"
            )

    @property
    def is_conditional(self) -> bool:
        """True when this edge belongs to the set ``EC`` of conditional edges."""
        return self.condition is not None

    @property
    def is_simple(self) -> bool:
        """True when this edge belongs to the set ``ES`` of simple edges."""
        return self.condition is None

    def __str__(self) -> str:
        if self.condition is None:
            return f"{self.src} -> {self.dst}"
        return f"{self.src} -[{self.condition}]-> {self.dst}"
