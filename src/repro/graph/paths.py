"""Enumeration of the alternative paths (tracks) through a conditional process graph.

For a given execution only a subset of the processes is activated; which
subset depends on the condition values computed at run time.  Every complete
resolution of the *relevant* conditions (those whose disjunction process is
itself activated) selects one alternative path.  Each alternative path ``k``
has a label ``L_k`` (the conjunction of the resolved condition values) and an
associated subgraph ``G_k``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Tuple

from ..conditions import Assignment, Condition, Conjunction, masks_from_assignment
from .cpg import ConditionalProcessGraph


@dataclass(frozen=True)
class AlternativePath:
    """One alternative path through a conditional process graph.

    Attributes
    ----------
    label:
        The conjunction of condition values selecting this path (``L_k``).
    assignment:
        The same information as a condition -> bool mapping.
    active_processes:
        Names of the processes activated on this path, in topological order.
    subgraph:
        The induced conditional process graph ``G_k`` (built lazily by
        :meth:`PathEnumerator.subgraph_of`; stored here when requested).
    """

    label: Conjunction
    assignment: Mapping[Condition, bool] = field(compare=False)
    active_processes: Tuple[str, ...] = ()
    index: int = field(default=0, compare=False)

    def __str__(self) -> str:
        return f"path[{self.label}]"

    def is_consistent_with(self, partial: Mapping[Condition, bool]) -> bool:
        """True when this path remains reachable given the partially known conditions."""
        return self.label.consistent_with_partial(partial)

    def includes(self, process_name: str) -> bool:
        return process_name in self.active_processes


class PathEnumerator:
    """Enumerates the alternative paths of a conditional process graph."""

    def __init__(self, graph: ConditionalProcessGraph) -> None:
        self._graph = graph
        self._guards = graph.guards()
        self._disjunctions = graph.disjunction_processes()
        self._paths: Optional[Tuple[AlternativePath, ...]] = None
        self._index: Optional[
            Dict[FrozenSet[Tuple[Condition, bool]], AlternativePath]
        ] = None
        self._label_condition_sets: Tuple[FrozenSet[Condition], ...] = ()
        self._topological_order = graph.topological_order()
        self._active_cache: Dict[Tuple[int, int], Tuple[str, ...]] = {}
        # Flattened guard table in topological order: ``None`` marks an
        # always-active process, otherwise the guard's term masks.  Built
        # lazily on the first activity query.
        self._guard_table: Optional[
            List[Tuple[str, Optional[Tuple[Tuple[int, int], ...]]]]
        ] = None

    @property
    def graph(self) -> ConditionalProcessGraph:
        return self._graph

    def paths(self) -> Tuple[AlternativePath, ...]:
        """Return all alternative paths (computed once; the tuple is cached).

        Returning the cached tuple (rather than a fresh list copy) makes the
        call free for the schedulers, which re-query the enumeration often.
        """
        if self._paths is None:
            self._paths = tuple(self._enumerate())
        return self._paths

    def count(self) -> int:
        """The number ``N_alt`` of alternative paths."""
        return len(self.paths())

    def path_for(self, assignment: Mapping[Condition, bool]) -> AlternativePath:
        """Return the alternative path selected by a complete condition assignment.

        Lookups are indexed: labels are keyed on their frozen condition-value
        pairs, so resolving an assignment costs one dict probe per distinct
        label condition set (of which a graph has very few) instead of a scan
        over all ``N_alt`` paths.
        """
        if self._index is None:
            index: Dict[FrozenSet[Tuple[Condition, bool]], AlternativePath] = {}
            condition_sets: List[FrozenSet[Condition]] = []
            for path in self.paths():
                items = frozenset(path.label.as_assignment().items())
                index.setdefault(items, path)
                conditions = path.label.conditions
                if conditions not in condition_sets:
                    condition_sets.append(conditions)
            self._index = index
            self._label_condition_sets = tuple(condition_sets)
        for conditions in self._label_condition_sets:
            if not all(condition in assignment for condition in conditions):
                continue
            key = frozenset(
                (condition, bool(assignment[condition])) for condition in conditions
            )
            path = self._index.get(key)
            if path is not None:
                return path
        raise KeyError(f"no alternative path matches assignment {assignment}")

    def reachable_paths(
        self, partial: Mapping[Condition, bool]
    ) -> List[AlternativePath]:
        """Paths still reachable when only some conditions are known."""
        return [path for path in self.paths() if path.is_consistent_with(partial)]

    def subgraph_of(self, path: AlternativePath) -> ConditionalProcessGraph:
        """Build the induced subgraph ``G_k`` of an alternative path."""
        sub = self._graph.subgraph(path.active_processes, name=f"{self._graph.name}[{path.label}]")
        return sub

    # -- enumeration ---------------------------------------------------------

    def _relevant_unassigned_conditions(
        self, assignment: Assignment
    ) -> List[Condition]:
        """Conditions computed by disjunction processes active under ``assignment``."""
        relevant = []
        for name, condition in sorted(self._disjunctions.items()):
            if condition in assignment:
                continue
            guard = self._guards[name]
            if guard.is_true() or guard.satisfied_by_partial(assignment):
                relevant.append(condition)
        return relevant

    def _active_under(self, assignment: Assignment) -> Tuple[str, ...]:
        """Active process names under a complete assignment of relevant conditions.

        Guard evaluation goes through the bitmask fast path: the assignment is
        folded to a ``(pos, neg)`` mask pair once and every guard term check is
        then two integer probes.  Results are memoized by mask pair, since the
        depth-first enumeration revisits identical leaf assignments when
        labels share prefixes.
        """
        key = masks_from_assignment(assignment)
        cached = self._active_cache.get(key)
        if cached is None:
            if self._guard_table is None:
                self._guard_table = [
                    (
                        name,
                        None
                        if self._guards[name].is_true()
                        else tuple(
                            (term.pos_mask, term.neg_mask)
                            for term in self._guards[name].terms
                        ),
                    )
                    for name in self._topological_order
                ]
            pos, neg = key
            not_pos = ~pos
            not_neg = ~neg
            cached = tuple(
                name
                for name, terms in self._guard_table
                if terms is None
                or any(
                    not (term_pos & not_pos) and not (term_neg & not_neg)
                    for term_pos, term_neg in terms
                )
            )
            self._active_cache[key] = cached
        return cached

    def _enumerate(self) -> Iterator[AlternativePath]:
        counter = {"index": 0}

        def recurse(assignment: Assignment) -> Iterator[AlternativePath]:
            pending = self._relevant_unassigned_conditions(assignment)
            if not pending:
                label = Conjunction.from_assignment(assignment)
                active = self._active_under(assignment)
                path = AlternativePath(
                    label=label,
                    assignment=dict(assignment),
                    active_processes=active,
                    index=counter["index"],
                )
                counter["index"] += 1
                yield path
                return
            condition = pending[0]
            for value in (True, False):
                extended = dict(assignment)
                extended[condition] = value
                yield from recurse(extended)

        yield from recurse({})


def enumerate_paths(graph: ConditionalProcessGraph) -> Tuple[AlternativePath, ...]:
    """Convenience wrapper returning all alternative paths of a graph."""
    return PathEnumerator(graph).paths()


def count_paths(graph: ConditionalProcessGraph) -> int:
    """Convenience wrapper returning the number of alternative paths."""
    return PathEnumerator(graph).count()
