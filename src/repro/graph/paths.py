"""Enumeration of the alternative paths (tracks) through a conditional process graph.

For a given execution only a subset of the processes is activated; which
subset depends on the condition values computed at run time.  Every complete
resolution of the *relevant* conditions (those whose disjunction process is
itself activated) selects one alternative path.  Each alternative path ``k``
has a label ``L_k`` (the conjunction of the resolved condition values) and an
associated subgraph ``G_k``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Mapping, Optional, Tuple

from ..conditions import Assignment, Condition, Conjunction
from .cpg import ConditionalProcessGraph


@dataclass(frozen=True)
class AlternativePath:
    """One alternative path through a conditional process graph.

    Attributes
    ----------
    label:
        The conjunction of condition values selecting this path (``L_k``).
    assignment:
        The same information as a condition -> bool mapping.
    active_processes:
        Names of the processes activated on this path, in topological order.
    subgraph:
        The induced conditional process graph ``G_k`` (built lazily by
        :meth:`PathEnumerator.subgraph_of`; stored here when requested).
    """

    label: Conjunction
    assignment: Mapping[Condition, bool] = field(compare=False)
    active_processes: Tuple[str, ...] = ()
    index: int = field(default=0, compare=False)

    def __str__(self) -> str:
        return f"path[{self.label}]"

    def is_consistent_with(self, partial: Mapping[Condition, bool]) -> bool:
        """True when this path remains reachable given the partially known conditions."""
        return self.label.consistent_with_partial(partial)

    def includes(self, process_name: str) -> bool:
        return process_name in self.active_processes


class PathEnumerator:
    """Enumerates the alternative paths of a conditional process graph."""

    def __init__(self, graph: ConditionalProcessGraph) -> None:
        self._graph = graph
        self._guards = graph.guards()
        self._disjunctions = graph.disjunction_processes()
        self._paths: Optional[List[AlternativePath]] = None

    @property
    def graph(self) -> ConditionalProcessGraph:
        return self._graph

    def paths(self) -> List[AlternativePath]:
        """Return all alternative paths (computed once, then cached)."""
        if self._paths is None:
            self._paths = list(self._enumerate())
        return list(self._paths)

    def count(self) -> int:
        """The number ``N_alt`` of alternative paths."""
        return len(self.paths())

    def path_for(self, assignment: Mapping[Condition, bool]) -> AlternativePath:
        """Return the alternative path selected by a complete condition assignment."""
        for path in self.paths():
            if path.label.consistent_with_partial(assignment) and all(
                condition in assignment for condition in path.label.conditions
            ):
                return path
        raise KeyError(f"no alternative path matches assignment {assignment}")

    def reachable_paths(
        self, partial: Mapping[Condition, bool]
    ) -> List[AlternativePath]:
        """Paths still reachable when only some conditions are known."""
        return [path for path in self.paths() if path.is_consistent_with(partial)]

    def subgraph_of(self, path: AlternativePath) -> ConditionalProcessGraph:
        """Build the induced subgraph ``G_k`` of an alternative path."""
        sub = self._graph.subgraph(path.active_processes, name=f"{self._graph.name}[{path.label}]")
        return sub

    # -- enumeration ---------------------------------------------------------

    def _relevant_unassigned_conditions(
        self, assignment: Assignment
    ) -> List[Condition]:
        """Conditions computed by disjunction processes active under ``assignment``."""
        relevant = []
        for name, condition in sorted(self._disjunctions.items()):
            if condition in assignment:
                continue
            guard = self._guards[name]
            if guard.is_true() or guard.satisfied_by_partial(assignment):
                relevant.append(condition)
        return relevant

    def _active_under(self, assignment: Assignment) -> Tuple[str, ...]:
        return tuple(
            name
            for name in self._graph.topological_order()
            if self._guards[name].is_true()
            or self._guards[name].satisfied_by_partial(assignment)
        )

    def _enumerate(self) -> Iterator[AlternativePath]:
        counter = {"index": 0}

        def recurse(assignment: Assignment) -> Iterator[AlternativePath]:
            pending = self._relevant_unassigned_conditions(assignment)
            if not pending:
                label = Conjunction.from_assignment(assignment)
                active = self._active_under(assignment)
                path = AlternativePath(
                    label=label,
                    assignment=dict(assignment),
                    active_processes=active,
                    index=counter["index"],
                )
                counter["index"] += 1
                yield path
                return
            condition = pending[0]
            for value in (True, False):
                extended = dict(assignment)
                extended[condition] = value
                yield from recurse(extended)

        yield from recurse({})


def enumerate_paths(graph: ConditionalProcessGraph) -> List[AlternativePath]:
    """Convenience wrapper returning all alternative paths of a graph."""
    return PathEnumerator(graph).paths()


def count_paths(graph: ConditionalProcessGraph) -> int:
    """Convenience wrapper returning the number of alternative paths."""
    return PathEnumerator(graph).count()
