"""Expansion of inter-processor communications into communication processes.

In the paper's model every connection between processes mapped to different
processors is represented by a *communication process* mapped to a bus (the
black dots of Fig. 1).  Designers usually specify the graph at the process
level only; :func:`expand_communications` inserts the communication processes
given a mapping, producing the graph the scheduler actually works on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..architecture import Architecture, Mapping, MappingError
from ..architecture.processing_element import ProcessingElement
from .cpg import ConditionalProcessGraph, GraphStructureError
from .edges import Edge
from .process import communication_process


@dataclass(frozen=True)
class CommunicationInfo:
    """Book-keeping for one inserted communication process."""

    name: str
    src: str
    dst: str
    bus: ProcessingElement
    communication_time: float


@dataclass(frozen=True)
class ExpandedGraph:
    """Result of communication expansion.

    Attributes
    ----------
    graph:
        The new conditional process graph including communication processes.
    mapping:
        A copy of the input mapping extended with the bus assignment of every
        inserted communication process.
    communications:
        Information about every inserted communication process, keyed by name.
    """

    graph: ConditionalProcessGraph
    mapping: Mapping
    communications: Dict[str, CommunicationInfo]

    def communication_between(self, src: str, dst: str) -> Optional[CommunicationInfo]:
        """Return the communication process inserted between two processes, if any."""
        for info in self.communications.values():
            if info.src == src and info.dst == dst:
                return info
        return None


def _select_bus(
    architecture: Architecture,
    src_pe: ProcessingElement,
    dst_pe: ProcessingElement,
    preferred: Optional[ProcessingElement],
) -> ProcessingElement:
    if preferred is not None:
        return preferred
    candidates = architecture.buses_between(src_pe, dst_pe)
    if not candidates:
        raise MappingError(
            f"no bus connects {src_pe.name} and {dst_pe.name}; cannot map the "
            "communication between processes on these processors"
        )
    return candidates[0]


def expand_communications(
    graph: ConditionalProcessGraph,
    mapping: Mapping,
    architecture: Optional[Architecture] = None,
    name_format: str = "{src}_to_{dst}",
    bus_assignment: Optional[Dict[Tuple[str, str], ProcessingElement]] = None,
) -> ExpandedGraph:
    """Insert a communication process on every inter-processor edge.

    Parameters
    ----------
    graph:
        The process-level conditional process graph (no communication
        processes yet; edges carry their ``communication_time``).
    mapping:
        Mapping of every ordinary process to a processor.
    architecture:
        Defaults to ``mapping.architecture``.
    name_format:
        Format string for communication process names, receiving ``src`` and
        ``dst`` keyword arguments.
    bus_assignment:
        Optional explicit choice of bus per (src, dst) pair; by default the
        first bus connecting the two processors is used.

    Returns
    -------
    ExpandedGraph
        The expanded graph, the extended mapping and per-communication info.
    """
    architecture = architecture or mapping.architecture
    expanded = ConditionalProcessGraph(f"{graph.name}-expanded")
    new_mapping = mapping.copy()
    communications: Dict[str, CommunicationInfo] = {}

    for process in graph.processes:
        expanded.add_process(process)
        if process.is_ordinary and process.name not in mapping:
            raise MappingError(f"ordinary process {process.name!r} is not mapped")

    for edge in graph.edges:
        src_process = graph[edge.src]
        dst_process = graph[edge.dst]
        if src_process.is_dummy or dst_process.is_dummy:
            expanded.add_edge(edge)
            continue
        src_pe = mapping[edge.src]
        dst_pe = mapping[edge.dst]
        if src_pe == dst_pe:
            expanded.add_edge(edge)
            continue
        comm_name = name_format.format(src=edge.src, dst=edge.dst)
        if comm_name in expanded:
            raise GraphStructureError(
                f"communication process name collision: {comm_name!r}"
            )
        comm = communication_process(comm_name, edge.communication_time)
        expanded.add_process(comm)
        # The condition of the original edge guards the transfer itself, so it
        # is carried by the edge *into* the communication process; the edge
        # from the communication process to the consumer is simple.
        expanded.add_edge(Edge(edge.src, comm_name, edge.condition))
        expanded.add_edge(Edge(comm_name, edge.dst))
        preferred = bus_assignment.get((edge.src, edge.dst)) if bus_assignment else None
        chosen_bus = _select_bus(architecture, src_pe, dst_pe, preferred)
        new_mapping.assign(comm_name, chosen_bus)
        communications[comm_name] = CommunicationInfo(
            name=comm_name,
            src=edge.src,
            dst=edge.dst,
            bus=chosen_bus,
            communication_time=edge.communication_time,
        )

    return ExpandedGraph(expanded, new_mapping, communications)


def is_expanded(graph: ConditionalProcessGraph, mapping: Mapping) -> bool:
    """True when no edge of the graph crosses processors without a communication process."""
    for edge in graph.edges:
        src_process = graph[edge.src]
        dst_process = graph[edge.dst]
        if src_process.is_dummy or dst_process.is_dummy:
            continue
        if src_process.is_communication or dst_process.is_communication:
            continue
        if edge.src in mapping and edge.dst in mapping:
            if mapping[edge.src] != mapping[edge.dst]:
                return False
    return True
