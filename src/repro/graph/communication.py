"""Expansion of inter-processor communications into communication processes.

In the paper's model every connection between processes mapped to different
processors is represented by a *communication process* mapped to a bus (the
black dots of Fig. 1).  Designers usually specify the graph at the process
level only; :func:`expand_communications` inserts the communication processes
given a mapping, producing the graph the scheduler actually works on.

Communication-to-bus mapping is a design dimension of its own (the paper maps
and schedules communication processes like any other process):

* every potential communication carries a stable *message id*
  (:func:`message_id`, ``"src->dst"``) naming the process-level edge, so an
  explicit bus choice survives remapping of the endpoint processes;
* ``bus_assignment`` pins individual messages to buses, validated against the
  architecture's connectivity (a bus that does not connect both endpoint
  processors is rejected, not silently accepted);
* unpinned messages fall back to a *policy*: ``least_index`` (the
  lexicographically least connecting bus name — deterministic regardless of
  the order buses were registered in) or ``least_loaded`` (the connecting bus
  with the least communication load accumulated so far, name tie-break).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping as TMapping, Optional, Tuple, Union

from ..architecture import Architecture, Mapping, MappingError
from ..architecture.processing_element import ProcessingElement
from .cpg import ConditionalProcessGraph, GraphStructureError
from .edges import Edge
from .process import communication_process

#: The bus-selection policies :func:`expand_communications` understands.
BUS_POLICIES: Tuple[str, ...] = ("least_index", "least_loaded")

#: Keys of an explicit bus assignment: a stable message id ("src->dst") or
#: the raw (src, dst) pair; values name a bus or give the element itself.
MessageKey = Union[str, Tuple[str, str]]
BusLike = Union[ProcessingElement, str]


def message_id(src: str, dst: str) -> str:
    """The stable id of the (potential) message carried by edge ``src -> dst``.

    Message ids name the process-level edge, not the processors its endpoints
    happen to be mapped to, so a per-message bus assignment keyed by id stays
    meaningful when the endpoint processes are remapped.
    """
    return f"{src}->{dst}"


@dataclass(frozen=True)
class CommunicationInfo:
    """Book-keeping for one inserted communication process."""

    name: str
    src: str
    dst: str
    bus: ProcessingElement
    communication_time: float
    #: Stable id of the message this process carries (see :func:`message_id`).
    message: str = ""


@dataclass(frozen=True)
class ExpandedGraph:
    """Result of communication expansion.

    Attributes
    ----------
    graph:
        The new conditional process graph including communication processes.
    mapping:
        A copy of the input mapping extended with the bus assignment of every
        inserted communication process.
    communications:
        Information about every inserted communication process, keyed by name.
    """

    graph: ConditionalProcessGraph
    mapping: Mapping
    communications: Dict[str, CommunicationInfo]
    #: Accumulated communication load per bus (bus name -> total duration of
    #: the communication processes it carries, bus-speed scaled).  Computed
    #: once while the expansion assigns buses — the ``least_loaded`` policy
    #: already maintains these sums — so consumers (the explorer's
    #: ``bus_imbalance`` objective) need not rescan every communication.
    #: Buses that carry nothing have no entry.
    bus_loads: Dict[str, float] = field(default_factory=dict)
    #: (src, dst) -> info index, built at construction so per-edge lookups are
    #: one dict probe instead of a scan over every communication.
    _by_endpoints: Dict[Tuple[str, str], CommunicationInfo] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )
    #: Immutable (message id, bus name) pairs in communication insertion
    #: order, built once at construction.  This is the canonical snapshot
    #: behind :attr:`bus_assignment` — accessors hand out values derived from
    #: this tuple, never live views of the instance's dicts, so downstream
    #: caches (the flat scheduling kernel's slice memos) can hold onto the
    #: results without defensive copying.
    _bus_assignment_items: Tuple[Tuple[str, str], ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        index = {
            (info.src, info.dst): info for info in self.communications.values()
        }
        object.__setattr__(self, "_by_endpoints", index)
        object.__setattr__(
            self,
            "_bus_assignment_items",
            tuple(
                (info.message, info.bus.name)
                for info in self.communications.values()
            ),
        )
        if not self.bus_loads and self.communications:
            # Derive the loads for directly constructed instances (the
            # pre-bus_loads construction form), so consumers reading
            # ``bus_loads`` never silently see an all-idle platform.
            loads: Dict[str, float] = {}
            for info in self.communications.values():
                loads[info.bus.name] = loads.get(info.bus.name, 0.0) + self.graph[
                    info.name
                ].duration_on(info.bus)
            object.__setattr__(self, "bus_loads", loads)

    def communication_between(self, src: str, dst: str) -> Optional[CommunicationInfo]:
        """Return the communication process inserted between two processes, if any.

        The returned :class:`CommunicationInfo` is a frozen dataclass — an
        immutable value, safe to retain and share across cached evaluations.
        """
        return self._by_endpoints.get((src, dst))

    def bus_of(self, message: str) -> Optional[ProcessingElement]:
        """The bus carrying the given message id, or None when intra-processor."""
        src, _, dst = message.partition("->")
        info = self._by_endpoints.get((src, dst))
        return info.bus if info is not None else None

    @property
    def bus_assignment_items(self) -> Tuple[Tuple[str, str], ...]:
        """The realised communication mapping as an immutable snapshot.

        ``(message id, bus name)`` pairs in communication insertion order.
        This is the tuple form downstream caches should key on: it is built
        once at construction and can never be mutated through the accessor.
        """
        return self._bus_assignment_items

    @property
    def bus_assignment(self) -> Dict[str, str]:
        """The realised communication mapping: message id -> bus name.

        Returns a *fresh* dict built from :attr:`bus_assignment_items` on
        every access — a snapshot the caller owns, never a live view of this
        instance's state.
        """
        return dict(self._bus_assignment_items)


@dataclass(frozen=True)
class ExpansionStructure:
    """The mapping-independent half of a communication expansion.

    The *structure* of an expanded graph — which communication processes
    exist, their names, durations and edges — depends only on the set of
    process-level edges that cross processors, never on *which* processors
    (or buses) are involved.  :func:`expansion_structure` builds it from that
    crossing set alone, so the design-space explorer can reuse one structure
    (and everything cached on its graph: guards, topological order, path
    enumeration) across every candidate mapping with the same co-location
    pattern, rebuilding only the cheap bus-assignment layer
    (:func:`assign_buses`) per candidate.
    """

    #: The expanded conditional process graph (communication processes
    #: inserted, no bus assignment yet — that lives in the mapping).
    graph: ConditionalProcessGraph
    #: One ``(communication process name, src, dst, communication time)`` per
    #: crossing edge, in graph edge order (the order expansion assigns buses).
    comm_edges: Tuple[Tuple[str, str, str, float], ...]


def crossing_edges(
    graph: ConditionalProcessGraph, mapping: Mapping
) -> Tuple[Tuple[str, str], ...]:
    """The process-level edges whose endpoints sit on different processors.

    Dummy endpoints never cross (dummies are unmapped).  The tuple is in
    graph edge order, so equal co-location patterns produce equal tuples —
    it is the cache key of :func:`expansion_structure` reuse.  Unmapped
    ordinary endpoints raise :class:`~repro.architecture.MappingError`.
    """
    crossing = []
    for edge in graph.edges:
        if graph[edge.src].is_dummy or graph[edge.dst].is_dummy:
            continue
        if mapping[edge.src] != mapping[edge.dst]:
            crossing.append((edge.src, edge.dst))
    return tuple(crossing)


def expansion_structure(
    graph: ConditionalProcessGraph,
    crossing: Tuple[Tuple[str, str], ...],
    name_format: str = "{src}_to_{dst}",
) -> ExpansionStructure:
    """Insert communication processes for the given crossing edges.

    The mapping-independent half of :func:`expand_communications`: builds the
    expanded graph and records the inserted communications, leaving the bus
    choice (and hence the extended mapping) to :func:`assign_buses`.
    """
    expanded = ConditionalProcessGraph(f"{graph.name}-expanded")
    comm_edges = []
    for process in graph.processes:
        expanded.add_process(process)
    crossing_set = set(crossing)
    for edge in graph.edges:
        if (edge.src, edge.dst) not in crossing_set:
            expanded.add_edge(edge)
            continue
        comm_name = name_format.format(src=edge.src, dst=edge.dst)
        if comm_name in expanded:
            raise GraphStructureError(
                f"communication process name collision: {comm_name!r}"
            )
        comm = communication_process(comm_name, edge.communication_time)
        expanded.add_process(comm)
        # The condition of the original edge guards the transfer itself, so it
        # is carried by the edge *into* the communication process; the edge
        # from the communication process to the consumer is simple.
        expanded.add_edge(Edge(edge.src, comm_name, edge.condition))
        expanded.add_edge(Edge(comm_name, edge.dst))
        comm_edges.append((comm_name, edge.src, edge.dst, edge.communication_time))
    return ExpansionStructure(expanded, tuple(comm_edges))


def assign_buses(
    structure: ExpansionStructure,
    mapping: Mapping,
    architecture: Optional[Architecture] = None,
    bus_assignment: Optional[TMapping[MessageKey, BusLike]] = None,
    bus_policy: str = "least_index",
) -> ExpandedGraph:
    """Assign a bus to every communication process of a structure.

    The per-candidate half of :func:`expand_communications`: validates
    explicit pins, applies the derivation policy to the rest, extends the
    mapping and accumulates the per-bus loads.  The structure's graph is
    *shared* by the returned :class:`ExpandedGraph` (it is read-only for
    every consumer), which is what makes reuse across mappings cheap.
    """
    if bus_policy not in BUS_POLICIES:
        raise ValueError(
            f"unknown bus policy {bus_policy!r}; choose from {BUS_POLICIES}"
        )
    architecture = architecture or mapping.architecture
    new_mapping = mapping.copy()
    communications: Dict[str, CommunicationInfo] = {}
    bus_loads: Dict[str, float] = {}
    graph = structure.graph
    for comm_name, src, dst, communication_time in structure.comm_edges:
        src_pe = mapping[src]
        dst_pe = mapping[dst]
        message = message_id(src, dst)
        assigned: Optional[BusLike] = None
        if bus_assignment:
            assigned = bus_assignment.get(message)
            if assigned is None:
                assigned = bus_assignment.get((src, dst))
        if assigned is not None:
            chosen_bus = _resolve_assigned_bus(
                architecture, src, dst, src_pe, dst_pe, assigned
            )
        else:
            chosen_bus = _select_bus(
                architecture, src_pe, dst_pe, bus_policy, bus_loads
            )
        bus_loads[chosen_bus.name] = bus_loads.get(
            chosen_bus.name, 0.0
        ) + graph[comm_name].duration_on(chosen_bus)
        new_mapping.assign(comm_name, chosen_bus)
        communications[comm_name] = CommunicationInfo(
            name=comm_name,
            src=src,
            dst=dst,
            bus=chosen_bus,
            communication_time=communication_time,
            message=message,
        )
    return ExpandedGraph(graph, new_mapping, communications, bus_loads)


def _resolve_assigned_bus(
    architecture: Architecture,
    src: str,
    dst: str,
    src_pe: ProcessingElement,
    dst_pe: ProcessingElement,
    assigned: BusLike,
) -> ProcessingElement:
    """Validate one explicit bus choice against the architecture's topology."""
    if isinstance(assigned, str):
        pe = architecture.get(assigned)
        if pe is None:
            raise MappingError(
                f"bus {assigned!r} assigned to message {message_id(src, dst)!r} "
                "is not a processing element of the architecture"
            )
        assigned = pe
    elif assigned.name not in architecture or architecture[assigned.name] != assigned:
        raise MappingError(
            f"bus {assigned.name!r} assigned to message {message_id(src, dst)!r} "
            "does not belong to the architecture"
        )
    if not assigned.is_bus:
        raise MappingError(
            f"{assigned.name!r} assigned to message {message_id(src, dst)!r} "
            "is not a bus"
        )
    connecting = {pe.name for pe in architecture.buses_between(src_pe, dst_pe)}
    if assigned.name not in connecting:
        raise MappingError(
            f"bus {assigned.name!r} does not connect {src_pe.name} and "
            f"{dst_pe.name}; cannot carry the message {message_id(src, dst)!r}"
        )
    return assigned


def _select_bus(
    architecture: Architecture,
    src_pe: ProcessingElement,
    dst_pe: ProcessingElement,
    policy: str,
    loads: Dict[str, float],
) -> ProcessingElement:
    """Pick a bus for an unpinned message according to the selection policy."""
    candidates = architecture.buses_between(src_pe, dst_pe)
    if not candidates:
        raise MappingError(
            f"no bus connects {src_pe.name} and {dst_pe.name}; cannot map the "
            "communication between processes on these processors"
        )
    if policy == "least_loaded":
        return min(candidates, key=lambda pe: (loads.get(pe.name, 0.0), pe.name))
    # least_index: the lexicographically least connecting bus name.  Sorting
    # here (rather than trusting the iteration order of buses_between) keeps
    # the default deterministic however the architecture registered its buses.
    return min(candidates, key=lambda pe: pe.name)


def expand_communications(
    graph: ConditionalProcessGraph,
    mapping: Mapping,
    architecture: Optional[Architecture] = None,
    name_format: str = "{src}_to_{dst}",
    bus_assignment: Optional[TMapping[MessageKey, BusLike]] = None,
    bus_policy: str = "least_index",
) -> ExpandedGraph:
    """Insert a communication process on every inter-processor edge.

    Parameters
    ----------
    graph:
        The process-level conditional process graph (no communication
        processes yet; edges carry their ``communication_time``).
    mapping:
        Mapping of every ordinary process to a processor.
    architecture:
        Defaults to ``mapping.architecture``.
    name_format:
        Format string for communication process names, receiving ``src`` and
        ``dst`` keyword arguments.
    bus_assignment:
        Optional explicit bus choice per message, keyed by stable message id
        (``"src->dst"``) or by the raw ``(src, dst)`` pair; values may be
        :class:`ProcessingElement` instances or bus names.  Every entry whose
        edge actually crosses processors is validated against the
        architecture: the bus must exist, be a bus, and connect both endpoint
        processors (:class:`~repro.architecture.MappingError` otherwise).
        Entries for messages whose endpoints share a processor are ignored —
        they are dormant, not invalid, so assignments survive remapping.
    bus_policy:
        Fallback policy for unpinned messages: ``"least_index"`` (default,
        the lexicographically least connecting bus) or ``"least_loaded"``
        (the connecting bus with the least communication load accumulated so
        far during this expansion, bus name as tie-break).

    Returns
    -------
    ExpandedGraph
        The expanded graph, the extended mapping and per-communication info.
    """
    for process in graph.processes:
        if process.is_ordinary and process.name not in mapping:
            raise MappingError(f"ordinary process {process.name!r} is not mapped")
    structure = expansion_structure(
        graph, crossing_edges(graph, mapping), name_format
    )
    return assign_buses(
        structure,
        mapping,
        architecture or mapping.architecture,
        bus_assignment=bus_assignment,
        bus_policy=bus_policy,
    )


def is_expanded(graph: ConditionalProcessGraph, mapping: Mapping) -> bool:
    """True when no edge of the graph crosses processors without a communication process."""
    for edge in graph.edges:
        src_process = graph[edge.src]
        dst_process = graph[edge.dst]
        if src_process.is_dummy or dst_process.is_dummy:
            continue
        if src_process.is_communication or dst_process.is_communication:
            continue
        if edge.src in mapping and edge.dst in mapping:
            if mapping[edge.src] != mapping[edge.dst]:
                return False
    return True
