"""Process nodes of a conditional process graph.

Four kinds of nodes appear in the model of the paper:

* the *source* and *sink* dummy processes that make the graph polar;
* *ordinary* processes specified by the designer;
* *communication* processes inserted on every edge that connects processes
  mapped to different processors; they are mapped to buses and their
  execution time is the communication time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Mapping, Optional

from ..architecture.processing_element import ProcessingElement


class ProcessKind(Enum):
    """The kind of a node in the conditional process graph."""

    SOURCE = "source"
    SINK = "sink"
    ORDINARY = "ordinary"
    COMMUNICATION = "communication"


@dataclass(frozen=True)
class Process:
    """A node of the conditional process graph.

    Parameters
    ----------
    name:
        Unique name within the graph (e.g. ``"P3"``).
    execution_time:
        Nominal execution time of the process.  For communication processes
        this is the communication time.  Source and sink processes have zero
        execution time.
    kind:
        Source, sink, ordinary or communication.
    execution_times:
        Optional per-processing-element override, keyed by PE name.  When a
        process is mapped to a PE present in this mapping the override is used
        verbatim (not scaled by the PE speed); otherwise the nominal
        ``execution_time`` is divided by the PE speed.  The paper's ATM case
        study, where the same process has different worst-case execution times
        on a 486 and on a Pentium, uses this mechanism.
    is_conjunction:
        Force the node to be treated as a conjunction process (activated when
        the inputs of *one* alternative path have arrived).  When left False
        the graph auto-detects conjunction nodes from mutually exclusive
        predecessor guards.
    """

    name: str
    execution_time: float = 0.0
    kind: ProcessKind = ProcessKind.ORDINARY
    execution_times: Optional[Mapping[str, float]] = field(default=None)
    is_conjunction: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("process name must be non-empty")
        if self.execution_time < 0:
            raise ValueError(f"negative execution time for process {self.name!r}")
        if self.kind in (ProcessKind.SOURCE, ProcessKind.SINK) and self.execution_time:
            raise ValueError("source and sink processes must have zero execution time")
        if self.execution_times is not None:
            frozen: Dict[str, float] = dict(self.execution_times)
            for pe_name, time in frozen.items():
                if time < 0:
                    raise ValueError(
                        f"negative execution time for {self.name!r} on {pe_name!r}"
                    )
            object.__setattr__(self, "execution_times", frozen)

    def __str__(self) -> str:
        return self.name

    @property
    def is_source(self) -> bool:
        return self.kind is ProcessKind.SOURCE

    @property
    def is_sink(self) -> bool:
        return self.kind is ProcessKind.SINK

    @property
    def is_dummy(self) -> bool:
        """True for the polar source/sink dummy processes."""
        return self.kind in (ProcessKind.SOURCE, ProcessKind.SINK)

    @property
    def is_ordinary(self) -> bool:
        return self.kind is ProcessKind.ORDINARY

    @property
    def is_communication(self) -> bool:
        return self.kind is ProcessKind.COMMUNICATION

    def duration_on(self, pe: Optional[ProcessingElement]) -> float:
        """Execution time of this process when run on the given element.

        Dummy processes always take zero time.  If a per-PE override exists it
        is used verbatim; otherwise the nominal time is scaled by the PE speed.
        When ``pe`` is None the nominal time is returned.
        """
        if self.is_dummy:
            return 0.0
        if pe is None:
            return self.execution_time
        if self.execution_times and pe.name in self.execution_times:
            return float(self.execution_times[pe.name])
        return pe.scaled_time(self.execution_time)


def source_process(name: str = "source") -> Process:
    """Create the dummy source process."""
    return Process(name, 0.0, ProcessKind.SOURCE)


def sink_process(name: str = "sink") -> Process:
    """Create the dummy sink process."""
    return Process(name, 0.0, ProcessKind.SINK)


def ordinary_process(
    name: str,
    execution_time: float,
    execution_times: Optional[Mapping[str, float]] = None,
    is_conjunction: bool = False,
) -> Process:
    """Create an ordinary (designer-specified) process."""
    return Process(
        name,
        execution_time,
        ProcessKind.ORDINARY,
        execution_times,
        is_conjunction,
    )


def communication_process(name: str, communication_time: float) -> Process:
    """Create a communication process (inserted on inter-processor edges)."""
    return Process(name, communication_time, ProcessKind.COMMUNICATION)
