"""The conditional process graph (CPG) container.

A :class:`ConditionalProcessGraph` is the abstract system representation of
the paper: a directed, acyclic, polar graph whose nodes are processes and
whose edges are either simple (dataflow) or conditional (dataflow guarded by a
condition literal).  The class wraps a :class:`networkx.DiGraph` and exposes a
domain-level API: guards, disjunction/conjunction processes, alternative-path
queries and structural validation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

import networkx as nx

from ..conditions import (
    BoolExpr,
    Condition,
    Conjunction,
    Literal,
    masks_from_assignment,
)
from .edges import Edge
from .process import Process, ProcessKind


class GraphStructureError(ValueError):
    """Raised when a conditional process graph violates the model's structural rules."""


class ConditionalProcessGraph:
    """A directed, acyclic, polar graph of processes with conditional edges."""

    def __init__(self, name: str = "cpg") -> None:
        self.name = name
        self._graph = nx.DiGraph()
        self._processes: Dict[str, Process] = {}
        self._edges: Dict[Tuple[str, str], Edge] = {}
        self._guard_cache: Optional[Dict[str, BoolExpr]] = None
        self._topo_cache: Optional[List[str]] = None
        self._successor_cache: Optional[Dict[str, Tuple[str, ...]]] = None
        self._in_edge_cache: Optional[Dict[str, Tuple[Edge, ...]]] = None

    # -- construction ---------------------------------------------------------

    def add_process(self, process: Process) -> Process:
        """Add a process node; returns the process for chaining."""
        if process.name in self._processes:
            raise GraphStructureError(f"duplicate process name {process.name!r}")
        if process.is_source and self._find_kind(ProcessKind.SOURCE) is not None:
            raise GraphStructureError("the graph already has a source process")
        if process.is_sink and self._find_kind(ProcessKind.SINK) is not None:
            raise GraphStructureError("the graph already has a sink process")
        self._processes[process.name] = process
        self._graph.add_node(process.name)
        self._invalidate_caches()
        return process

    def add_edge(self, edge: Edge) -> Edge:
        """Add a (simple or conditional) edge; endpoints must already exist."""
        for endpoint in (edge.src, edge.dst):
            if endpoint not in self._processes:
                raise GraphStructureError(f"unknown process {endpoint!r} in edge {edge}")
        if (edge.src, edge.dst) in self._edges:
            raise GraphStructureError(f"duplicate edge {edge.src}->{edge.dst}")
        self._edges[(edge.src, edge.dst)] = edge
        self._graph.add_edge(edge.src, edge.dst)
        self._invalidate_caches()
        return edge

    def connect(
        self,
        src: str,
        dst: str,
        condition: Optional[Literal] = None,
        communication_time: float = 0.0,
    ) -> Edge:
        """Convenience wrapper to add an edge by process names."""
        return self.add_edge(Edge(src, dst, condition, communication_time))

    def _invalidate_caches(self) -> None:
        self._guard_cache = None
        self._topo_cache = None
        self._successor_cache = None
        self._in_edge_cache = None

    def _find_kind(self, kind: ProcessKind) -> Optional[Process]:
        for process in self._processes.values():
            if process.kind is kind:
                return process
        return None

    # -- node / edge access -----------------------------------------------------

    @property
    def processes(self) -> Tuple[Process, ...]:
        return tuple(self._processes.values())

    @property
    def process_names(self) -> Tuple[str, ...]:
        return tuple(self._processes)

    @property
    def ordinary_processes(self) -> Tuple[Process, ...]:
        return tuple(p for p in self._processes.values() if p.is_ordinary)

    @property
    def communication_processes(self) -> Tuple[Process, ...]:
        return tuple(p for p in self._processes.values() if p.is_communication)

    @property
    def edges(self) -> Tuple[Edge, ...]:
        return tuple(self._edges.values())

    @property
    def simple_edges(self) -> Tuple[Edge, ...]:
        return tuple(e for e in self._edges.values() if e.is_simple)

    @property
    def conditional_edges(self) -> Tuple[Edge, ...]:
        return tuple(e for e in self._edges.values() if e.is_conditional)

    def __contains__(self, name: str) -> bool:
        return name in self._processes

    def __getitem__(self, name: str) -> Process:
        return self._processes[name]

    def __len__(self) -> int:
        return len(self._processes)

    def __iter__(self) -> Iterator[Process]:
        return iter(self._processes.values())

    def get_edge(self, src: str, dst: str) -> Edge:
        return self._edges[(src, dst)]

    def has_edge(self, src: str, dst: str) -> bool:
        return (src, dst) in self._edges

    @property
    def source(self) -> Process:
        process = self._find_kind(ProcessKind.SOURCE)
        if process is None:
            raise GraphStructureError("the graph has no source process")
        return process

    @property
    def sink(self) -> Process:
        process = self._find_kind(ProcessKind.SINK)
        if process is None:
            raise GraphStructureError("the graph has no sink process")
        return process

    def predecessors(self, name: str) -> Tuple[str, ...]:
        return tuple(self._graph.predecessors(name))

    def successors(self, name: str) -> Tuple[str, ...]:
        return tuple(self._graph.successors(name))

    def successor_map(self) -> Dict[str, Tuple[str, ...]]:
        """Successor names of every process, cached until the graph changes.

        The priority functions query successors for every process of every
        alternative path; materialising the adjacency once avoids a networkx
        iterator round-trip per query.  Callers must not mutate the dict.
        """
        if self._successor_cache is None:
            self._successor_cache = {
                name: tuple(self._graph.successors(name))
                for name in self._processes
            }
        return self._successor_cache

    def in_edges(self, name: str) -> Tuple[Edge, ...]:
        return tuple(self._edges[(src, name)] for src in self._graph.predecessors(name))

    def in_edge_map(self) -> Dict[str, Tuple[Edge, ...]]:
        """Incoming edges of every process, cached until the graph changes.

        One pass over the edge set replaces a networkx predecessor query per
        process; the per-path context builds of the list scheduler read the
        whole map.  Callers must not mutate the dict.  The per-name tuples
        preserve insertion order of the edges, matching :meth:`in_edges` for
        graphs built through :meth:`add_edge` (networkx adjacency and the
        edge dict are appended to together).
        """
        if self._in_edge_cache is None:
            collected: Dict[str, List[Edge]] = {name: [] for name in self._processes}
            for edge in self._edges.values():
                collected[edge.dst].append(edge)
            self._in_edge_cache = {
                name: tuple(edges) for name, edges in collected.items()
            }
        return self._in_edge_cache

    def out_edges(self, name: str) -> Tuple[Edge, ...]:
        return tuple(self._edges[(name, dst)] for dst in self._graph.successors(name))

    def topological_order(self) -> List[str]:
        """Return process names in a deterministic topological order (cached)."""
        return list(self._topological_order_internal())

    def _topological_order_internal(self) -> List[str]:
        if self._topo_cache is None:
            self._topo_cache = list(nx.lexicographical_topological_sort(self._graph))
        return self._topo_cache

    def to_networkx(self) -> nx.DiGraph:
        """Return a copy of the underlying networkx graph with attached attributes."""
        graph = nx.DiGraph(name=self.name)
        for process in self._processes.values():
            graph.add_node(process.name, process=process)
        for edge in self._edges.values():
            graph.add_edge(edge.src, edge.dst, edge=edge)
        return graph

    # -- conditions, disjunction and conjunction processes -----------------------

    @property
    def conditions(self) -> Tuple[Condition, ...]:
        """All condition variables appearing on conditional edges, sorted by name."""
        found = {edge.condition.condition for edge in self.conditional_edges}
        return tuple(sorted(found))

    def disjunction_processes(self) -> Dict[str, Condition]:
        """Map each disjunction process name to the condition it computes.

        A disjunction process is a node with at least one conditional output
        edge.  The model requires all conditional outputs of one node to refer
        to the same condition (one disjunction process computes one condition)
        and each condition to be computed by exactly one process.
        """
        result: Dict[str, Condition] = {}
        for name in self._processes:
            conditions = {
                edge.condition.condition
                for edge in self.out_edges(name)
                if edge.is_conditional
            }
            if not conditions:
                continue
            if len(conditions) > 1:
                raise GraphStructureError(
                    f"disjunction process {name!r} drives several conditions: "
                    f"{sorted(str(c) for c in conditions)}"
                )
            result[name] = next(iter(conditions))
        producers: Dict[Condition, str] = {}
        for name, condition in result.items():
            if condition in producers:
                raise GraphStructureError(
                    f"condition {condition} is computed by both "
                    f"{producers[condition]!r} and {name!r}"
                )
            producers[condition] = name
        return result

    def disjunction_process_of(self, condition: Condition) -> str:
        """Return the name of the process computing the given condition."""
        for name, computed in self.disjunction_processes().items():
            if computed == condition:
                return name
        raise KeyError(f"no disjunction process computes condition {condition}")

    def conjunction_processes(self) -> Tuple[str, ...]:
        """Names of conjunction processes (meeting points of alternative paths).

        A node is a conjunction process when it is explicitly flagged or when
        at least two of its incoming edge guards are mutually exclusive.
        """
        guards = self._incoming_edge_guards()
        result = []
        for name, process in self._processes.items():
            if process.is_conjunction:
                result.append(name)
                continue
            edge_guards = guards.get(name, [])
            if len(edge_guards) < 2:
                continue
            exclusive = any(
                edge_guards[i].is_mutually_exclusive_with(edge_guards[j])
                for i in range(len(edge_guards))
                for j in range(i + 1, len(edge_guards))
            )
            if exclusive:
                result.append(name)
        return tuple(result)

    def is_conjunction_process(self, name: str) -> bool:
        return name in set(self.conjunction_processes())

    # -- guards --------------------------------------------------------------

    def guards(self) -> Dict[str, BoolExpr]:
        """Return the guard ``X_Pi`` of every process.

        The guard of the source is ``true``.  For every other node the guard
        of each incoming edge is ``guard(src) AND edge condition``; a
        conjunction node takes the OR of its incoming edge guards, any other
        node the AND.
        """
        return dict(self._guards_internal())

    def _guards_internal(self) -> Dict[str, BoolExpr]:
        """The cached guard dict itself (callers must not mutate it)."""
        if self._guard_cache is not None:
            return self._guard_cache
        guards: Dict[str, BoolExpr] = {}
        explicit_conjunctions = {
            name for name, proc in self._processes.items() if proc.is_conjunction
        }
        for name in self.topological_order():
            in_edges = self.in_edges(name)
            if not in_edges:
                guards[name] = BoolExpr.true()
                continue
            edge_guards = []
            for edge in in_edges:
                guard = guards[edge.src]
                if edge.is_conditional:
                    guard = guard.and_(BoolExpr.from_literal(edge.condition))
                edge_guards.append(guard)
            is_conjunction = name in explicit_conjunctions or any(
                edge_guards[i].is_mutually_exclusive_with(edge_guards[j])
                for i in range(len(edge_guards))
                for j in range(i + 1, len(edge_guards))
            )
            if is_conjunction:
                combined = BoolExpr.false()
                for guard in edge_guards:
                    combined = combined.or_(guard)
            else:
                combined = BoolExpr.true()
                for guard in edge_guards:
                    combined = combined.and_(guard)
            # Keep guards in their minimal form: reconvergence points would
            # otherwise accumulate tautological terms (C | !C) and every later
            # guard combination and query would grow multiplicatively.
            guards[name] = combined.simplified()
        self._guard_cache = guards
        return guards

    def guard_of(self, name: str) -> BoolExpr:
        """Return the guard of a single process."""
        return self.guards()[name]

    def _incoming_edge_guards(self) -> Dict[str, List[BoolExpr]]:
        guards = self.guards()
        result: Dict[str, List[BoolExpr]] = {}
        for name in self._processes:
            edge_guards = []
            for edge in self.in_edges(name):
                guard = guards[edge.src]
                if edge.is_conditional:
                    guard = guard.and_(BoolExpr.from_literal(edge.condition))
                edge_guards.append(guard)
            result[name] = edge_guards
        return result

    # -- activation semantics -----------------------------------------------------

    def active_processes(self, assignment: Mapping[Condition, bool]) -> Tuple[str, ...]:
        """Names of processes activated under the given (complete) assignment."""
        guards = self._guards_internal()
        pos, neg = masks_from_assignment(assignment)
        return tuple(
            name
            for name in self._topological_order_internal()
            if guards[name].satisfied_by_masks(pos, neg) or guards[name].is_true()
        )

    def active_predecessors(
        self, name: str, assignment: Mapping[Condition, bool]
    ) -> Tuple[str, ...]:
        """Predecessors that actually deliver an input under the assignment.

        A process waits for every predecessor whose own guard holds and whose
        connecting edge (if conditional) has a satisfied condition.  For
        conjunction processes this selects exactly the predecessors on the
        active alternative path.
        """
        guards = self._guards_internal()
        active = []
        for edge in self.in_edges(name):
            if edge.is_conditional and not edge.condition.evaluate(assignment):
                continue
            src_guard = guards[edge.src]
            if src_guard.is_true() or src_guard.satisfied_by_partial(assignment):
                active.append(edge.src)
        return tuple(active)

    # -- validation ----------------------------------------------------------------

    def validate(self) -> None:
        """Check the structural rules of the conditional process graph model."""
        if self._find_kind(ProcessKind.SOURCE) is None:
            raise GraphStructureError("missing source process")
        if self._find_kind(ProcessKind.SINK) is None:
            raise GraphStructureError("missing sink process")
        if not nx.is_directed_acyclic_graph(self._graph):
            raise GraphStructureError("the process graph must be acyclic")
        source = self.source.name
        sink = self.sink.name
        for name in self._processes:
            if name != source and not self.predecessors(name):
                raise GraphStructureError(
                    f"process {name!r} has no predecessor; the graph must be polar "
                    "(every process a successor of the source)"
                )
            if name != sink and not self.successors(name):
                raise GraphStructureError(
                    f"process {name!r} has no successor; the graph must be polar "
                    "(every process a predecessor of the sink)"
                )
        if self.predecessors(source):
            raise GraphStructureError("the source process must have no predecessors")
        if self.successors(sink):
            raise GraphStructureError("the sink process must have no successors")
        # One condition per disjunction process, one producer per condition.
        self.disjunction_processes()
        # Guard implication rule: an edge into a non-conjunction node Pj requires
        # X_Pj => X_Pi so that Pj never waits for a message that cannot arrive.
        guards = self.guards()
        conjunctions = set(self.conjunction_processes())
        for edge in self._edges.values():
            if edge.dst in conjunctions:
                continue
            src_guard = guards[edge.src]
            dst_guard = guards[edge.dst]
            if not dst_guard.implies(src_guard):
                raise GraphStructureError(
                    f"edge {edge} violates the guard rule: guard({edge.dst}) = "
                    f"{dst_guard} does not imply guard({edge.src}) = {src_guard}"
                )

    def copy(self, name: Optional[str] = None) -> "ConditionalProcessGraph":
        """Return a deep-enough copy (processes and edges are immutable)."""
        clone = ConditionalProcessGraph(name or self.name)
        for process in self._processes.values():
            clone.add_process(process)
        for edge in self._edges.values():
            clone.add_edge(edge)
        return clone

    def subgraph(self, names: Iterable[str], name: str = "") -> "ConditionalProcessGraph":
        """Return the induced subgraph over the given process names."""
        keep = set(names)
        clone = ConditionalProcessGraph(name or f"{self.name}-sub")
        for process in self._processes.values():
            if process.name in keep:
                clone.add_process(process)
        for edge in self._edges.values():
            if edge.src in keep and edge.dst in keep:
                clone.add_edge(edge)
        return clone

    def __repr__(self) -> str:
        return (
            f"ConditionalProcessGraph(name={self.name!r}, processes={len(self)}, "
            f"edges={len(self._edges)}, conditions={len(self.conditions)})"
        )
