"""The conditional process graph (CPG) model.

This package implements the abstract system representation of the paper: a
directed, acyclic, polar graph whose nodes are processes and whose edges are
simple (dataflow) or conditional (dataflow guarded by a condition value).  It
also provides communication-process expansion for a given mapping and the
enumeration of the alternative paths the scheduler works on.
"""

from .builder import CPGBuilder, build_chain_graph
from .communication import (
    BUS_POLICIES,
    CommunicationInfo,
    ExpandedGraph,
    ExpansionStructure,
    assign_buses,
    crossing_edges,
    expand_communications,
    expansion_structure,
    is_expanded,
    message_id,
)
from .cpg import ConditionalProcessGraph, GraphStructureError
from .edges import Edge
from .paths import AlternativePath, PathEnumerator, count_paths, enumerate_paths
from .process import (
    Process,
    ProcessKind,
    communication_process,
    ordinary_process,
    sink_process,
    source_process,
)

__all__ = [
    "AlternativePath",
    "BUS_POLICIES",
    "CPGBuilder",
    "CommunicationInfo",
    "ConditionalProcessGraph",
    "Edge",
    "ExpandedGraph",
    "ExpansionStructure",
    "GraphStructureError",
    "PathEnumerator",
    "Process",
    "ProcessKind",
    "assign_buses",
    "build_chain_graph",
    "communication_process",
    "count_paths",
    "crossing_edges",
    "enumerate_paths",
    "expand_communications",
    "expansion_structure",
    "is_expanded",
    "message_id",
    "ordinary_process",
    "sink_process",
    "source_process",
]
