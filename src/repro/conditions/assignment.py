"""Helpers for working with (partial) assignments of condition values.

An assignment maps :class:`~repro.conditions.literals.Condition` objects to
booleans.  Complete assignments select exactly one alternative path through a
conditional process graph; partial assignments describe the knowledge of the
run-time scheduler at a given moment.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, Mapping

from .conjunction import Conjunction
from .literals import Condition, Literal

Assignment = Dict[Condition, bool]


def assignment_from_literals(literals: Iterable[Literal]) -> Assignment:
    """Build an assignment dict from literals, rejecting contradictions."""
    result: Assignment = {}
    for literal in literals:
        existing = result.get(literal.condition)
        if existing is not None and existing != literal.value:
            raise ValueError(f"contradictory literals for {literal.condition}")
        result[literal.condition] = literal.value
    return result


def literals_from_assignment(assignment: Mapping[Condition, bool]) -> frozenset:
    """Return the set of literals equivalent to an assignment."""
    return frozenset(Literal(cond, value) for cond, value in assignment.items())


def conjunction_from_assignment(assignment: Mapping[Condition, bool]) -> Conjunction:
    """Return the conjunction equivalent to an assignment."""
    return Conjunction.from_assignment(assignment)


def all_assignments(conditions: Iterable[Condition]) -> Iterator[Assignment]:
    """Yield every complete assignment of the given conditions (2^n of them)."""
    variables = sorted(set(conditions))
    for values in itertools.product((False, True), repeat=len(variables)):
        yield dict(zip(variables, values))


def extend_assignment(
    assignment: Mapping[Condition, bool], condition: Condition, value: bool
) -> Assignment:
    """Return a copy of ``assignment`` with one extra condition fixed."""
    if condition in assignment and assignment[condition] != value:
        raise ValueError(f"condition {condition} already assigned the opposite value")
    result = dict(assignment)
    result[condition] = value
    return result


def restrict_assignment(
    assignment: Mapping[Condition, bool], conditions: Iterable[Condition]
) -> Assignment:
    """Return the sub-assignment over ``conditions`` (missing ones are dropped)."""
    allowed = set(conditions)
    return {cond: value for cond, value in assignment.items() if cond in allowed}


def is_extension_of(
    assignment: Mapping[Condition, bool], base: Mapping[Condition, bool]
) -> bool:
    """True when ``assignment`` agrees with and covers every condition of ``base``."""
    return all(
        cond in assignment and assignment[cond] == value for cond, value in base.items()
    )
