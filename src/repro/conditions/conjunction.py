"""Conjunctions of condition literals.

A :class:`Conjunction` is a set of literals interpreted as their logical AND.
It is the shape used throughout the paper for path labels (``D∧C∧!K``),
schedule-table column headers and the "conditions known at a given moment on a
processing element".  The empty conjunction is ``true``.

Internally a conjunction is a pair of integer bitmasks over the process-wide
:data:`~repro.conditions.universe.DEFAULT_UNIVERSE`: ``pos_mask`` holds one
bit per positive literal and ``neg_mask`` one bit per negated literal.  The
operations the schedule merger hammers — :meth:`is_mutually_exclusive_with`,
:meth:`implies`, :meth:`conjoin`, :meth:`satisfied_by_masks` — are therefore
one or two integer operations; literal objects are only materialised when a
caller actually iterates or prints the conjunction.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional

from .literals import Condition, Literal
from .universe import DEFAULT_UNIVERSE


class ContradictionError(ValueError):
    """Raised when a conjunction would contain a literal and its negation."""


class Conjunction:
    """An immutable conjunction (AND) of literals over distinct conditions.

    The conjunction with no literals represents ``true``.  A conjunction never
    contains two literals over the same condition: attempting to build one
    raises :class:`ContradictionError` (use :meth:`try_and` for a non-raising
    variant).
    """

    __slots__ = ("_pos", "_neg", "_hash", "_literals", "_conditions")

    def __init__(self, literals: Iterable[Literal] = ()) -> None:
        bit_of = DEFAULT_UNIVERSE.bit_of
        pos = neg = 0
        for literal in literals:
            bit = bit_of(literal.condition)
            if bit & (neg if literal.value else pos):
                raise ContradictionError(
                    f"contradictory literals {literal.negate()} and {literal}"
                )
            if literal.value:
                pos |= bit
            else:
                neg |= bit
        self._pos = pos
        self._neg = neg
        self._hash = hash((pos, neg))
        self._literals: Optional[FrozenSet[Literal]] = None
        self._conditions: Optional[FrozenSet[Condition]] = None

    # -- constructors -----------------------------------------------------

    @classmethod
    def true(cls) -> "Conjunction":
        """The neutral conjunction (no literals), i.e. logical ``true``."""
        return _TRUE

    @classmethod
    def of(cls, *literals: Literal) -> "Conjunction":
        """Build a conjunction from positional literals."""
        return cls(literals)

    @classmethod
    def from_assignment(cls, assignment: Mapping[Condition, bool]) -> "Conjunction":
        """Build the conjunction equivalent to a (partial) condition assignment."""
        pos, neg = DEFAULT_UNIVERSE.masks_of(assignment)
        return cls.from_masks(pos, neg)

    @classmethod
    def from_masks(cls, pos_mask: int, neg_mask: int) -> "Conjunction":
        """Build a conjunction directly from its bitmask pair (O(1)).

        The masks must be disjoint; a shared bit would denote ``C & !C``.
        """
        if pos_mask & neg_mask:
            literal = DEFAULT_UNIVERSE.conditions_in(pos_mask & neg_mask)[0].true()
            raise ContradictionError(
                f"contradictory literals {literal} and {literal.negate()}"
            )
        self = object.__new__(cls)
        self._pos = pos_mask
        self._neg = neg_mask
        self._hash = hash((pos_mask, neg_mask))
        self._literals = None
        self._conditions = None
        return self

    # -- basic protocol ----------------------------------------------------

    @property
    def pos_mask(self) -> int:
        """Bitmask of the positively occurring conditions."""
        return self._pos

    @property
    def neg_mask(self) -> int:
        """Bitmask of the negated conditions."""
        return self._neg

    @property
    def literals(self) -> FrozenSet[Literal]:
        if self._literals is None:
            self._literals = frozenset(
                tuple(
                    condition.true()
                    for condition in DEFAULT_UNIVERSE.conditions_in(self._pos)
                )
                + tuple(
                    condition.false()
                    for condition in DEFAULT_UNIVERSE.conditions_in(self._neg)
                )
            )
        return self._literals

    @property
    def conditions(self) -> FrozenSet[Condition]:
        if self._conditions is None:
            self._conditions = frozenset(
                DEFAULT_UNIVERSE.conditions_in(self._pos | self._neg)
            )
        return self._conditions

    def __iter__(self) -> Iterator[Literal]:
        return iter(sorted(self.literals))

    def __len__(self) -> int:
        return (self._pos | self._neg).bit_count()

    def __contains__(self, literal: Literal) -> bool:
        bit = DEFAULT_UNIVERSE.bit_of(literal.condition)
        return bool(bit & (self._pos if literal.value else self._neg))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Conjunction):
            return NotImplemented
        return self._pos == other._pos and self._neg == other._neg

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        if not (self._pos | self._neg):
            return "true"
        return " & ".join(str(lit) for lit in sorted(self.literals))

    def __repr__(self) -> str:
        return f"Conjunction({str(self)!r})"

    def is_true(self) -> bool:
        """True when this is the empty conjunction (logical ``true``)."""
        return not (self._pos | self._neg)

    # -- algebra -----------------------------------------------------------

    def value_of(self, condition: Condition) -> Optional[bool]:
        """Return the polarity this conjunction fixes for ``condition``, or None.

        O(1): a single interning lookup plus two mask probes.
        """
        bit = DEFAULT_UNIVERSE.bit_of(condition)
        if bit & self._pos:
            return True
        if bit & self._neg:
            return False
        return None

    def conjoin(self, other: "Conjunction") -> "Conjunction":
        """Return the AND of the two conjunctions.

        Raises :class:`ContradictionError` when the result is unsatisfiable.
        """
        conflict = (self._pos & other._neg) | (self._neg & other._pos)
        if conflict:
            bit = conflict & -conflict
            condition = DEFAULT_UNIVERSE.conditions_in(bit)[0]
            existing = Literal(condition, bool(self._pos & bit))
            raise ContradictionError(
                f"contradictory literals {existing} and {existing.negate()}"
            )
        return Conjunction.from_masks(self._pos | other._pos, self._neg | other._neg)

    def try_and(self, other: "Conjunction") -> Optional["Conjunction"]:
        """Return the AND of the two conjunctions, or None when contradictory."""
        if (self._pos & other._neg) | (self._neg & other._pos):
            return None
        return Conjunction.from_masks(self._pos | other._pos, self._neg | other._neg)

    def and_literal(self, literal: Literal) -> "Conjunction":
        """Return this conjunction extended with one more literal."""
        bit = DEFAULT_UNIVERSE.bit_of(literal.condition)
        if bit & (self._neg if literal.value else self._pos):
            raise ContradictionError(
                f"contradictory literals {literal.negate()} and {literal}"
            )
        if literal.value:
            return Conjunction.from_masks(self._pos | bit, self._neg)
        return Conjunction.from_masks(self._pos, self._neg | bit)

    def is_compatible_with(self, other: "Conjunction") -> bool:
        """True when the two conjunctions can be simultaneously true."""
        return not ((self._pos & other._neg) | (self._neg & other._pos))

    def is_mutually_exclusive_with(self, other: "Conjunction") -> bool:
        """True when ``self AND other`` is unsatisfiable (requirement 2 of the paper)."""
        return bool((self._pos & other._neg) | (self._neg & other._pos))

    def implies(self, other: "Conjunction") -> bool:
        """True when every assignment satisfying ``self`` also satisfies ``other``.

        For conjunctions this reduces to ``other``'s literals being a subset of
        ``self``'s literals — two submask probes.
        """
        return not (other._pos & ~self._pos) and not (other._neg & ~self._neg)

    def restricted_to(self, conditions: Iterable[Condition]) -> "Conjunction":
        """Return the conjunction of only the literals over the given conditions."""
        allowed = DEFAULT_UNIVERSE.mask_of(conditions)
        return Conjunction.from_masks(self._pos & allowed, self._neg & allowed)

    def without(self, conditions: Iterable[Condition]) -> "Conjunction":
        """Return the conjunction with literals over the given conditions removed."""
        removed = DEFAULT_UNIVERSE.mask_of(conditions)
        return Conjunction.from_masks(self._pos & ~removed, self._neg & ~removed)

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, assignment: Mapping[Condition, bool]) -> bool:
        """Evaluate under a complete assignment of this conjunction's conditions."""
        return all(lit.evaluate(assignment) for lit in self.literals)

    def satisfied_by_partial(self, assignment: Mapping[Condition, bool]) -> bool:
        """True when every literal's condition is assigned and matches."""
        pos, neg = DEFAULT_UNIVERSE.masks_of(assignment)
        return self.satisfied_by_masks(pos, neg)

    def satisfied_by_masks(self, pos_mask: int, neg_mask: int) -> bool:
        """Mask form of :meth:`satisfied_by_partial` (two integer probes)."""
        return not (self._pos & ~pos_mask) and not (self._neg & ~neg_mask)

    def consistent_with_partial(self, assignment: Mapping[Condition, bool]) -> bool:
        """True when no assigned condition contradicts this conjunction."""
        pos, neg = DEFAULT_UNIVERSE.masks_of(assignment)
        return self.consistent_with_masks(pos, neg)

    def consistent_with_masks(self, pos_mask: int, neg_mask: int) -> bool:
        """Mask form of :meth:`consistent_with_partial`."""
        return not ((self._pos & neg_mask) | (self._neg & pos_mask))

    def as_assignment(self) -> Dict[Condition, bool]:
        """Return the (partial) assignment equivalent to this conjunction."""
        return {lit.condition: lit.value for lit in self.literals}


_TRUE = Conjunction(())
