"""Conjunctions of condition literals.

A :class:`Conjunction` is a set of literals interpreted as their logical AND.
It is the shape used throughout the paper for path labels (``D∧C∧!K``),
schedule-table column headers and the "conditions known at a given moment on a
processing element".  The empty conjunction is ``true``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional

from .literals import Condition, Literal


class ContradictionError(ValueError):
    """Raised when a conjunction would contain a literal and its negation."""


class Conjunction:
    """An immutable conjunction (AND) of literals over distinct conditions.

    The conjunction with no literals represents ``true``.  A conjunction never
    contains two literals over the same condition: attempting to build one
    raises :class:`ContradictionError` (use :meth:`try_and` for a non-raising
    variant).
    """

    __slots__ = ("_literals", "_hash")

    def __init__(self, literals: Iterable[Literal] = ()) -> None:
        by_condition: Dict[Condition, Literal] = {}
        for literal in literals:
            existing = by_condition.get(literal.condition)
            if existing is not None and existing.value != literal.value:
                raise ContradictionError(
                    f"contradictory literals {existing} and {literal}"
                )
            by_condition[literal.condition] = literal
        self._literals: FrozenSet[Literal] = frozenset(by_condition.values())
        self._hash = hash(self._literals)

    # -- constructors -----------------------------------------------------

    @classmethod
    def true(cls) -> "Conjunction":
        """The neutral conjunction (no literals), i.e. logical ``true``."""
        return _TRUE

    @classmethod
    def of(cls, *literals: Literal) -> "Conjunction":
        """Build a conjunction from positional literals."""
        return cls(literals)

    @classmethod
    def from_assignment(cls, assignment: Mapping[Condition, bool]) -> "Conjunction":
        """Build the conjunction equivalent to a (partial) condition assignment."""
        return cls(Literal(cond, value) for cond, value in assignment.items())

    # -- basic protocol ----------------------------------------------------

    @property
    def literals(self) -> FrozenSet[Literal]:
        return self._literals

    @property
    def conditions(self) -> FrozenSet[Condition]:
        return frozenset(lit.condition for lit in self._literals)

    def __iter__(self) -> Iterator[Literal]:
        return iter(sorted(self._literals))

    def __len__(self) -> int:
        return len(self._literals)

    def __contains__(self, literal: Literal) -> bool:
        return literal in self._literals

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Conjunction):
            return NotImplemented
        return self._literals == other._literals

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        if not self._literals:
            return "true"
        return " & ".join(str(lit) for lit in sorted(self._literals))

    def __repr__(self) -> str:
        return f"Conjunction({str(self)!r})"

    def is_true(self) -> bool:
        """True when this is the empty conjunction (logical ``true``)."""
        return not self._literals

    # -- algebra -----------------------------------------------------------

    def value_of(self, condition: Condition) -> Optional[bool]:
        """Return the polarity this conjunction fixes for ``condition``, or None."""
        for literal in self._literals:
            if literal.condition == condition:
                return literal.value
        return None

    def conjoin(self, other: "Conjunction") -> "Conjunction":
        """Return the AND of the two conjunctions.

        Raises :class:`ContradictionError` when the result is unsatisfiable.
        """
        return Conjunction(tuple(self._literals) + tuple(other._literals))

    def try_and(self, other: "Conjunction") -> Optional["Conjunction"]:
        """Return the AND of the two conjunctions, or None when contradictory."""
        try:
            return self.conjoin(other)
        except ContradictionError:
            return None

    def and_literal(self, literal: Literal) -> "Conjunction":
        """Return this conjunction extended with one more literal."""
        return Conjunction(tuple(self._literals) + (literal,))

    def is_compatible_with(self, other: "Conjunction") -> bool:
        """True when the two conjunctions can be simultaneously true."""
        return self.try_and(other) is not None

    def is_mutually_exclusive_with(self, other: "Conjunction") -> bool:
        """True when ``self AND other`` is unsatisfiable (requirement 2 of the paper)."""
        return self.try_and(other) is None

    def implies(self, other: "Conjunction") -> bool:
        """True when every assignment satisfying ``self`` also satisfies ``other``.

        For conjunctions this reduces to ``other``'s literals being a subset of
        ``self``'s literals.
        """
        return other._literals <= self._literals

    def restricted_to(self, conditions: Iterable[Condition]) -> "Conjunction":
        """Return the conjunction of only the literals over the given conditions."""
        allowed = frozenset(conditions)
        return Conjunction(
            lit for lit in self._literals if lit.condition in allowed
        )

    def without(self, conditions: Iterable[Condition]) -> "Conjunction":
        """Return the conjunction with literals over the given conditions removed."""
        removed = frozenset(conditions)
        return Conjunction(
            lit for lit in self._literals if lit.condition not in removed
        )

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, assignment: Mapping[Condition, bool]) -> bool:
        """Evaluate under a complete assignment of this conjunction's conditions."""
        return all(lit.evaluate(assignment) for lit in self._literals)

    def satisfied_by_partial(self, assignment: Mapping[Condition, bool]) -> bool:
        """True when every literal's condition is assigned and matches."""
        for literal in self._literals:
            value = assignment.get(literal.condition)
            if value is None or value != literal.value:
                return False
        return True

    def consistent_with_partial(self, assignment: Mapping[Condition, bool]) -> bool:
        """True when no assigned condition contradicts this conjunction."""
        for literal in self._literals:
            value = assignment.get(literal.condition)
            if value is not None and value != literal.value:
                return False
        return True

    def as_assignment(self) -> Dict[Condition, bool]:
        """Return the (partial) assignment equivalent to this conjunction."""
        return {lit.condition: lit.value for lit in self._literals}


_TRUE = Conjunction(())
