"""Boolean machinery for conditions, guards, path labels and column headers.

The conditional process graph model of Eles et al. attaches boolean
*conditions* to conditional edges.  This package provides the small, exact
boolean algebra the scheduler needs:

* :class:`Condition` / :class:`Literal` — condition variables and polarised
  occurrences;
* :class:`Conjunction` — an AND of literals (path labels, schedule-table
  column headers, "conditions known at time t on PE p");
* :class:`BoolExpr` — sum-of-products expressions (general process guards);
* assignment helpers for enumerating and manipulating condition valuations.
"""

from .assignment import (
    Assignment,
    all_assignments,
    assignment_from_literals,
    conjunction_from_assignment,
    extend_assignment,
    is_extension_of,
    literals_from_assignment,
    restrict_assignment,
)
from .conjunction import Conjunction, ContradictionError
from .expressions import BoolExpr
from .literals import Condition, Literal, conditions_of
from .universe import (
    DEFAULT_UNIVERSE,
    ConditionUniverse,
    condition_bit,
    masks_from_assignment,
)

__all__ = [
    "Assignment",
    "BoolExpr",
    "Condition",
    "ConditionUniverse",
    "Conjunction",
    "ContradictionError",
    "DEFAULT_UNIVERSE",
    "Literal",
    "condition_bit",
    "masks_from_assignment",
    "all_assignments",
    "assignment_from_literals",
    "conditions_of",
    "conjunction_from_assignment",
    "extend_assignment",
    "is_extension_of",
    "literals_from_assignment",
    "restrict_assignment",
]
