"""Sum-of-products boolean expressions over condition variables.

Guards of processes in a conditional process graph are, in general, boolean
expressions: a process below a disjunction node has a conjunctive guard such
as ``D & K``, while a conjunction process that re-joins alternative paths has
a disjunctive guard (the OR of the guards of its alternative predecessors,
which usually simplifies back to the guard that held before the split).

:class:`BoolExpr` represents such expressions as a set of
:class:`~repro.conditions.conjunction.Conjunction` terms (sum of products).
Because a conditional process graph only ever involves a handful of condition
variables, semantic questions (implication, equivalence, satisfiability) are
decided exactly by evaluating over all assignments of the mentioned variables.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Tuple

from .conjunction import Conjunction
from .literals import Condition, Literal
from .universe import masks_from_assignment


class BoolExpr:
    """A boolean expression in sum-of-products form.

    The empty sum is ``false``; a sum containing the empty conjunction is
    ``true``.  Instances are immutable and hashable on their *semantic*
    canonical form (the set of satisfying assignments over mentioned
    variables is not used directly for hashing, but terms are syntactically
    minimised: contradictory terms dropped and absorbed terms removed).
    """

    __slots__ = ("_terms", "_conditions", "_is_true", "_hash")

    def __init__(self, terms: Iterable[Conjunction] = ()) -> None:
        self._terms: FrozenSet[Conjunction] = _minimise(terms)
        self._conditions = None
        self._is_true = None
        self._hash = None

    # -- constructors -----------------------------------------------------

    @classmethod
    def true(cls) -> "BoolExpr":
        return _TRUE_EXPR

    @classmethod
    def false(cls) -> "BoolExpr":
        return _FALSE_EXPR

    @classmethod
    def from_conjunction(cls, conjunction: Conjunction) -> "BoolExpr":
        return cls((conjunction,))

    @classmethod
    def from_literal(cls, literal: Literal) -> "BoolExpr":
        return cls((Conjunction((literal,)),))

    # -- basic protocol ----------------------------------------------------

    @property
    def terms(self) -> FrozenSet[Conjunction]:
        return self._terms

    @property
    def conditions(self) -> FrozenSet[Condition]:
        if self._conditions is None:
            result: set = set()
            for term in self._terms:
                result.update(term.conditions)
            self._conditions = frozenset(result)
        return self._conditions

    def __iter__(self) -> Iterator[Conjunction]:
        return iter(sorted(self._terms, key=str))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoolExpr):
            return NotImplemented
        return self.is_equivalent_to(other)

    def __hash__(self) -> int:
        # Hash on the set of variables plus truth over a canonical enumeration
        # so that semantically equal expressions hash equally.
        if self._hash is None:
            variables = tuple(sorted(self.conditions))
            truth: Tuple[bool, ...] = tuple(
                self.evaluate(dict(zip(variables, values)))
                for values in itertools.product((False, True), repeat=len(variables))
            )
            self._hash = hash((variables, truth))
        return self._hash

    def __str__(self) -> str:
        if not self._terms:
            return "false"
        if self.is_true():
            return "true"
        return " | ".join(
            f"({term})" if len(term) > 1 else str(term)
            for term in sorted(self._terms, key=str)
        )

    def __repr__(self) -> str:
        return f"BoolExpr({str(self)!r})"

    def is_false(self) -> bool:
        return not self._terms

    def is_true(self) -> bool:
        """True when the expression holds under every assignment (a tautology).

        The verdict is cached: guards are queried once per dispatch decision
        by the list scheduler, and the truth-table enumeration would otherwise
        dominate large merges.
        """
        if self._is_true is None:
            if any(term.is_true() for term in self._terms):
                self._is_true = True
            elif not self._terms:
                self._is_true = False
            else:
                self._is_true = all(
                    self.evaluate(assignment)
                    for assignment in self._assignments(self.conditions)
                )
        return self._is_true

    # -- algebra -----------------------------------------------------------

    def or_(self, other: "BoolExpr") -> "BoolExpr":
        return BoolExpr(tuple(self._terms) + tuple(other._terms))

    def and_(self, other: "BoolExpr") -> "BoolExpr":
        products = []
        for left in self._terms:
            for right in other._terms:
                combined = left.try_and(right)
                if combined is not None:
                    products.append(combined)
        return BoolExpr(products)

    def and_conjunction(self, conjunction: Conjunction) -> "BoolExpr":
        return self.and_(BoolExpr.from_conjunction(conjunction))

    def __or__(self, other: "BoolExpr") -> "BoolExpr":
        return self.or_(other)

    def __and__(self, other: "BoolExpr") -> "BoolExpr":
        return self.and_(other)

    # -- semantics ----------------------------------------------------------

    def evaluate(self, assignment: Mapping[Condition, bool]) -> bool:
        """Evaluate under an assignment covering all mentioned conditions."""
        return any(term.evaluate(assignment) for term in self._terms)

    def satisfied_by_partial(self, assignment: Mapping[Condition, bool]) -> bool:
        """True when some term is fully assigned and satisfied."""
        pos, neg = masks_from_assignment(assignment)
        return self.satisfied_by_masks(pos, neg)

    def satisfied_by_masks(self, pos_mask: int, neg_mask: int) -> bool:
        """Mask form of :meth:`satisfied_by_partial`: two probes per term."""
        return any(
            term.satisfied_by_masks(pos_mask, neg_mask) for term in self._terms
        )

    def is_satisfiable(self) -> bool:
        return bool(self._terms)

    def _assignments(self, conditions: Iterable[Condition]) -> Iterator[Dict[Condition, bool]]:
        variables = sorted(set(conditions))
        for values in itertools.product((False, True), repeat=len(variables)):
            yield dict(zip(variables, values))

    def implies(self, other: "BoolExpr") -> bool:
        """Exact implication check by exhaustive evaluation."""
        variables = self.conditions | other.conditions
        for assignment in self._assignments(variables):
            if self.evaluate(assignment) and not other.evaluate(assignment):
                return False
        return True

    def is_equivalent_to(self, other: "BoolExpr") -> bool:
        return self.implies(other) and other.implies(self)

    def is_mutually_exclusive_with(self, other: "BoolExpr") -> bool:
        variables = self.conditions | other.conditions
        for assignment in self._assignments(variables):
            if self.evaluate(assignment) and other.evaluate(assignment):
                return False
        return True

    def covers_conjunction(self, conjunction: Conjunction) -> bool:
        """True when the conjunction implies this expression."""
        return BoolExpr.from_conjunction(conjunction).implies(self)

    def simplified(self, max_conditions: int = 16) -> "BoolExpr":
        """Return a semantically equal expression over only the relevant conditions.

        Expressions produced by guard derivation accumulate redundant terms at
        every reconvergence point (``C | !C`` and friends); left alone, the
        conjunction/disjunction products grow multiplicatively along the graph
        and make every later guard query expensive.  This method rebuilds the
        expression from its truth table: conditions whose value never changes
        the outcome are dropped and the result is the sum of the remaining
        minterms (``true``/``false`` when constant).  Expressions over more
        than ``max_conditions`` variables are returned unchanged to keep the
        truth-table enumeration bounded.
        """
        variables = sorted(self.conditions)
        if not variables or len(variables) > max_conditions:
            return self
        assignments = list(self._assignments(variables))
        outcomes = {
            tuple(assignment[var] for var in variables): self.evaluate(assignment)
            for assignment in assignments
        }
        if not any(outcomes.values()):
            return BoolExpr.false()
        if all(outcomes.values()):
            return BoolExpr.true()

        relevant = []
        for index, variable in enumerate(variables):
            for bits, outcome in outcomes.items():
                flipped = bits[:index] + (not bits[index],) + bits[index + 1 :]
                if outcomes[flipped] != outcome:
                    relevant.append((index, variable))
                    break
        terms = set()
        for bits, outcome in outcomes.items():
            if not outcome:
                continue
            terms.add(
                Conjunction(
                    Literal(variable, bits[index]) for index, variable in relevant
                )
            )
        return BoolExpr(terms)

    def satisfying_assignments(
        self, conditions: Iterable[Condition]
    ) -> Iterator[Dict[Condition, bool]]:
        """Yield every assignment of ``conditions`` that satisfies the expression."""
        for assignment in self._assignments(set(conditions) | set(self.conditions)):
            if self.evaluate(assignment):
                yield assignment


def _minimise(terms: Iterable[Conjunction]) -> FrozenSet[Conjunction]:
    """Drop duplicate and absorbed terms (``A`` absorbs ``A & B``)."""
    unique = set(terms)
    kept = set()
    for term in unique:
        absorbed = any(
            other is not term and term.implies(other) and other != term
            for other in unique
        )
        if not absorbed:
            kept.add(term)
    if any(term.is_true() for term in kept):
        return frozenset((Conjunction.true(),))
    return frozenset(kept)


_TRUE_EXPR = BoolExpr((Conjunction.true(),))
_FALSE_EXPR = BoolExpr(())
