"""Condition variables and literals.

In a conditional process graph every *condition* is an independent boolean
value computed by a disjunction process.  A *literal* is a condition together
with a polarity, e.g. ``C`` or ``not C``.  Literals are the atoms from which
guards, path labels and schedule-table column headers are built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping


@dataclass(frozen=True, order=True)
class Condition:
    """A boolean condition variable, identified by its name.

    The paper assumes conditions are independent of each other; each condition
    is produced by exactly one disjunction process.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("condition name must be a non-empty string")

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Condition({self.name!r})"

    def literal(self, value: bool = True) -> "Literal":
        """Return the literal of this condition with the given polarity."""
        return Literal(self, bool(value))

    def true(self) -> "Literal":
        """Return the positive literal of this condition."""
        return Literal(self, True)

    def false(self) -> "Literal":
        """Return the negative literal of this condition."""
        return Literal(self, False)


@dataclass(frozen=True, order=True)
class Literal:
    """A condition with a polarity (``C`` when ``value`` is True, ``!C`` otherwise)."""

    condition: Condition
    value: bool = True

    def __str__(self) -> str:
        return self.condition.name if self.value else f"!{self.condition.name}"

    def __repr__(self) -> str:
        return f"Literal({self.condition.name!r}, {self.value})"

    def negate(self) -> "Literal":
        """Return the literal of the same condition with the opposite polarity."""
        return Literal(self.condition, not self.value)

    def __invert__(self) -> "Literal":
        return self.negate()

    def conflicts_with(self, other: "Literal") -> bool:
        """True when the two literals are over the same condition with opposite values."""
        return self.condition == other.condition and self.value != other.value

    def evaluate(self, assignment: Mapping[Condition, bool]) -> bool:
        """Evaluate this literal under a (complete for this condition) assignment.

        Raises ``KeyError`` if the condition is not assigned.
        """
        return assignment[self.condition] == self.value


def conditions_of(literals: Iterable[Literal]) -> frozenset:
    """Return the set of condition variables mentioned by ``literals``."""
    return frozenset(literal.condition for literal in literals)
