"""Interning of condition variables to bit positions.

The boolean objects the scheduler manipulates — path labels, schedule-table
column headers, "conditions known at time t" — are conjunctions of literals
over a small, per-system set of condition variables.  Representing such a
conjunction as a pair of integer bitmasks (one bit per condition; a bit in
``pos_mask`` for a positive literal, in ``neg_mask`` for a negated one) turns
the hot operations of the merging algorithm — mutual exclusion, implication,
conjoining, partial-assignment satisfaction — into one or two integer
operations.

A :class:`ConditionUniverse` is the registry that assigns each condition its
bit.  Conditions are interned on first use and keep their bit for the lifetime
of the universe, so masks built at different times remain comparable.  The
module-level :data:`DEFAULT_UNIVERSE` is shared by every graph in the process;
conditions are identified by name, so distinct graphs reusing the same
condition names simply share bits, which keeps cross-graph comparisons exact.
Note that :class:`~repro.conditions.Conjunction` is pinned to
:data:`DEFAULT_UNIVERSE` — every condition it touches is interned process-wide
and bits are never reclaimed, so mask width grows with the number of distinct
condition names seen over the process lifetime.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

from .literals import Condition


class ConditionUniverse:
    """Assigns every condition a stable bit position on first use."""

    __slots__ = ("_bits", "_conditions")

    def __init__(self) -> None:
        self._bits: Dict[Condition, int] = {}
        self._conditions: List[Condition] = []

    def __len__(self) -> int:
        return len(self._conditions)

    def bit_of(self, condition: Condition) -> int:
        """The single-bit mask of ``condition`` (interned on first use)."""
        bit = self._bits.get(condition)
        if bit is None:
            bit = 1 << len(self._conditions)
            self._bits[condition] = bit
            self._conditions.append(condition)
        return bit

    def condition_at(self, index: int) -> Condition:
        """The condition owning bit ``1 << index``."""
        return self._conditions[index]

    def conditions_in(self, mask: int) -> Tuple[Condition, ...]:
        """The conditions whose bits are set in ``mask`` (bit order)."""
        found = []
        index = 0
        while mask:
            if mask & 1:
                found.append(self._conditions[index])
            mask >>= 1
            index += 1
        return tuple(found)

    def masks_of(self, assignment: Mapping[Condition, bool]) -> Tuple[int, int]:
        """``(pos_mask, neg_mask)`` of a (partial) condition assignment."""
        pos = neg = 0
        for condition, value in assignment.items():
            bit = self.bit_of(condition)
            if value:
                pos |= bit
            else:
                neg |= bit
        return pos, neg

    def mask_of(self, conditions: Iterable[Condition]) -> int:
        """The union of the bits of the given conditions."""
        mask = 0
        for condition in conditions:
            mask |= self.bit_of(condition)
        return mask


#: The process-wide universe used by :class:`~repro.conditions.Conjunction`.
DEFAULT_UNIVERSE = ConditionUniverse()


def condition_bit(condition: Condition) -> int:
    """Shorthand for ``DEFAULT_UNIVERSE.bit_of(condition)``."""
    return DEFAULT_UNIVERSE.bit_of(condition)


def masks_from_assignment(assignment: Mapping[Condition, bool]) -> Tuple[int, int]:
    """Shorthand for ``DEFAULT_UNIVERSE.masks_of(assignment)``."""
    return DEFAULT_UNIVERSE.masks_of(assignment)
