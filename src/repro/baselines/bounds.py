"""Analytic bounds on the system delay.

Two cheap bounds bracket the worst-case delay of any correct schedule table:

* the **critical-path lower bound**: the longest chain of execution and
  communication times through any alternative path, ignoring resource
  contention (no schedule can beat it);
* the **ideal per-path bound** ``delta_M``: the largest of the per-path list
  schedule delays — the paper proves ``delta_max >= delta_M`` for any schedule
  table that does not predict conditions.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..architecture.mapping import Mapping
from ..graph.cpg import ConditionalProcessGraph
from ..graph.paths import AlternativePath, PathEnumerator
from ..scheduling.list_scheduler import PathListScheduler
from ..scheduling.schedule import PathSchedule


def critical_path_length(
    graph: ConditionalProcessGraph,
    mapping: Mapping,
    path: AlternativePath,
) -> float:
    """Longest dependency chain of one alternative path (contention-free bound)."""
    longest: Dict[str, float] = {}
    active = set(path.active_processes)
    for name in graph.topological_order():
        if name not in active:
            continue
        duration = graph[name].duration_on(mapping.get(name))
        best_predecessor = 0.0
        for pred in graph.active_predecessors(name, path.assignment):
            if pred in longest:
                best_predecessor = max(best_predecessor, longest[pred])
        longest[name] = best_predecessor + duration
    return max(longest.values(), default=0.0)


def critical_path_lower_bound(
    graph: ConditionalProcessGraph,
    mapping: Mapping,
    paths: Optional[Iterable[AlternativePath]] = None,
) -> float:
    """The contention-free lower bound over all alternative paths."""
    if paths is None:
        paths = PathEnumerator(graph).paths()
    return max(critical_path_length(graph, mapping, path) for path in paths)


def ideal_per_path_delay(
    graph: ConditionalProcessGraph,
    mapping: Mapping,
    paths: Optional[Iterable[AlternativePath]] = None,
    scheduler: Optional[PathListScheduler] = None,
) -> float:
    """``delta_M``: the largest per-path list-schedule delay (the paper's lower bound)."""
    if paths is None:
        paths = PathEnumerator(graph).paths()
    scheduler = scheduler or PathListScheduler(graph, mapping)
    return max(scheduler.schedule(path).delay for path in paths)


def per_path_schedules(
    graph: ConditionalProcessGraph,
    mapping: Mapping,
    paths: Optional[Iterable[AlternativePath]] = None,
) -> Dict[str, PathSchedule]:
    """The individual list schedules keyed by path label (for reporting)."""
    if paths is None:
        paths = PathEnumerator(graph).paths()
    scheduler = PathListScheduler(graph, mapping)
    return {str(path.label): scheduler.schedule(path) for path in paths}
