"""Baselines and bounds the schedule table is compared against."""

from .bounds import (
    critical_path_length,
    critical_path_lower_bound,
    ideal_per_path_delay,
    per_path_schedules,
)
from .unconditional import (
    UnconditionalBaseline,
    schedule_unconditionally,
    strip_conditions,
)

__all__ = [
    "UnconditionalBaseline",
    "critical_path_length",
    "critical_path_lower_bound",
    "ideal_per_path_delay",
    "per_path_schedules",
    "schedule_unconditionally",
    "strip_conditions",
]
