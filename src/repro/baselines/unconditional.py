"""Condition-blind baseline: schedule the graph as if it were pure dataflow.

Most prior co-synthesis schedulers discussed in the paper's related work only
capture dataflow.  Applied to a conditional process graph, the natural
fallback is to ignore the conditions entirely and build one static schedule in
which *every* process executes — both branches of every disjunction.  The
resulting delay is always achievable (it never activates a process early) and
serves as the pessimistic upper baseline against which the schedule table's
worst-case delay is compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..architecture.architecture import Architecture
from ..architecture.mapping import Mapping
from ..graph.cpg import ConditionalProcessGraph
from ..graph.edges import Edge
from ..graph.paths import PathEnumerator
from ..scheduling.list_scheduler import PathListScheduler
from ..scheduling.schedule import PathSchedule


@dataclass(frozen=True)
class UnconditionalBaseline:
    """Result of the condition-blind scheduling baseline."""

    schedule: PathSchedule
    delay: float
    flattened_graph: ConditionalProcessGraph


def strip_conditions(graph: ConditionalProcessGraph) -> ConditionalProcessGraph:
    """Return a copy of the graph in which every conditional edge became simple."""
    flattened = ConditionalProcessGraph(f"{graph.name}-unconditional")
    for process in graph.processes:
        flattened.add_process(process)
    for edge in graph.edges:
        flattened.add_edge(
            Edge(edge.src, edge.dst, None, edge.communication_time)
        )
    return flattened


def schedule_unconditionally(
    graph: ConditionalProcessGraph,
    mapping: Mapping,
    architecture: Optional[Architecture] = None,
) -> UnconditionalBaseline:
    """Schedule every process of the graph, ignoring all conditions."""
    flattened = strip_conditions(graph)
    paths = PathEnumerator(flattened).paths()
    assert len(paths) == 1, "a condition-free graph has exactly one path"
    scheduler = PathListScheduler(flattened, mapping, architecture)
    schedule = scheduler.schedule(paths[0])
    return UnconditionalBaseline(
        schedule=schedule, delay=schedule.delay, flattened_graph=flattened
    )
