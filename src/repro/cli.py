"""Command-line interface of the reproduction.

Four subcommands cover the main uses of the library without writing Python:

``repro-cpg info <system.json>``
    Parse a system description, validate it and print its characteristics
    (processes, conditions, alternative paths, architecture).

``repro-cpg schedule <system.json>``
    Generate the schedule table for a system description, print the per-path
    delays, the worst-case delay and (optionally) the full table.

``repro-cpg fig1``
    Run the paper's Fig. 1 example end to end.

``repro-cpg sweep``
    A small randomised sweep reporting the Fig. 5 metric (delay increase) for
    the requested sizes and path counts.

The console script ``repro-cpg`` is installed with the package; the module can
also be run with ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .analysis import aggregate, format_schedule_table, format_series
from .data import load_fig1_example
from .generator import RandomSystemGenerator, paper_experiment_configs
from .graph import PathEnumerator
from .io import load_system
from .scheduling import ScheduleMerger
from .simulation import validate_merge_result


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cpg",
        description="Scheduling of conditional process graphs (Eles et al., DATE 1998)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="describe a system description file")
    info.add_argument("system", help="path to a JSON system description")

    schedule = subparsers.add_parser(
        "schedule", help="generate the schedule table for a system description"
    )
    schedule.add_argument("system", help="path to a JSON system description")
    schedule.add_argument(
        "--table", action="store_true", help="print the full schedule table"
    )
    schedule.add_argument(
        "--validate",
        action="store_true",
        help="execute every alternative path on the run-time simulator",
    )

    subparsers.add_parser("fig1", help="run the paper's Fig. 1 example")

    sweep = subparsers.add_parser(
        "sweep", help="randomised delay-increase sweep (the Fig. 5 metric)"
    )
    sweep.add_argument("--nodes", type=int, nargs="+", default=[40])
    sweep.add_argument("--paths", type=int, nargs="+", default=[4, 8])
    sweep.add_argument("--graphs", type=int, default=2, help="graphs per setting")

    return parser


def _command_info(path: str) -> int:
    system = load_system(path)
    system.graph.validate()
    expanded = system.expand()
    paths = PathEnumerator(expanded.graph).count()
    print(f"system        : {system.name}")
    print(f"processes     : {len(system.graph.ordinary_processes)} ordinary, "
          f"{len(expanded.communications)} communications after expansion")
    print(f"conditions    : {[str(c) for c in system.graph.conditions]}")
    print(f"alternative paths: {paths}")
    print("architecture  :")
    for line in system.architecture.describe().splitlines():
        print(f"  {line}")
    print("mapping       :")
    for line in system.mapping.describe().splitlines():
        print(f"  {line}")
    return 0


def _command_schedule(path: str, show_table: bool, validate: bool) -> int:
    system = load_system(path)
    system.graph.validate()
    expanded = system.expand()
    result = ScheduleMerger(
        expanded.graph, expanded.mapping, system.architecture
    ).merge()
    print(f"alternative paths : {len(result.paths)}")
    for label, schedule in sorted(
        result.path_schedules.items(), key=lambda kv: -kv[1].delay
    ):
        print(f"  {str(label):<16} optimal delay {schedule.delay:g}")
    print(f"delta_M   = {result.delta_m:g}")
    print(f"delta_max = {result.delta_max:g} "
          f"(increase {result.delay_increase_percent:.2f}%)")
    if show_table:
        print()
        print(format_schedule_table(result.table))
    if validate:
        report = validate_merge_result(
            expanded.graph, expanded.mapping, result, system.architecture
        )
        print(f"validated {report.paths_checked} paths; "
              f"simulated worst case {report.worst_case_delay:g}")
    return 0


def _command_fig1() -> int:
    example = load_fig1_example()
    result = ScheduleMerger(
        example.graph, example.expanded_mapping, example.architecture
    ).merge()
    for label, schedule in sorted(
        result.path_schedules.items(), key=lambda kv: -kv[1].delay
    ):
        print(f"  {str(label):<14} optimal delay {schedule.delay:g}")
    print(f"delta_M   = {result.delta_m:g}")
    print(f"delta_max = {result.delta_max:g}")
    report = validate_merge_result(
        example.graph, example.expanded_mapping, result, example.architecture
    )
    print(f"validated {report.paths_checked} alternative paths")
    return 0


def _command_sweep(nodes: List[int], paths: List[int], graphs: int) -> int:
    series = {}
    for size in nodes:
        configs = paper_experiment_configs(
            size, graphs, paths_options=paths, base_seed=size
        )
        by_paths = {}
        for config in configs:
            system = RandomSystemGenerator(config).generate()
            result = ScheduleMerger(
                system.graph, system.expanded_mapping, system.architecture
            ).merge()
            by_paths.setdefault(config.alternative_paths, []).append(result)
        series[f"{size} nodes"] = {
            count: aggregate(results).average_increase_percent
            for count, results in sorted(by_paths.items())
        }
    print(format_series(
        "average increase of delta_max over delta_M (%)", "paths", series
    ))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-cpg`` console script."""
    arguments = _build_parser().parse_args(argv)
    if arguments.command == "info":
        return _command_info(arguments.system)
    if arguments.command == "schedule":
        return _command_schedule(arguments.system, arguments.table, arguments.validate)
    if arguments.command == "fig1":
        return _command_fig1()
    if arguments.command == "sweep":
        return _command_sweep(arguments.nodes, arguments.paths, arguments.graphs)
    raise AssertionError(f"unhandled command {arguments.command!r}")


if __name__ == "__main__":
    sys.exit(main())
